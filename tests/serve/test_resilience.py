"""Tests for serve-layer chaos injection and the supervised scorer."""

import dataclasses
import tempfile

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import compute_top_apps
from repro.serve import serve_replay
from repro.serve.engine import StreamingFeatureEngine
from repro.serve.events import iter_trace_events
from repro.serve.resilience import (
    FALLBACK_MODEL_VERSION,
    LAST_RESORT_MODEL_VERSION,
    AllNegativeFallback,
    ChaosInjector,
    ChaosPlan,
    CircuitBreaker,
    DeadLetterQueue,
    ResilienceConfig,
    SupervisedScorer,
)
from repro.serve.scorer import MicroBatchScorer, ScorerConfig
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def serving(tiny_trace, tiny_context):
    """(fitted predictor, engine schema, streamed rows) for scorer tests."""
    train, _ = tiny_context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("lr", random_state=0, fast=True)
    predictor.fit(train)
    engine = StreamingFeatureEngine(
        tiny_trace.machine,
        compute_top_apps(np.asarray(tiny_trace.samples["app_id"], dtype=int), 16),
    )
    rows = list(engine.stream(iter_trace_events(tiny_trace)))
    return predictor, engine.schema, rows


class TestChaosPlan:
    def test_intensity_validated(self):
        with pytest.raises(ValidationError):
            ChaosPlan(intensity=1.5)
        with pytest.raises(ValidationError):
            ChaosPlan(intensity=-0.1)

    def test_presets(self):
        assert ChaosPlan.preset("clean").intensity == 0.0
        assert ChaosPlan.preset("moderate").intensity == 0.25
        with pytest.raises(ValidationError, match="unknown chaos preset"):
            ChaosPlan.preset("apocalyptic")

    def test_digest_depends_on_every_knob(self):
        base = ChaosPlan(intensity=0.25, seed=7)
        assert base.digest() == ChaosPlan(intensity=0.25, seed=7).digest()
        assert base.digest() != ChaosPlan(intensity=0.25, seed=8).digest()
        assert base.digest() != dataclasses.replace(base, stall_rate=0.2).digest()

    def test_zero_intensity_disables_everything(self):
        injector = ChaosInjector(ChaosPlan(intensity=0.0), span=(0.0, 1000.0))
        assert not injector.enabled
        assert injector.outages == []
        assert injector.attempt_fault(10.0, 0) is None
        assert injector.attempt_stall_seconds(0) == 0.0
        assert injector.burst(0, 0.0) == []
        assert not injector.swap_corrupts(0)


class TestChaosInjectorDeterminism:
    def test_draws_are_pure_functions_of_seed_and_counter(self):
        plan = ChaosPlan(intensity=0.5, seed=11)
        a = ChaosInjector(plan, span=(0.0, 5000.0))
        b = ChaosInjector(plan, span=(0.0, 5000.0))
        assert a.outages == b.outages
        for seq in range(50):
            assert a.attempt_fault(123.0, seq) == b.attempt_fault(123.0, seq)
            assert a.attempt_stall_seconds(seq) == b.attempt_stall_seconds(seq)
            assert a.burst(seq, 1.0) == b.burst(seq, 1.0)
            assert a.swap_corrupts(seq) == b.swap_corrupts(seq)

    def test_different_seeds_disagree(self):
        a = ChaosInjector(ChaosPlan(intensity=1.0, seed=1), span=(0.0, 5000.0))
        b = ChaosInjector(ChaosPlan(intensity=1.0, seed=2), span=(0.0, 5000.0))
        verdicts_a = [a.attempt_fault(9.0, s) for s in range(200)]
        verdicts_b = [b.attempt_fault(9.0, s) for s in range(200)]
        assert verdicts_a != verdicts_b

    def test_outage_windows_fail_every_attempt_inside(self):
        injector = ChaosInjector(
            ChaosPlan(intensity=1.0, seed=3), span=(0.0, 5000.0)
        )
        assert injector.outages
        start, end = injector.outages[0]
        middle = (start + end) / 2.0
        for seq in range(20):
            kind, _ = injector.attempt_fault(middle, seq)
            assert kind == "outage"


class TestCircuitBreaker:
    def test_trips_after_k_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_batches=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_leads_to_half_open_then_close_or_reopen(self):
        breaker = CircuitBreaker(threshold=1, cooldown_batches=2)
        breaker.record_failure()
        assert breaker.state == "open"
        breaker.tick()
        assert breaker.state == "open"
        breaker.tick()
        assert breaker.state == "half_open"
        breaker.reopen()
        assert breaker.state == "open"
        breaker.tick()
        breaker.tick()
        assert breaker.state == "half_open"
        breaker.close()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0


class TestDeadLetterQueue:
    def test_reasons_and_replay_bookkeeping(self):
        dlq = DeadLetterQueue()
        letter = dlq.quarantine_batch(
            [(0.0, None)], reason="transient", minute=5.0, detail="x"
        )
        dlq.quarantine_event(reason="malformed_event", minute=6.0)
        assert len(dlq) == 2
        assert dlq.reasons() == {"transient": 1, "malformed_event": 1}
        assert [l.reason for l in dlq.pending_batches()] == ["transient"]
        letter.resolution = "primary"
        assert dlq.pending_batches() == []
        stripped = letter.stripped()
        assert stripped.entries is None and stripped.rows == 1


class TestSupervisedCleanPath:
    def test_no_chaos_is_bit_identical_to_raw_scorer(self, serving):
        predictor, schema, rows = serving
        subset = rows[:200]
        raw = MicroBatchScorer(predictor, schema, ScorerConfig(max_batch_size=32))
        sup = SupervisedScorer(predictor, schema, ScorerConfig(max_batch_size=32))
        raw_alerts = raw.submit(subset, now_minute=0.0) + raw.flush()
        sup_alerts = sup.submit(subset, now_minute=0.0) + sup.flush()
        sup_alerts += sup.finalize(0.0)
        assert len(raw_alerts) == len(sup_alerts)
        for a, b in zip(raw_alerts, sup_alerts):
            assert (a.run_idx, a.node_id, a.score, a.predicted) == (
                b.run_idx,
                b.node_id,
                b.score,
                b.predicted,
            )
            assert b.source == "primary"
        assert sup.resilience.fallback_rows == 0
        assert sup.resilience.primary_rows == len(subset)
        assert len(sup.dlq) == 0
        assert raw.counters.positive_alerts == sup.counters.positive_alerts


class TestSupervisedDegradation:
    def test_transient_faults_are_absorbed_by_retry(self, serving):
        predictor, schema, rows = serving
        # ~40% per-attempt failure: retries (3 attempts) absorb almost all.
        injector = ChaosInjector(
            ChaosPlan(intensity=1.0, seed=5, scorer_fault_rate=0.4,
                      outage_windows=0.0, stall_rate=0.0, burst_rate=0.0),
            span=(0.0, 5000.0),
        )
        sup = SupervisedScorer(
            predictor, schema, ScorerConfig(max_batch_size=16), chaos=injector
        )
        alerts = sup.submit(rows[:160], now_minute=0.0) + sup.flush()
        alerts += sup.finalize(0.0)
        assert len(alerts) == 160
        assert sup.resilience.retries > 0
        assert sup.resilience.transient_faults > 0
        assert sup.resilience.availability == 1.0

    def test_persistent_failure_trips_breaker_and_falls_back(self, serving):
        predictor, schema, rows = serving
        injector = ChaosInjector(
            ChaosPlan(intensity=1.0, seed=5, scorer_fault_rate=1.0,
                      outage_windows=0.0, stall_rate=0.0, burst_rate=0.0),
            span=(0.0, 5000.0),
        )
        sup = SupervisedScorer(
            predictor,
            schema,
            ScorerConfig(max_batch_size=16),
            resilience=ResilienceConfig(
                max_attempts=2, breaker_threshold=2, breaker_cooldown_batches=3
            ),
            chaos=injector,
            fallbacks=[("all_negative", AllNegativeFallback())],
        )
        alerts = sup.submit(rows[:320], now_minute=0.0) + sup.flush()
        alerts += sup.finalize(0.0)
        r = sup.resilience
        assert r.breaker_trips >= 1
        assert r.fallback_rows > 0
        assert r.dead_lettered_rows > 0
        # Every dead-lettered row was eventually replayed to some path.
        assert r.replayed_rows == r.dead_lettered_rows
        assert r.unresolved_rows == 0
        assert len(alerts) == 320
        fallback_sources = {a.source for a in alerts if a.source != "primary"}
        assert fallback_sources == {"fallback:all_negative"}
        fallback_versions = {
            a.model_version for a in alerts if a.source != "primary"
        }
        assert fallback_versions == {LAST_RESORT_MODEL_VERSION}

    def test_half_open_probe_recovers_and_replays_dead_letters(self, serving):
        predictor, schema, rows = serving

        class FlakyPredictor:
            """Fails hard for the first N calls, then recovers."""

            def __init__(self, inner, failures):
                self.inner = inner
                self.failures = failures
                self.model = inner.model
                self.feature_names = inner.feature_names

            def decision_scores(self, features):
                if self.failures > 0:
                    self.failures -= 1
                    raise RuntimeError("GPU fell off the bus")
                return self.inner.decision_scores(features)

        flaky = FlakyPredictor(predictor, failures=6)
        sup = SupervisedScorer(
            flaky,
            schema,
            ScorerConfig(max_batch_size=16),
            resilience=ResilienceConfig(
                max_attempts=2, breaker_threshold=2, breaker_cooldown_batches=1
            ),
        )
        alerts = sup.submit(rows[:160], now_minute=0.0) + sup.flush()
        alerts += sup.finalize(0.0)
        r = sup.resilience
        assert r.scorer_exceptions == 6
        assert r.breaker_trips >= 1
        assert r.breaker_probes >= 1
        assert sup.breaker.state == "closed"
        # Recovery replays the quarantined batches through the primary.
        assert r.replayed_rows == r.dead_lettered_rows > 0
        assert len(alerts) == 160
        replayed_primary = [
            a for a in alerts if a.source == "primary"
        ]
        assert len(replayed_primary) > 0

    def test_stall_past_deadline_counts_as_timeout(self, serving):
        predictor, schema, rows = serving
        injector = ChaosInjector(
            ChaosPlan(intensity=1.0, seed=5, scorer_fault_rate=0.0,
                      outage_windows=0.0, stall_rate=1.0,
                      stall_mean_seconds=1e6, burst_rate=0.0),
            span=(0.0, 5000.0),
        )
        sup = SupervisedScorer(
            predictor,
            schema,
            ScorerConfig(max_batch_size=16),
            resilience=ResilienceConfig(max_attempts=1, batch_timeout_seconds=1.0),
            chaos=injector,
        )
        alerts = sup.submit(rows[:16], now_minute=0.0) + sup.finalize(0.0)
        assert sup.resilience.timeouts >= 1
        assert sup.resilience.simulated_stall_seconds > 0.0
        assert len(alerts) == 16  # finalize drained through fallback


@pytest.fixture(scope="module")
def chaos_replayed(tiny_trace, tiny_context, tmp_path_factory):
    """One shared moderate-chaos replay (the acceptance-criteria run)."""
    root = tmp_path_factory.mktemp("chaos-registry")
    plan = ChaosPlan(intensity=0.25, seed=7)
    report = serve_replay(
        tiny_trace,
        root,
        splits=tiny_context.preset_splits(),
        split="DS1",
        model="gbdt",
        batch_size=64,
        retrain_every_days=4.0,
        fast=True,
        chaos=plan,
    )
    return report, plan


class TestChaosReplay:
    def test_moderate_chaos_keeps_availability_above_99pct(self, chaos_replayed):
        report, _ = chaos_replayed
        r = report.resilience
        assert r.availability >= 0.99
        assert r.unresolved_rows == 0

    def test_no_event_silently_dropped(self, chaos_replayed):
        report, _ = chaos_replayed
        r = report.resilience
        # Every test row got exactly one alert (scored or replayed) ...
        keys = {(a.run_idx, a.node_id) for a in report.alerts}
        assert len(keys) == len(report.alerts) == report.rows_test
        # ... and every injected bad event is dead-lettered with a reason.
        assert r.injected_events == r.dead_letter_events
        event_letters = [l for l in report.dead_letters if l.kind == "event"]
        assert len(event_letters) == r.dead_letter_events
        assert all(
            l.reason in ("malformed_event", "oversized_burst")
            for l in event_letters
        )

    def test_report_breaks_out_scoring_paths(self, chaos_replayed):
        report, _ = chaos_replayed
        r = report.resilience
        assert r.primary_rows + r.fallback_rows == report.rows_test
        assert r.dead_lettered_rows == r.replayed_rows
        text = str(report)
        assert "availability" in text
        assert "dead letters" in text
        assert "faults absorbed" in text

    def test_chaos_digest_is_deterministic(
        self, chaos_replayed, tiny_trace, tiny_context, tmp_path
    ):
        report, plan = chaos_replayed
        again = serve_replay(
            tiny_trace,
            tmp_path / "other-registry",
            splits=tiny_context.preset_splits(),
            split="DS1",
            model="gbdt",
            batch_size=64,
            retrain_every_days=4.0,
            fast=True,
            chaos=plan,
        )
        assert again.digest() == report.digest()

    def test_chaos_digest_differs_from_clean_digest_fields(self, chaos_replayed):
        report, _ = chaos_replayed
        assert report.chaos_digest is not None
        tampered = dataclasses.replace(report, chaos_digest="0" * 64)
        assert tampered.digest() != report.digest()


class TestHotSwapFailure:
    def test_corrupt_published_version_keeps_previous_model(
        self, tiny_trace, tiny_context, tmp_path
    ):
        # Guarantee the first retrain publication is corrupted on disk.
        plan = ChaosPlan(
            intensity=1.0, seed=0, swap_failure_rate=1.0,
            scorer_fault_rate=0.0, outage_windows=0.0, stall_rate=0.0,
            burst_rate=0.0,
        )
        report = serve_replay(
            tiny_trace,
            tmp_path / "registry",
            splits=tiny_context.preset_splits(),
            split="DS1",
            model="lr",
            batch_size=64,
            retrain_every_days=1.0,
            fast=True,
            chaos=plan,
        )
        assert report.resilience.swap_failures >= 1
        assert report.retrains == 0  # every swap failed
        assert report.registry_versions == [1]  # previous model kept
        assert any("previous model kept" in note for note in report.notes)
        # The serving path survived: every test row still alerted.
        assert len(report.alerts) == report.rows_test
        assert {a.model_version for a in report.alerts} == {1}


class TestResilienceExperiment:
    def test_curve_shape_and_clean_baseline(self, tiny_context):
        from repro.experiments.resilience_experiment import run_resilience

        result = run_resilience(
            tiny_context, intensities=(0.0, 0.25), seed=7, model="lr"
        )
        assert result.experiment_id == "resilience"
        curve = result.data["curve"]
        assert [p["intensity"] for p in curve] == [0.0, 0.25]
        assert curve[0]["availability"] == 1.0
        assert curve[0]["fallback_share"] == 0.0
        assert result.data["min_availability"] >= 0.99
        assert "availability" in result.text
