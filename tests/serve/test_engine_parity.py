"""Streaming/batch feature parity: the tentpole contract.

The streaming engine must emit rows **bit-identical** to the batch
builder on the same trace — clean, across simulator seeds and scales,
and after fault injection + sanitization.  Equality here is exact
(``==`` on float64 arrays), not approximate.
"""

import numpy as np
import pytest

from repro.faults import FaultSpec, inject_faults, sanitize_trace
from repro.features.builder import build_features, compute_top_apps
from repro.serve.engine import StreamingFeatureEngine, rows_to_matrix
from repro.serve.events import (
    RunCompleted,
    RunStarted,
    SbeObserved,
    iter_trace_events,
)
from repro.telemetry.config import (
    ErrorModelConfig,
    MachineConfig,
    TraceConfig,
)
from repro.telemetry.simulator import simulate_trace
from repro.utils.errors import DegradedDataWarning, ValidationError


def _small_config(seed: int) -> TraceConfig:
    """A fast-to-simulate trace with both classes well populated."""
    return TraceConfig(
        machine=MachineConfig(
            grid_x=4,
            grid_y=2,
            cages_per_cabinet=1,
            slots_per_cage=1,
            nodes_per_slot=4,
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.004,
            offender_node_fraction=0.3,
            offender_median_boost=2.0,
            episode_rate_per_100_days=30.0,
            episode_median_days=2.0,
            quiet_day_factor=0.01,
        ),
        duration_days=8.0,
        tick_minutes=10.0,
        seed=seed,
    )


def assert_stream_matches_batch(trace, top_k_apps: int = 16):
    """Stream the trace and compare every emitted row to the batch row."""
    batch = build_features(trace, top_k_apps=top_k_apps)
    engine = StreamingFeatureEngine(
        trace.machine,
        compute_top_apps(np.asarray(trace.samples["app_id"], dtype=int), top_k_apps),
    )
    rows = list(engine.stream(iter_trace_events(trace)))

    assert engine.schema.names == batch.schema.names
    assert len(rows) == batch.num_samples
    assert engine.pending_runs == 0  # every start saw its completion

    by_key = {(row.run_idx, row.node_id): row for row in rows}
    keys = list(
        zip(batch.meta["run_idx"].astype(int), batch.meta["node_id"].astype(int))
    )
    assert len(by_key) == len(keys), "duplicate (run, node) keys"
    streamed = np.vstack([by_key[key].features for key in keys])
    mismatch = streamed != batch.X
    if mismatch.any():
        i, j = np.argwhere(mismatch)[0]
        raise AssertionError(
            f"first mismatch at row {i}, column {batch.schema.names[j]!r}: "
            f"streamed={streamed[i, j]!r} batch={batch.X[i, j]!r} "
            f"({mismatch.sum()} cells differ)"
        )
    return batch, rows, by_key, keys


class TestCleanTraceParity:
    def test_tiny_trace_is_bit_identical(self, tiny_trace):
        assert_stream_matches_batch(tiny_trace)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_parity_across_simulator_seeds(self, seed):
        assert_stream_matches_batch(simulate_trace(_small_config(seed)))

    @pytest.mark.parametrize("top_k_apps", [4, 32])
    def test_parity_across_app_vocabulary_sizes(self, tiny_trace, top_k_apps):
        assert_stream_matches_batch(tiny_trace, top_k_apps=top_k_apps)

    def test_rows_to_matrix_matches_batch_matrix(self, tiny_trace):
        batch, rows, by_key, keys = assert_stream_matches_batch(tiny_trace)
        ordered = [by_key[key] for key in keys]
        schema = StreamingFeatureEngine(
            tiny_trace.machine,
            compute_top_apps(np.asarray(tiny_trace.samples["app_id"], dtype=int), 16),
        ).schema
        matrix = rows_to_matrix(ordered, schema, sbe_counts=batch.meta["sbe_count"])
        np.testing.assert_array_equal(matrix.X, batch.X)
        np.testing.assert_array_equal(matrix.y, batch.y)
        for name in ("run_idx", "node_id", "start_minute", "end_minute"):
            np.testing.assert_array_equal(matrix.meta[name], batch.meta[name])


class TestFaultyTraceParity:
    """Property-style: inject seeded faults, sanitize, demand parity."""

    @pytest.mark.parametrize(
        "intensity,seed", [(0.1, 0), (0.25, 3), (0.5, 11)]
    )
    def test_sanitized_faulty_trace_is_bit_identical(
        self, tiny_trace, intensity, seed
    ):
        faulty, log = inject_faults(
            tiny_trace, FaultSpec(intensity=intensity, seed=seed)
        )
        assert len(log) > 0
        with pytest.warns(DegradedDataWarning):
            sanitized, report = sanitize_trace(faulty)
        assert sanitized.num_samples > 0
        assert_stream_matches_batch(sanitized)

    def test_zero_intensity_is_clean_parity(self, tiny_trace):
        faulty, _ = inject_faults(tiny_trace, FaultSpec(intensity=0.0, seed=0))
        assert_stream_matches_batch(faulty)


class TestEngineStateMachine:
    def test_double_start_raises(self, tiny_trace):
        engine = StreamingFeatureEngine(tiny_trace.machine, np.array([0]))
        event = RunStarted(
            minute=0.0,
            run_idx=1,
            node_ids=np.array([0]),
            app_ids=np.array([0]),
            start_minutes=np.array([0.0]),
        )
        engine.process(event)
        with pytest.raises(ValidationError, match="started twice"):
            engine.process(event)

    def test_completion_without_start_raises(self, tiny_trace):
        engine = StreamingFeatureEngine(tiny_trace.machine, np.array([0]))
        with pytest.raises(ValidationError, match="never started"):
            engine.process(RunCompleted(minute=5.0, run_idx=9, rows={}))

    def test_unknown_event_raises(self, tiny_trace):
        engine = StreamingFeatureEngine(tiny_trace.machine, np.array([0]))
        with pytest.raises(ValidationError, match="unknown telemetry event"):
            engine.process(object())

    def test_sbe_events_feed_history_state(self, tiny_trace):
        engine = StreamingFeatureEngine(tiny_trace.machine, np.array([0]))
        engine.process(
            SbeObserved(minute=100.0, job_id=1, node_id=3, app_id=2, count=4)
        )
        assert engine.node_index.count_before(3, 101.0) == 4
        assert engine.app_index.count_before(2, 101.0) == 4
        assert engine.node_index.global_before(101.0) == 4

    def test_event_ordering_starts_before_sbes_at_equal_minute(self, tiny_trace):
        # An SBE stamped exactly at a later run's start minute must not be
        # visible to that run (batch windows are end-exclusive at start).
        events = list(iter_trace_events(tiny_trace))
        minutes = [event.minute for event in events]
        assert minutes == sorted(minutes)
