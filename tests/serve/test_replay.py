"""Tests for the end-to-end serve-replay harness (and its CLI wiring)."""

import dataclasses

import pytest

from repro.serve import serve_replay
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def replayed(tiny_trace, tiny_context, tmp_path_factory):
    """One shared replay of the tiny trace through the online path."""
    root = tmp_path_factory.mktemp("registry")
    report = serve_replay(
        tiny_trace,
        root,
        splits=tiny_context.preset_splits(),
        split="DS1",
        model="gbdt",
        batch_size=64,
        fast=True,
    )
    return report, root


class TestOnlineMatchesBatch:
    def test_online_agrees_with_batch_oracle_exactly(self, replayed):
        report, _ = replayed
        assert report.agreement == 1.0
        assert report.max_abs_score_diff == 0.0
        # The acceptance bound is |dF1| <= 0.01; bit-parity makes it 0.
        assert report.f1_delta == 0.0
        assert report.online_report == report.batch_report

    def test_every_test_sample_was_alerted_once(self, replayed):
        report, _ = replayed
        assert report.rows_test > 0
        keys = {(a.run_idx, a.node_id) for a in report.alerts}
        assert len(keys) == len(report.alerts) == report.rows_test
        assert report.counters.rows_scored == report.rows_test
        assert report.rows_streamed > report.rows_test  # full trace streamed

    def test_registry_holds_the_served_model(self, replayed, tiny_trace):
        report, root = replayed
        assert report.registry_versions == [1]
        entry = ModelRegistry(root).latest()
        assert entry.metadata["split"] == "DS1"
        assert entry.metadata["model"] == "gbdt"

    def test_counters_populated(self, replayed):
        report, _ = replayed
        c = report.counters
        assert c.batches > 0
        assert c.max_queue_depth <= 64
        assert c.rows_per_second > 0.0
        assert c.size_flushes + c.deadline_flushes + c.final_flushes == c.batches
        assert report.wall_seconds > 0.0


class TestDeterminism:
    def test_digest_is_stable_across_invocations(
        self, replayed, tiny_trace, tiny_context, tmp_path
    ):
        report, _ = replayed
        again = serve_replay(
            tiny_trace,
            tmp_path / "other-registry",  # fresh root: version ids differ
            splits=tiny_context.preset_splits(),
            split="DS1",
            model="gbdt",
            batch_size=64,
            fast=True,
        )
        assert again.digest() == report.digest()
        assert len(again.alerts) == len(report.alerts)

    def test_digest_sensitive_to_scores(self, replayed):
        report, _ = replayed
        bumped = dataclasses.replace(report.alerts[0], score=report.alerts[0].score + 1)
        tampered = dataclasses.replace(
            report, alerts=[bumped] + report.alerts[1:]
        )
        assert tampered.digest() != report.digest()


class TestRetrainLoop:
    def test_periodic_retrain_publishes_new_versions(
        self, tiny_trace, tiny_context, tmp_path
    ):
        report = serve_replay(
            tiny_trace,
            tmp_path / "registry",
            splits=tiny_context.preset_splits(),
            split="DS1",
            model="lr",
            batch_size=64,
            retrain_every_days=1.0,
            fast=True,
        )
        assert report.retrains >= 1
        assert len(report.registry_versions) == report.retrains + 1
        versions = ModelRegistry(tmp_path / "registry").list_versions()
        assert [v.version for v in versions] == report.registry_versions
        retrained = [v for v in versions if "retrained_at_minute" in v.metadata]
        assert len(retrained) == report.retrains
        # Online still covers every batch test sample.
        assert len(report.alerts) == report.rows_test
        # After a hot swap the online path may legitimately diverge.
        assert 0.0 <= report.agreement <= 1.0


class TestCli:
    def test_serve_replay_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            [
                "--preset",
                "tiny",
                "serve-replay",
                "--registry",
                str(tmp_path / "registry"),
                "--fast",
                "--batch-size",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve-replay [DS1]" in out
        assert "agreement          1.000000" in out
        assert (tmp_path / "registry" / "twostage" / "v0001").is_dir()

    def test_registry_flag_is_required(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-replay"])


class TestStrictMode:
    """`--strict` turns degraded-data self-heals into typed errors."""

    @pytest.fixture(scope="class")
    def faulty_trace(self, tiny_trace):
        from repro.faults import FaultSpec, inject_faults

        faulty, log = inject_faults(
            tiny_trace, FaultSpec(intensity=0.25, seed=7)
        )
        assert len(log) > 0
        return faulty

    def test_strict_escalates_sanitizer_repairs(
        self, faulty_trace, tiny_context, tmp_path
    ):
        from repro.utils.errors import DegradedDataError

        with pytest.raises(DegradedDataError, match="repaired"):
            serve_replay(
                faulty_trace,
                tmp_path / "registry",
                splits=tiny_context.preset_splits(),
                batch_size=64,
                fast=True,
                sanitize=True,
                strict=True,
            )

    def test_non_strict_heals_and_notes_the_repair(
        self, faulty_trace, tiny_context, tmp_path
    ):
        import warnings

        from repro.utils.errors import DegradedDataWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            report = serve_replay(
                faulty_trace,
                tmp_path / "registry",
                splits=tiny_context.preset_splits(),
                batch_size=64,
                fast=True,
                sanitize=True,
            )
        assert any("sanitized input trace" in note for note in report.notes)
        assert report.num_events > 0

    def test_strict_escalates_whole_trace_quarantine(
        self, tiny_trace, tiny_context, tmp_path, monkeypatch
    ):
        from repro.utils.errors import DegradedDataError, TelemetryFaultError

        def quarantine_everything(trace):
            raise TelemetryFaultError("all rows quarantined")

        monkeypatch.setattr(
            "repro.faults.sanitize_trace", quarantine_everything
        )
        with pytest.raises(DegradedDataError, match="quarantined the whole"):
            serve_replay(
                tiny_trace,
                tmp_path / "registry",
                splits=tiny_context.preset_splits(),
                batch_size=64,
                fast=True,
                sanitize=True,
                strict=True,
            )
        # Without strict the same quarantine heals to a well-formed
        # empty report instead of crashing.
        report = serve_replay(
            tiny_trace,
            tmp_path / "registry2",
            splits=tiny_context.preset_splits(),
            batch_size=64,
            fast=True,
            sanitize=True,
        )
        assert report.num_events == 0
        assert any("quarantined the whole trace" in n for n in report.notes)

    def test_cli_wires_top_level_strict_into_serve_replay(
        self, monkeypatch, tmp_path
    ):
        import repro.serve
        from repro.cli import main
        from repro.serve.replay import _empty_report

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        seen = {}

        def fake_serve_replay(trace, registry_root, **kwargs):
            seen.update(kwargs)
            return _empty_report(
                split=kwargs["split"],
                model=kwargs["model"],
                registry_name="twostage",
                chaos=None,
                wall_seconds=0.0,
                notes=[],
            )

        monkeypatch.setattr(repro.serve, "serve_replay", fake_serve_replay)
        assert (
            main(["--preset", "tiny", "--strict", "serve-replay",
                  "--registry", "/tmp/unused", "--fast"])
            == 0
        )
        assert seen["strict"] is True
        seen.clear()
        assert (
            main(["--preset", "tiny", "serve-replay",
                  "--registry", "/tmp/unused", "--fast"])
            == 0
        )
        assert seen["strict"] is False
