"""Backend-selection plumbing: CLI flag, registry round-trips, resume.

The scoring-kernel backend is execution configuration, never run
content: whichever backend scores a batch, every digest — replay,
gateway parity, golden — must come out byte-identical.  These tests pin
the plumbing that keeps it that way: the ``--backend`` CLI flag's
validation and one-line error path, registry-loaded models scoring
identically under both backends, and checkpoint/resume carrying a
backend choice without changing digests (the backend is deliberately
excluded from the checkpoint compatibility key).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.cli import main
from repro.core.twostage import TwoStagePredictor
from repro.ml import kernels
from repro.ml.kernels import (
    KernelBackendWarning,
    get_backend,
    numba_available,
    set_backend,
    use_backend,
)
from repro.serve import serve_replay
from repro.serve.registry import ModelRegistry
from repro.utils.errors import SimulatedCrashError


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = get_backend()
    yield
    set_backend(previous)


class TestCLIBackendFlag:
    def test_unknown_backend_is_one_line_error(self, tmp_path, capsys):
        code = main(
            ["--backend", "cython", "registry", "verify", "--registry", str(tmp_path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("repro: error: unknown scoring backend")
        assert "cython" in lines[0]

    def test_numpy_backend_accepted(self, tmp_path, capsys):
        (tmp_path / "twostage").mkdir()
        code = main(
            ["--backend", "numpy", "registry", "verify", "--registry", str(tmp_path)]
        )
        assert code == 0
        assert "no version directories" in capsys.readouterr().out
        assert get_backend() == "numpy"

    def test_numba_backend_falls_back_without_numba(self, tmp_path, monkeypatch):
        monkeypatch.setattr(kernels, "_NUMBA_OK", False)
        (tmp_path / "twostage").mkdir()
        with pytest.warns(KernelBackendWarning, match="falling back"):
            code = main(
                [
                    "--backend",
                    "numba",
                    "registry",
                    "verify",
                    "--registry",
                    str(tmp_path),
                ]
            )
        assert code == 0
        assert get_backend() == "numpy"  # degraded to the exact oracle


class TestRegistryBackendParity:
    @pytest.fixture(scope="class")
    def fitted_gbdt(self, tiny_context):
        train, test = tiny_context.pipeline.train_test("DS1")
        predictor = TwoStagePredictor("gbdt", random_state=0, fast=True)
        predictor.fit(train)
        return predictor, test

    def test_registry_loaded_model_scores_identically_under_both_backends(
        self, fitted_gbdt, tmp_path
    ):
        predictor, test = fitted_gbdt
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor, metadata={"split": "DS1"})
        loaded, _ = registry.load_model()
        with use_backend("numpy"):
            via_numpy = loaded.decision_scores(test)
        np.testing.assert_array_equal(via_numpy, predictor.decision_scores(test))
        if numba_available():
            with use_backend("numba"):
                via_numba = loaded.decision_scores(test)
        else:
            # Without numba the request degrades (with a warning) to the
            # numpy oracle — scores must still be byte-identical.
            with pytest.warns(KernelBackendWarning):
                with use_backend("numba"):
                    via_numba = loaded.decision_scores(test)
        assert np.array_equal(via_numba, via_numpy)

    def test_kernel_stats_reports_flattened_ensemble(self, fitted_gbdt):
        predictor, _ = fitted_gbdt
        stats = predictor.kernel_stats()
        assert stats["flattened"] is True
        assert stats["backend"] == get_backend()
        assert stats["n_trees"] > 0
        assert stats["n_nodes"] >= stats["n_trees"]


def _replay(trace, context, root, **kwargs):
    return serve_replay(
        trace,
        root,
        splits=context.preset_splits(),
        split="DS1",
        model="gbdt",
        batch_size=64,
        fast=True,
        **kwargs,
    )


class TestReplayBackendPlumbing:
    def test_backend_note_recorded_and_digest_unchanged(
        self, tiny_trace, tiny_context, tmp_path
    ):
        baseline = _replay(tiny_trace, tiny_context, tmp_path / "r1")
        explicit = _replay(
            tiny_trace, tiny_context, tmp_path / "r2", backend="numpy"
        )
        assert "scoring backend: numpy" in explicit.notes
        assert explicit.digest() == baseline.digest()

    def test_resume_carries_backend_choice_without_digest_change(
        self, tiny_trace, tiny_context, tmp_path
    ):
        baseline = _replay(tiny_trace, tiny_context, tmp_path / "r1")
        with pytest.raises(SimulatedCrashError):
            _replay(
                tiny_trace,
                tiny_context,
                tmp_path / "r2",
                backend="numpy",
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_events=150,
                crash_after_events=700,
            )
        # The backend is execution config: resuming under a *different*
        # backend must accept the checkpoint and reproduce the digest.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelBackendWarning)
            resumed = _replay(
                tiny_trace,
                tiny_context,
                tmp_path / "r2",
                backend="numba",
                checkpoint_dir=tmp_path / "ckpt",
                resume=True,
            )
        assert resumed.resumed_from == 600
        assert resumed.digest() == baseline.digest()
        assert any(
            note.startswith("scoring backend:") for note in resumed.notes
        )
