"""Tests for the micro-batching scorer."""

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import compute_top_apps
from repro.serve.engine import StreamingFeatureEngine, rows_to_matrix
from repro.serve.events import iter_trace_events
from repro.serve.scorer import MicroBatchScorer, ScorerConfig
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def serving(tiny_trace, tiny_context):
    """(fitted predictor, engine schema, streamed rows) for scorer tests."""
    train, _ = tiny_context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("lr", random_state=0, fast=True)
    predictor.fit(train)
    engine = StreamingFeatureEngine(
        tiny_trace.machine,
        compute_top_apps(np.asarray(tiny_trace.samples["app_id"], dtype=int), 16),
    )
    rows = list(engine.stream(iter_trace_events(tiny_trace)))
    return predictor, engine.schema, rows


class TestScorerConfig:
    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValidationError):
            ScorerConfig(max_batch_size=0)
        with pytest.raises(ValidationError):
            ScorerConfig(flush_deadline_minutes=-1.0)


class TestFlushTriggers:
    def test_size_triggered_flush(self, serving):
        predictor, schema, rows = serving
        scorer = MicroBatchScorer(predictor, schema, ScorerConfig(max_batch_size=8))
        alerts = scorer.submit(rows[:7], now_minute=0.0)
        assert alerts == [] and scorer.queue_depth == 7
        alerts = scorer.submit(rows[7:8], now_minute=1.0)
        assert len(alerts) == 8
        assert scorer.queue_depth == 0
        assert scorer.counters.size_flushes == 1
        assert scorer.counters.batches == 1
        assert scorer.counters.batch_sizes == [8]

    def test_deadline_triggered_flush(self, serving):
        predictor, schema, rows = serving
        scorer = MicroBatchScorer(
            predictor,
            schema,
            ScorerConfig(max_batch_size=1000, flush_deadline_minutes=30.0),
        )
        scorer.submit(rows[:5], now_minute=100.0)
        assert scorer.poll(np.nextafter(130.0, 0.0)) == []  # not yet due
        alerts = scorer.poll(130.0)  # oldest row has waited exactly 30 min
        assert len(alerts) == 5
        assert scorer.counters.deadline_flushes == 1
        assert scorer.counters.mean_queue_minutes == pytest.approx(30.0)

    def test_final_flush_drains_everything(self, serving):
        predictor, schema, rows = serving
        scorer = MicroBatchScorer(predictor, schema, ScorerConfig(max_batch_size=16))
        scorer.submit(rows[:40], now_minute=0.0)
        alerts = scorer.flush()
        assert scorer.queue_depth == 0
        assert scorer.counters.rows_scored == 40
        # 40 rows through batch size 16: two size flushes + final drain.
        assert scorer.counters.size_flushes == 2
        assert scorer.counters.final_flushes >= 1
        assert len(alerts) == 8

    def test_empty_flush_is_a_noop(self, serving):
        predictor, schema, _ = serving
        scorer = MicroBatchScorer(predictor, schema)
        assert scorer.flush() == []
        assert scorer.poll(1e9) == []
        assert scorer.counters.batches == 0


class TestScoringSemantics:
    def test_alerts_match_batch_predictions(self, serving):
        predictor, schema, rows = serving
        subset = rows[:200]
        scorer = MicroBatchScorer(
            predictor, schema, ScorerConfig(max_batch_size=32), model_version=7
        )
        alerts = scorer.submit(subset, now_minute=0.0) + scorer.flush()
        assert len(alerts) == len(subset)
        # Expected values computed exactly as the scorer batches them (BLAS
        # accumulation can differ by an ulp across matrix shapes, so the
        # bitwise-equality reference must use the same 32-row chunks).
        expected_scores = np.concatenate(
            [
                predictor.decision_scores(rows_to_matrix(subset[i : i + 32], schema))
                for i in range(0, len(subset), 32)
            ]
        )
        expected_preds = (expected_scores >= predictor.model.threshold).astype(int)
        by_key = {(a.run_idx, a.node_id): a for a in alerts}
        for row, score, pred in zip(subset, expected_scores, expected_preds):
            alert = by_key[(row.run_idx, row.node_id)]
            assert alert.score == score
            assert alert.predicted == pred
            assert alert.model_version == 7
            assert alert.job_id == row.job_id
            assert alert.end_minute == row.end_minute

    def test_counters_track_throughput_and_depth(self, serving):
        predictor, schema, rows = serving
        subset = rows[:100]
        scorer = MicroBatchScorer(predictor, schema, ScorerConfig(max_batch_size=64))
        scorer.submit(subset, now_minute=0.0)
        scorer.flush()
        c = scorer.counters
        assert c.rows_in == c.rows_scored == 100
        assert c.max_queue_depth == 64
        assert c.scoring_seconds > 0.0
        assert c.rows_per_second > 0.0
        expected_positive = sum(
            int(predictor.predict(rows_to_matrix(subset[i : i + 64], schema)).sum())
            for i in range(0, len(subset), 64)
        )
        assert c.positive_alerts == expected_positive


class TestHotSwap:
    def test_swap_changes_served_model_version(self, serving, tiny_context):
        predictor, schema, rows = serving
        scorer = MicroBatchScorer(
            predictor, schema, ScorerConfig(max_batch_size=10), model_version=1
        )
        first = scorer.submit(rows[:10], now_minute=0.0)
        train, _ = tiny_context.pipeline.train_test("DS2")
        retrained = TwoStagePredictor("lr", random_state=1, fast=True)
        retrained.fit(train)
        scorer.swap_model(retrained, model_version=2)
        second = scorer.submit(rows[10:20], now_minute=0.0)
        assert {a.model_version for a in first} == {1}
        assert {a.model_version for a in second} == {2}
        assert scorer.predictor is retrained

    def test_swap_rejects_mismatched_schema(self, serving, tiny_context):
        predictor, schema, _ = serving
        scorer = MicroBatchScorer(predictor, schema)
        train, _ = tiny_context.pipeline.train_test("DS1")
        narrower = TwoStagePredictor(
            "lr", exclude={"hist"}, random_state=0, fast=True
        )
        narrower.fit(train)
        with pytest.raises(ValidationError, match="feature schema"):
            scorer.swap_model(narrower, model_version=2)
