"""Tests for replay checkpointing and kill-and-resume recovery."""

import pytest

from repro.serve import serve_replay
from repro.serve.checkpoint import CheckpointManager
from repro.serve.resilience import ChaosPlan
from repro.utils.errors import (
    DegradedDataWarning,
    SimulatedCrashError,
    ValidationError,
)


class TestCheckpointManager:
    def test_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = {"cursor": 42, "payload": list(range(10))}
        info = manager.save(100, state, key="k1")
        assert info.events_done == 100
        events, loaded = manager.load_latest(expected_key="k1")
        assert events == 100
        assert loaded == state

    def test_latest_wins(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(100, {"n": 1}, key="k")
        manager.save(300, {"n": 3}, key="k")
        manager.save(200, {"n": 2}, key="k")
        events, state = manager.load_latest(expected_key="k")
        assert (events, state["n"]) == (300, 3)

    def test_corrupt_manifest_skipped_with_warning(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(100, {"n": 1}, key="k")
        manager.save(200, {"n": 2}, key="k")
        (tmp_path / "ckpt-00000200.json").write_text("{not json")
        with pytest.warns(DegradedDataWarning, match="corrupt checkpoint"):
            events, state = manager.load_latest(expected_key="k")
        assert (events, state["n"]) == (100, 1)

    def test_missing_payload_skipped_with_warning(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(100, {"n": 1}, key="k")
        manager.save(200, {"n": 2}, key="k")
        (tmp_path / "ckpt-00000200.pkl").unlink()
        with pytest.warns(DegradedDataWarning, match="payload missing"):
            events, _ = manager.load_latest(expected_key="k")
        assert events == 100

    def test_tampered_payload_fails_checksum(self, tmp_path):
        from repro.utils.errors import TraceIOError

        manager = CheckpointManager(tmp_path)
        manager.save(100, {"n": 1}, key="k")
        payload = tmp_path / "ckpt-00000100.pkl"
        payload.write_bytes(payload.read_bytes() + b"x")
        with pytest.raises(TraceIOError, match="checksum"):
            manager.load_latest(expected_key="k")

    def test_key_mismatch_refuses_resume(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(100, {"n": 1}, key="k1")
        with pytest.raises(ValidationError, match="incompatible"):
            manager.load_latest(expected_key="k2")

    def test_empty_store_refuses_resume(self, tmp_path):
        with pytest.raises(ValidationError, match="nothing to resume"):
            CheckpointManager(tmp_path / "none").load_latest(expected_key="k")

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for events in (100, 200, 300, 400):
            manager.save(events, {"e": events}, key="k")
        removed = manager.prune(keep_last=2)
        assert removed == 2
        assert [i.events_done for i in manager.list_checkpoints()] == [300, 400]


def _replay(trace, context, root, **kwargs):
    return serve_replay(
        trace,
        root,
        splits=context.preset_splits(),
        split="DS1",
        model="lr",
        batch_size=64,
        fast=True,
        **kwargs,
    )


class TestKillAndResume:
    def test_resume_is_bit_identical_without_chaos(
        self, tiny_trace, tiny_context, tmp_path
    ):
        baseline = _replay(tiny_trace, tiny_context, tmp_path / "r1")
        with pytest.raises(SimulatedCrashError):
            _replay(
                tiny_trace,
                tiny_context,
                tmp_path / "r2",
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_events=150,
                crash_after_events=700,
            )
        resumed = _replay(
            tiny_trace,
            tiny_context,
            tmp_path / "r2",
            checkpoint_dir=tmp_path / "ckpt",
            resume=True,
        )
        assert resumed.resumed_from == 600
        assert resumed.digest() == baseline.digest()
        assert resumed.online_report == baseline.online_report
        assert resumed.agreement == baseline.agreement == 1.0

    def test_resume_is_bit_identical_under_chaos_with_retrain(
        self, tiny_trace, tiny_context, tmp_path
    ):
        plan = ChaosPlan(intensity=0.25, seed=7)
        baseline = _replay(
            tiny_trace,
            tiny_context,
            tmp_path / "r1",
            chaos=plan,
            retrain_every_days=4.0,
        )
        with pytest.raises(SimulatedCrashError):
            _replay(
                tiny_trace,
                tiny_context,
                tmp_path / "r2",
                chaos=plan,
                retrain_every_days=4.0,
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_events=200,
                crash_after_events=900,
            )
        resumed = _replay(
            tiny_trace,
            tiny_context,
            tmp_path / "r2",
            chaos=plan,
            retrain_every_days=4.0,
            checkpoint_dir=tmp_path / "ckpt",
            resume=True,
        )
        assert resumed.resumed_from == 800
        assert resumed.digest() == baseline.digest()

    def test_resume_requires_checkpoint_dir(self, tiny_trace, tiny_context, tmp_path):
        with pytest.raises(ValidationError, match="checkpoint directory"):
            _replay(tiny_trace, tiny_context, tmp_path / "r", resume=True)

    def test_resume_rejects_incompatible_configuration(
        self, tiny_trace, tiny_context, tmp_path
    ):
        with pytest.raises(SimulatedCrashError):
            _replay(
                tiny_trace,
                tiny_context,
                tmp_path / "r",
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_events=150,
                crash_after_events=400,
            )
        with pytest.raises(ValidationError, match="incompatible"):
            serve_replay(
                tiny_trace,
                tmp_path / "r",
                splits=tiny_context.preset_splits(),
                split="DS1",
                model="lr",
                batch_size=32,  # differs from the checkpointed run
                fast=True,
                checkpoint_dir=tmp_path / "ckpt",
                resume=True,
            )
