"""Property test: sanitize-to-empty traces yield clean empty replays.

The sanitizer quarantines irrecoverable rows; when *every* row is
quarantined it raises :class:`TelemetryFaultError`.  ``serve_replay``
with ``sanitize=True`` must turn that into a well-formed empty report —
an empty stream is an answer, not a crash — whatever combination of
corruption produced it.
"""

import copy

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.faults.sanitizer import SENSOR_ABS_MAX, sanitize_trace
from repro.serve import serve_replay
from repro.telemetry.trace import SAMPLE_TELEMETRY_COLUMNS
from repro.utils.errors import TelemetryFaultError

#: Values no sensor statistic can legitimately take.
BAD_VALUES = (
    float("nan"),
    float("inf"),
    float("-inf"),
    SENSOR_ABS_MAX * 10,
    -SENSOR_ABS_MAX * 10,
)


def _corrupt_everything(trace, bad_value: float, mode: str):
    """Return a copy of ``trace`` in which every sample is irrecoverable."""
    bad = copy.deepcopy(trace)
    if mode in ("sensors", "both"):
        for name in SAMPLE_TELEMETRY_COLUMNS:
            if name in bad.samples:
                bad.samples[name][:] = bad_value
    if mode in ("meta", "both"):
        bad.samples["start_minute"][:] = np.nan
    return bad


@settings(max_examples=15, deadline=None)
@given(
    bad_value=st.sampled_from(BAD_VALUES),
    mode=st.sampled_from(["sensors", "meta", "both"]),
)
def test_all_quarantined_trace_yields_wellformed_empty_report(
    tiny_trace, tmp_path_factory, bad_value, mode
):
    bad = _corrupt_everything(tiny_trace, bad_value, mode)
    # Precondition: the sanitizer really does quarantine everything.
    with pytest.raises(TelemetryFaultError):
        sanitize_trace(bad)

    registry_root = tmp_path_factory.mktemp("empty-replay-registry")
    report = serve_replay(bad, registry_root, sanitize=True)

    assert report.num_events == 0
    assert report.rows_streamed == report.rows_test == 0
    assert report.alerts == []
    assert report.registry_versions == []
    assert report.agreement == 1.0
    assert report.max_abs_score_diff == 0.0
    assert report.resilience.availability == 1.0
    for section in (report.batch_report, report.online_report):
        assert set(section) == {"sbe", "non_sbe", "overall"}
        assert section["sbe"]["f1"] == 0.0
    assert any("quarantined" in note for note in report.notes)
    # The report still renders and fingerprints like any other.
    assert "serve-replay" in str(report)
    assert len(report.digest()) == 64


def test_empty_input_trace_yields_wellformed_empty_report(tiny_trace, tmp_path):
    empty = copy.deepcopy(tiny_trace)
    for name in empty.samples:
        empty.samples[name] = empty.samples[name][:0]
    assert empty.num_samples == 0
    report = serve_replay(empty, tmp_path / "registry")
    assert report.num_events == 0
    assert report.alerts == []
    assert any("empty" in note for note in report.notes)
