"""Tests for the versioned model registry."""

import json

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.serve.registry import (
    ARTIFACT_FORMAT,
    ModelRegistry,
    list_versions,
    load_model,
    save_model,
)
from repro.utils.errors import ModelRegistryError, NotFittedError, ReproError


@pytest.fixture(scope="module")
def fitted(tiny_context):
    """A fitted fast predictor plus its train/test matrices."""
    train, test = tiny_context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("lr", random_state=0, fast=True)
    predictor.fit(train)
    return predictor, train, test


class TestSaveLoadRoundTrip:
    def test_round_trip_reproduces_predictions_exactly(self, fitted, tmp_path):
        predictor, _, test = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor, metadata={"split": "DS1"})
        loaded, loaded_entry = registry.load_model()
        assert loaded_entry.version == entry.version == 1
        np.testing.assert_array_equal(loaded.predict(test), predictor.predict(test))
        np.testing.assert_array_equal(
            loaded.decision_scores(test), predictor.decision_scores(test)
        )
        np.testing.assert_array_equal(
            loaded.offender_nodes, predictor.offender_nodes
        )
        assert loaded.feature_names == predictor.feature_names

    def test_manifest_records_schema_and_metadata(self, fitted, tmp_path):
        predictor, _, _ = fitted
        entry = ModelRegistry(tmp_path).save_model(
            predictor, metadata={"split": "DS1", "seed": 0}
        )
        assert entry.model_name == "lr"
        assert entry.feature_names == predictor.feature_names
        assert entry.metadata == {"split": "DS1", "seed": 0}
        assert entry.manifest["num_offender_nodes"] == predictor.offender_nodes.size

    def test_versions_increment_and_list_in_order(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        v1 = registry.save_model(predictor)
        v2 = registry.save_model(predictor)
        assert (v1.version, v2.version) == (1, 2)
        assert [v.version for v in registry.list_versions()] == [1, 2]
        assert registry.latest().version == 2
        _, entry = registry.load_model(version=1)
        assert entry.version == 1

    def test_module_level_helpers(self, fitted, tmp_path):
        predictor, _, test = fitted
        save_model(predictor, tmp_path)
        loaded = load_model(tmp_path)
        np.testing.assert_array_equal(loaded.predict(test), predictor.predict(test))
        assert [v.version for v in list_versions(tmp_path)] == [1]

    def test_unfitted_predictor_is_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            ModelRegistry(tmp_path).save_model(TwoStagePredictor("lr", fast=True))


class TestFailureModes:
    def test_empty_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.list_versions() == []
        with pytest.raises(ModelRegistryError):
            registry.latest()

    def test_missing_version(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        with pytest.raises(ModelRegistryError):
            registry.load_model(version=42)

    def test_corrupt_payload_detected_by_checksum(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        payload = entry.path / "predictor.pkl"
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        with pytest.raises(ModelRegistryError, match="checksum"):
            registry.load_model()

    def test_checksum_error_is_a_repro_error(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        (entry.path / "predictor.pkl").write_bytes(b"not a pickle")
        with pytest.raises(ReproError):
            registry.load_model()

    def test_unsupported_format_is_rejected(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        manifest_path = entry.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = ARTIFACT_FORMAT + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelRegistryError, match="format"):
            registry.load_model()

    def test_schema_incompatible_artifact_is_rejected(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        wrong = list(predictor.feature_names)
        wrong[0] = "definitely_not_a_feature"
        with pytest.raises(ModelRegistryError, match="schema-incompatible"):
            registry.load_model(expect_feature_names=wrong)
        with pytest.raises(ModelRegistryError, match="schema-incompatible"):
            registry.load_model(
                expect_feature_names=predictor.feature_names + ["extra"]
            )
        # The exact expected schema loads fine.
        registry.load_model(expect_feature_names=predictor.feature_names)

    def test_uncommitted_version_dir_is_invisible(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        # A crashed writer: payload staged, manifest never committed.
        stale = tmp_path / "twostage" / "v0002"
        stale.mkdir(parents=True)
        (stale / "predictor.pkl").write_bytes(b"half written")
        assert [v.version for v in registry.list_versions()] == [1]
        _, entry = registry.load_model()
        assert entry.version == 1
        # But the next save never reuses the stale slot.
        assert registry.save_model(predictor).version == 3

    def test_next_version_follows_max_existing(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        v2 = registry.save_model(predictor)
        import shutil

        shutil.rmtree(v2.path)
        assert registry.save_model(predictor).version == 2
