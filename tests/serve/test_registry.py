"""Tests for the versioned model registry."""

import json

import numpy as np
import pytest

from repro.core.twostage import TwoStagePredictor
from repro.serve.registry import (
    ARTIFACT_FORMAT,
    ModelRegistry,
    list_versions,
    load_model,
    save_model,
)
from repro.utils.errors import (
    DegradedDataWarning,
    ModelRegistryError,
    NotFittedError,
    ReproError,
)


@pytest.fixture(scope="module")
def fitted(tiny_context):
    """A fitted fast predictor plus its train/test matrices."""
    train, test = tiny_context.pipeline.train_test("DS1")
    predictor = TwoStagePredictor("lr", random_state=0, fast=True)
    predictor.fit(train)
    return predictor, train, test


class TestSaveLoadRoundTrip:
    def test_round_trip_reproduces_predictions_exactly(self, fitted, tmp_path):
        predictor, _, test = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor, metadata={"split": "DS1"})
        loaded, loaded_entry = registry.load_model()
        assert loaded_entry.version == entry.version == 1
        np.testing.assert_array_equal(loaded.predict(test), predictor.predict(test))
        np.testing.assert_array_equal(
            loaded.decision_scores(test), predictor.decision_scores(test)
        )
        np.testing.assert_array_equal(
            loaded.offender_nodes, predictor.offender_nodes
        )
        assert loaded.feature_names == predictor.feature_names

    def test_manifest_records_schema_and_metadata(self, fitted, tmp_path):
        predictor, _, _ = fitted
        entry = ModelRegistry(tmp_path).save_model(
            predictor, metadata={"split": "DS1", "seed": 0}
        )
        assert entry.model_name == "lr"
        assert entry.feature_names == predictor.feature_names
        assert entry.metadata == {"split": "DS1", "seed": 0}
        assert entry.manifest["num_offender_nodes"] == predictor.offender_nodes.size

    def test_versions_increment_and_list_in_order(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        v1 = registry.save_model(predictor)
        v2 = registry.save_model(predictor)
        assert (v1.version, v2.version) == (1, 2)
        assert [v.version for v in registry.list_versions()] == [1, 2]
        assert registry.latest().version == 2
        _, entry = registry.load_model(version=1)
        assert entry.version == 1

    def test_module_level_helpers(self, fitted, tmp_path):
        predictor, _, test = fitted
        save_model(predictor, tmp_path)
        loaded = load_model(tmp_path)
        np.testing.assert_array_equal(loaded.predict(test), predictor.predict(test))
        assert [v.version for v in list_versions(tmp_path)] == [1]

    def test_unfitted_predictor_is_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            ModelRegistry(tmp_path).save_model(TwoStagePredictor("lr", fast=True))


class TestFailureModes:
    def test_empty_registry(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.list_versions() == []
        with pytest.raises(ModelRegistryError):
            registry.latest()

    def test_missing_version(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        with pytest.raises(ModelRegistryError):
            registry.load_model(version=42)

    def test_corrupt_payload_detected_by_checksum(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        payload = entry.path / "predictor.pkl"
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        with pytest.raises(ModelRegistryError, match="checksum"):
            registry.load_model()

    def test_checksum_error_is_a_repro_error(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        (entry.path / "predictor.pkl").write_bytes(b"not a pickle")
        with pytest.raises(ReproError):
            registry.load_model()

    def test_unsupported_format_is_rejected(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        manifest_path = entry.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = ARTIFACT_FORMAT + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelRegistryError, match="format"):
            registry.load_model()

    def test_schema_incompatible_artifact_is_rejected(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        wrong = list(predictor.feature_names)
        wrong[0] = "definitely_not_a_feature"
        with pytest.raises(ModelRegistryError, match="schema-incompatible"):
            registry.load_model(expect_feature_names=wrong)
        with pytest.raises(ModelRegistryError, match="schema-incompatible"):
            registry.load_model(
                expect_feature_names=predictor.feature_names + ["extra"]
            )
        # The exact expected schema loads fine.
        registry.load_model(expect_feature_names=predictor.feature_names)

    def test_uncommitted_version_dir_is_invisible(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        # A crashed writer: payload staged, manifest never committed.
        stale = tmp_path / "twostage" / "v0002"
        stale.mkdir(parents=True)
        (stale / "predictor.pkl").write_bytes(b"half written")
        with pytest.warns(DegradedDataWarning, match="uncommitted"):
            assert [v.version for v in registry.list_versions()] == [1]
        _, entry = registry.load_model()
        assert entry.version == 1
        # But the next save never reuses the stale slot.
        assert registry.save_model(predictor).version == 3

    def test_manifest_without_payload_is_skipped_with_warning(
        self, fitted, tmp_path
    ):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        torn = registry.save_model(predictor)
        (torn.path / "predictor.pkl").unlink()
        with pytest.warns(DegradedDataWarning, match="payload missing"):
            assert [v.version for v in registry.list_versions()] == [1]
        # The head still points at the torn v2: latest() degrades to the
        # newest committed version with a dangling-head warning.
        with pytest.warns(DegradedDataWarning, match="uncommitted version"):
            assert registry.latest().version == 1

    def test_next_version_follows_max_existing(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        v2 = registry.save_model(predictor)
        import shutil

        shutil.rmtree(v2.path)
        assert registry.save_model(predictor).version == 2


class TestVerify:
    def test_reports_per_version_checksum_status(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        ok = registry.save_model(predictor)
        corrupt = registry.save_model(predictor)
        missing = registry.save_model(predictor)
        bad_manifest = registry.save_model(predictor)

        data = bytearray((corrupt.path / "predictor.pkl").read_bytes())
        data[len(data) // 2] ^= 0xFF
        (corrupt.path / "predictor.pkl").write_bytes(bytes(data))
        (missing.path / "predictor.pkl").unlink()
        (bad_manifest.path / "manifest.json").write_text("{torn")

        assert registry.verify() == [
            (ok.version, "ok"),
            (corrupt.version, "corrupt-payload"),
            (missing.version, "missing-payload"),
            (bad_manifest.version, "bad-manifest"),
        ]

    def test_bad_format_reported(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        manifest_path = entry.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = ARTIFACT_FORMAT + 1
        manifest_path.write_text(json.dumps(manifest))
        assert registry.verify() == [(1, "bad-format")]

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(ModelRegistryError, match="no registry directory"):
            ModelRegistry(tmp_path).verify("ghost")

    def test_cli_registry_verify(self, fitted, tmp_path, capsys):
        from repro.cli import main

        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        code = main(
            ["registry", "verify", "--registry", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "twostage/v0001  ok" in out
        assert "1 ok, 0 broken" in out

    def test_cli_registry_verify_flags_corruption(self, fitted, tmp_path, capsys):
        from repro.cli import main

        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        entry = registry.save_model(predictor)
        data = bytearray((entry.path / "predictor.pkl").read_bytes())
        data[0] ^= 0xFF
        (entry.path / "predictor.pkl").write_bytes(bytes(data))
        code = main(["registry", "verify", "--registry", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "corrupt-payload" in out

    def test_cli_registry_verify_missing_root_is_one_line_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        code = main(
            ["registry", "verify", "--registry", str(tmp_path / "nope")]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("repro: error:")
        assert "Traceback" not in captured.err


class TestRollback:
    def test_head_follows_saves_and_rollback_pins_it(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        registry.save_model(predictor)
        assert registry.head_version() == 2
        entry = registry.rollback("twostage", 1)
        assert entry.version == 1
        assert registry.head_version() == 1
        assert registry.latest().version == 1  # rollback sticks

    def test_next_save_advances_head_past_a_rollback(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        registry.save_model(predictor)
        registry.rollback("twostage", 1)
        assert registry.save_model(predictor).version == 3
        assert registry.head_version() == 3
        assert registry.latest().version == 3

    def test_rollback_refuses_corrupt_target_in_one_line(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        target = registry.save_model(predictor)
        registry.save_model(predictor)
        data = bytearray((target.path / "predictor.pkl").read_bytes())
        data[len(data) // 2] ^= 0xFF
        (target.path / "predictor.pkl").write_bytes(bytes(data))
        with pytest.raises(
            ModelRegistryError, match="refusing rollback.*corrupt-payload"
        ):
            registry.rollback("twostage", 1)
        assert registry.head_version() == 2  # head untouched

    def test_rollback_refuses_missing_target(self, fitted, tmp_path):
        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        with pytest.raises(ModelRegistryError, match="target is missing"):
            registry.rollback("twostage", 42)

    def test_dangling_head_degrades_with_warning(self, fitted, tmp_path):
        import shutil

        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        v2 = registry.save_model(predictor)
        registry.rollback("twostage", 2)
        registry.save_model(predictor)  # v3; head -> 3
        registry.rollback("twostage", 2)
        shutil.rmtree(v2.path)
        with pytest.warns(DegradedDataWarning, match="uncommitted version"):
            assert registry.latest().version == 3

    def test_cli_registry_rollback(self, fitted, tmp_path, capsys):
        from repro.cli import main

        predictor, _, _ = fitted
        registry = ModelRegistry(tmp_path)
        registry.save_model(predictor)
        registry.save_model(predictor)
        code = main(
            ["registry", "rollback", "--registry", str(tmp_path), "--to", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "head -> v0001" in out
        assert registry.head_version() == 1

    def test_cli_registry_rollback_requires_to(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["registry", "rollback", "--registry", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "requires --to" in captured.err
        assert "Traceback" not in captured.err

    def test_cli_registry_rollback_refusal_is_one_line(
        self, fitted, tmp_path, capsys
    ):
        from repro.cli import main

        predictor, _, _ = fitted
        ModelRegistry(tmp_path).save_model(predictor)
        code = main(
            ["registry", "rollback", "--registry", str(tmp_path), "--to", "9"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "refusing rollback" in captured.err
        assert "Traceback" not in captured.err
