"""Replay-level drift governance: trigger, guarded swap, rollback, resume.

These tests replay the drift experiment's regime-change trace (a tiny
preset extended past a whole-machine maintenance reinstall) through
``serve_replay`` with the drift governor enabled — the full loop the
``drift`` experiment measures, at test scale: detectors fire after the
change, windowed retrains publish through holdout validation, a poisoned
refit is caught by post-swap probation and rolled back, and the whole
drifting replay still survives kill-and-resume bit-identically.
"""

import dataclasses

import pytest

from repro.experiments.drift_experiment import (
    drift_detector_config,
    drift_plan,
    drift_trace_config,
)
from repro.features.splits import DatasetSplit
from repro.serve import serve_replay
from repro.telemetry.simulator import simulate_trace
from repro.utils.errors import SimulatedCrashError

MINUTES_PER_DAY = 1440.0
WINDOW_DAYS = 8.0


@pytest.fixture(scope="module")
def drift_trace():
    return simulate_trace(drift_trace_config("tiny"))


@pytest.fixture(scope="module")
def drift_split():
    plan = drift_plan("tiny")
    return DatasetSplit(
        "DRIFT",
        0.0,
        plan["train_days"] * MINUTES_PER_DAY,
        plan["duration_days"] * MINUTES_PER_DAY,
    )


def governed_replay(trace, split, root, **kwargs):
    return serve_replay(
        trace,
        root,
        splits=[split],
        split="DRIFT",
        model="gbdt",
        random_state=0,
        fast=True,
        drift=drift_detector_config(),
        retrain_window_days=WINDOW_DAYS,
        **kwargs,
    )


@pytest.fixture(scope="module")
def governed(drift_trace, drift_split, tmp_path_factory):
    return governed_replay(
        drift_trace, drift_split, tmp_path_factory.mktemp("governed")
    )


class TestGovernedReplay:
    def test_detectors_fire_and_guarded_retrains_publish(self, governed):
        assert governed.drift_retrains >= 1
        assert governed.retrains >= governed.drift_retrains
        triggers = governed.drift["triggers"]
        assert triggers, "no drift trigger recorded over a regime change"
        reasons = {reason for _, reason in triggers}
        assert reasons <= {"feature_psi", "score_psi", "f1_decay"}
        change_minute = drift_plan("tiny")["change_day"] * MINUTES_PER_DAY
        assert any(minute >= change_minute for minute, _ in triggers)

    def test_swaps_recorded_with_versions(self, governed):
        swaps = governed.drift["swaps"]
        assert len(swaps) == governed.retrains
        versions = [version for _, version in swaps]
        assert versions == sorted(versions)
        assert all(version >= 2 for version in versions)

    def test_summary_exposes_detector_state(self, governed):
        state = governed.drift["state"]
        assert set(state) >= {
            "feature_psi",
            "score_psi",
            "rolling_f1",
            "f1_decay",
            "labels_observed",
        }
        assert state["labels_observed"] > 0

    def test_digest_covers_the_drift_section(self, governed):
        bumped = dataclasses.replace(
            governed, drift_retrains=governed.drift_retrains + 1
        )
        assert bumped.digest() != governed.digest()

    def test_report_renders_drift_lines(self, governed):
        text = str(governed)
        assert "drift" in text

    def test_governed_replay_is_deterministic(
        self, governed, drift_trace, drift_split, tmp_path_factory
    ):
        again = governed_replay(
            drift_trace, drift_split, tmp_path_factory.mktemp("governed-again")
        )
        assert again.digest() == governed.digest()


class TestPoisonedRetrainRollback:
    @pytest.fixture(scope="class")
    def poisoned(self, drift_trace, drift_split, tmp_path_factory):
        return governed_replay(
            drift_trace,
            drift_split,
            tmp_path_factory.mktemp("poisoned"),
            poison_retrains=(0,),
        )

    def test_poisoned_swap_is_rolled_back_automatically(self, poisoned):
        # The inverted-label candidate validates cleanly against its own
        # poisoned holdout, publishes, then collapses on the real stream:
        # only post-swap probation can catch it.
        assert poisoned.rollbacks >= 1
        assert poisoned.drift["rollbacks"]
        assert any("rolled back" in note for note in poisoned.notes)

    def test_rollback_targets_a_previously_published_version(self, poisoned):
        rollback_versions = {version for _, version in poisoned.drift["rollbacks"]}
        published = {1} | {version for _, version in poisoned.drift["swaps"]}
        assert rollback_versions <= published


class TestDriftResume:
    def test_kill_and_resume_is_bit_identical_with_drift(
        self, governed, drift_trace, drift_split, tmp_path
    ):
        with pytest.raises(SimulatedCrashError):
            governed_replay(
                drift_trace,
                drift_split,
                tmp_path / "reg",
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_events=400,
                crash_after_events=1800,
            )
        resumed = governed_replay(
            drift_trace,
            drift_split,
            tmp_path / "reg",
            checkpoint_dir=tmp_path / "ckpt",
            resume=True,
        )
        assert resumed.resumed_from == 1600
        assert resumed.digest() == governed.digest()
        assert resumed.drift_retrains == governed.drift_retrains
        assert resumed.rollbacks == governed.rollbacks
