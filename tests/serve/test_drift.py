"""Units for the drift detectors and the guarded-retrain governor."""

import numpy as np
import pytest

from repro.serve.drift import (
    DriftConfig,
    DriftMonitor,
    RetrainGovernor,
    RollingF1Monitor,
    WindowedPSI,
    fit_validated_candidate,
)
from repro.serve.scorer import Alert
from repro.utils.errors import ValidationError


def alert(job_id, node_id, *, score=0.5, predicted=1):
    return Alert(
        run_idx=job_id,
        job_id=job_id,
        node_id=node_id,
        app_id=0,
        end_minute=10.0 * job_id,
        scored_minute=10.0 * job_id,
        score=score,
        predicted=predicted,
        model_version=1,
    )


class TestWindowedPSI:
    def make(self, rng, *, shift=0.0, n=600):
        psi = WindowedPSI(reference_rows=300, window_rows=300, bins=10, top_k=3)
        for _ in range(300):
            psi.observe(rng.normal(size=4))
        for _ in range(n):
            psi.observe(rng.normal(size=4) + shift)
        return psi

    def test_not_ready_until_reference_and_half_window(self):
        psi = WindowedPSI(reference_rows=10, window_rows=10, bins=5, top_k=1)
        rng = np.random.default_rng(0)
        for _ in range(10):
            psi.observe(rng.normal(size=3))
        assert not psi.ready  # reference frozen, window still empty
        assert psi.statistic() == 0.0
        for _ in range(5):
            psi.observe(rng.normal(size=3))
        assert psi.ready

    def test_same_distribution_stays_under_default_threshold(self):
        psi = self.make(np.random.default_rng(1))
        assert psi.statistic() < DriftConfig().psi_threshold

    def test_shifted_distribution_scores_high(self):
        psi = self.make(np.random.default_rng(1), shift=2.0)
        assert psi.statistic() > 1.0

    def test_scalar_observations_work(self):
        psi = WindowedPSI(reference_rows=50, window_rows=50, bins=10, top_k=1)
        rng = np.random.default_rng(2)
        for _ in range(50):
            psi.observe(float(rng.normal()))
        for _ in range(50):
            psi.observe(float(rng.normal() + 3.0))
        assert psi.statistic() > 0.5

    def test_statistic_is_cached_by_version(self):
        psi = self.make(np.random.default_rng(3))
        assert psi.statistic() == psi.statistic()


class TestRollingF1Monitor:
    def test_f1_over_window(self):
        monitor = RollingF1Monitor(window=10, min_labels=4)
        for predicted, actual in [(1, 1), (1, 1), (1, 0), (0, 1)]:
            monitor.observe(predicted, actual)
        assert monitor.ready
        # tp=2 fp=1 fn=1 -> F1 = 4/6
        assert monitor.f1() == pytest.approx(2 / 3)

    def test_decay_tracks_best_since_reset(self):
        monitor = RollingF1Monitor(window=4, min_labels=2)
        for _ in range(4):
            monitor.observe(1, 1)
        assert monitor.f1() == 1.0 and monitor.decay() == 0.0
        for _ in range(4):
            monitor.observe(1, 0)
        assert monitor.f1() == 0.0
        assert monitor.decay() == 1.0
        monitor.reset()
        assert monitor.since_reset == 0
        assert not monitor.ready
        assert monitor.decay() == 0.0


class TestDriftMonitor:
    def cfg(self, **kw):
        base = dict(
            reference_rows=8,
            window_rows=8,
            bins=4,
            f1_window=8,
            min_labels=2,
        )
        base.update(kw)
        return DriftConfig(**base)

    def test_labels_resolve_pending_predictions_once(self):
        monitor = DriftMonitor(self.cfg())
        monitor.observe_alert(alert(1, 10, predicted=1))
        monitor.observe_alert(alert(2, 11, predicted=0))
        monitor.match_labels({(1, 10): 1})
        assert monitor.f1.total_observed == 1
        # Re-offering the same resolved key must not double count.
        monitor.observe_alert(alert(1, 10, predicted=1))
        monitor.match_labels({(1, 10): 1, (2, 11): 0})
        assert monitor.f1.total_observed == 2

    def test_state_and_f1_decay_reason(self):
        monitor = DriftMonitor(self.cfg(f1_drop=0.3))
        for i in range(4):
            monitor.observe_alert(alert(i, i, predicted=1))
        monitor.match_labels({(i, i): 1 for i in range(4)})
        assert monitor.drift_reason() is None
        for i in range(4, 12):
            monitor.observe_alert(alert(i, i, predicted=1))
        monitor.match_labels({(i, i): 0 for i in range(4, 12)})
        state = monitor.state()
        assert state["f1_decay"] > 0.3
        assert monitor.drift_reason() == "f1_decay"

    def test_reset_after_swap_rebaselines_everything(self):
        monitor = DriftMonitor(self.cfg())
        rng = np.random.default_rng(0)
        for i in range(16):
            monitor.scores.observe(float(rng.normal()))
            monitor.observe_alert(alert(i, i, predicted=1))
        monitor.match_labels({(i, i): 1 for i in range(8)})
        assert monitor.f1.total_observed == 8
        monitor.reset_after_swap()
        assert not monitor.features.ready
        assert not monitor.scores.ready
        assert monitor.f1.since_reset == 0
        # Old-model predictions still pending at swap time are dropped:
        # their labels must not charge the new model's probation window.
        monitor.match_labels({(i, i): 0 for i in range(8, 16)})
        assert monitor.f1.since_reset == 0


class TestRetrainGovernor:
    def cfg(self, **kw):
        base = dict(
            reference_rows=8,
            window_rows=8,
            f1_window=8,
            min_labels=2,
            check_every_minutes=60.0,
            cooldown_minutes=120.0,
            postswap_min_labels=4,
            postswap_drop=0.25,
            postswap_margin=0.10,
        )
        base.update(kw)
        return DriftConfig(**base)

    def test_should_check_throttles(self):
        governor = RetrainGovernor(self.cfg())
        assert governor.should_check(0.0)
        assert not governor.should_check(30.0)
        assert governor.should_check(60.0)

    def test_drift_trigger_respects_cooldown(self):
        cfg = self.cfg(f1_drop=0.3)
        governor = RetrainGovernor(cfg)
        monitor = DriftMonitor(cfg)
        for i in range(4):
            monitor.observe_alert(alert(i, i, predicted=1))
        monitor.match_labels({(i, i): 1 for i in range(4)})
        for i in range(4, 12):
            monitor.observe_alert(alert(i, i, predicted=1))
        monitor.match_labels({(i, i): 0 for i in range(4, 12)})
        assert governor.drift_trigger(100.0, monitor) == "f1_decay"
        assert governor.triggers == [(100.0, "f1_decay")]
        assert governor.drift_trigger(150.0, monitor) is None  # cooling down
        assert governor.drift_trigger(220.0, monitor) == "f1_decay"

    def arm(self, governor, monitor, *, holdout_f1=0.8, pre_swap=0.7):
        governor.record_swap(
            version=2,
            previous_version=1,
            previous_predictor=object(),
            holdout_f1=holdout_f1,
            previous_holdout_f1=0.75,
            pre_swap_rolling_f1=pre_swap,
            at_minute=500.0,
        )
        assert governor.swaps == [(500.0, 2)]

    def feed(self, monitor, pairs):
        # Unique (job, node) keys per call: the monitor never re-resolves
        # a consumed key, so repeated feeds must not collide.
        base = 1000 + monitor.f1.total_observed
        for i, (p, a) in enumerate(pairs):
            monitor.observe_alert(alert(base + i, base + i, predicted=p))
        monitor.match_labels(
            {(base + i, base + i): a for i, (_, a) in enumerate(pairs)}
        )

    def test_rollback_requires_collapse_below_both_marks(self):
        cfg = self.cfg()
        governor = RetrainGovernor(cfg)
        monitor = DriftMonitor(cfg)
        self.arm(governor, monitor)
        assert not governor.should_rollback(monitor)  # no labels yet
        # Healthy post-swap stream: F1 ~ 0.8 stays above both marks.
        self.feed(monitor, [(1, 1)] * 8)
        assert not governor.should_rollback(monitor)
        # Collapse: all-wrong predictions fall below holdout - drop AND
        # below the previous model's rolling F1 - margin.
        self.feed(monitor, [(1, 0)] * 8)
        assert governor.should_rollback(monitor)

    def test_merely_missing_inflated_holdout_does_not_rollback(self):
        cfg = self.cfg()
        governor = RetrainGovernor(cfg)
        monitor = DriftMonitor(cfg)
        # Holdout said 1.0 (tiny optimistic sample); the old model was
        # actually rolling at 0.55.  A new model delivering ~0.6 misses
        # holdout - drop but beats the old model: keep it.
        self.arm(governor, monitor, holdout_f1=1.0, pre_swap=0.55)
        self.feed(monitor, [(1, 1), (1, 0)] * 6)  # rolling F1 = 2/3
        assert monitor.f1.f1() < 1.0 - cfg.postswap_drop
        assert not governor.should_rollback(monitor)

    def test_record_rollback_restores_and_disarms(self):
        cfg = self.cfg()
        governor = RetrainGovernor(cfg)
        monitor = DriftMonitor(cfg)
        self.arm(governor, monitor)
        self.feed(monitor, [(1, 0)] * 8)
        assert governor.should_rollback(monitor)
        version, predictor = governor.record_rollback(800.0)
        assert version == 1 and predictor is not None
        assert governor.rollbacks == 1
        assert governor.rollback_events == [(800.0, 1)]
        assert governor.serving_holdout_f1 == 0.75
        assert governor.last_good is None
        assert not governor.should_rollback(monitor)  # disarmed


class TestFitValidatedCandidate:
    def test_too_few_rows_is_rejected_not_raised(self):
        candidate, report = fit_validated_candidate(
            model="lr",
            rows=[],
            counts=np.array([]),
            schema=None,
            serving=None,
            config=DriftConfig(min_holdout=10),
            random_state=0,
            fast=True,
        )
        assert candidate is None
        assert not report.accepted
        assert "too few resolved rows" in report.reason


class TestConfigValidation:
    def test_holdout_fraction_bounds(self):
        with pytest.raises(ValidationError):
            DriftConfig(holdout_fraction=1.0)
        with pytest.raises(ValidationError):
            DriftConfig(reference_rows=0)
