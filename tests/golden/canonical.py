"""Canonical configuration and stage digests for the golden suite.

The golden tests pin SHA-256 digests of every pipeline stage — simulated
trace, feature matrix, TwoStage metrics — for a *canonical* small
configuration under several seeds.  The configuration is spelled out
literally here (never derived from the experiment presets) so that
tuning a preset cannot silently re-key the goldens: any digest change
must come from a content-affecting code change, and the suite reports
which stage diverged first.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core.pipeline import PredictionPipeline, SplitResult
from repro.features.builder import FeatureMatrix
from repro.features.splits import make_paper_splits
from repro.telemetry.config import (
    ErrorModelConfig,
    TraceConfig,
    WorkloadConfig,
)
from repro.telemetry.trace import Trace
from repro.topology.machine import MachineConfig

__all__ = [
    "GOLDEN_SEEDS",
    "STAGES",
    "canonical_config",
    "trace_digest",
    "features_digest",
    "metrics_digest",
    "evaluate_canonical",
]

#: Seeds the goldens are pinned for.
GOLDEN_SEEDS = (2018, 2019, 2020)

#: Pipeline stages in dependency order; drift is reported at the first
#: stage whose digest diverges.
STAGES = ("simulate", "features", "predict")


def canonical_config(seed: int) -> TraceConfig:
    """The frozen small config the goldens are pinned against.

    Do not edit casually: any change re-keys every golden digest.  128
    nodes, 8 days at 10-minute ticks, with a hot error model so the SBE
    path is exercised end to end.
    """
    return TraceConfig(
        machine=MachineConfig(
            grid_x=4,
            grid_y=4,
            cages_per_cabinet=1,
            slots_per_cage=2,
            nodes_per_slot=4,
        ),
        workload=WorkloadConfig(
            num_applications=12,
            popularity_exponent=1.1,
            target_utilization=0.8,
            mean_runtime_minutes=240.0,
            runtime_sigma=0.4,
            mean_nodes_per_run=3.0,
            max_nodes_per_run=16,
            second_aprun_probability=0.25,
            locality_bias=0.5,
        ),
        errors=ErrorModelConfig(
            base_rate_per_hour=0.05,
            offender_node_fraction=0.15,
            quiet_day_factor=0.02,
            episode_rate_per_100_days=12.0,
        ),
        duration_days=8.0,
        tick_minutes=10.0,
        seed=seed,
        record_nodes=(3,),
    )


def _update_array(hasher: "hashlib._Hash", name: str, array: np.ndarray) -> None:
    hasher.update(name.encode())
    hasher.update(str(array.dtype).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())


def trace_digest(trace: Trace) -> str:
    """Content hash of a trace (``meta`` deliberately excluded)."""
    hasher = hashlib.sha256()
    for name in sorted(trace.samples):
        _update_array(hasher, f"samples/{name}", trace.samples[name])
    for name in sorted(trace.runs):
        _update_array(hasher, f"runs/{name}", trace.runs[name])
    _update_array(hasher, "node_mean_temp", trace.node_mean_temp)
    _update_array(hasher, "node_mean_power", trace.node_mean_power)
    _update_array(hasher, "node_susceptibility", trace.node_susceptibility)
    hasher.update(json.dumps(trace.app_names).encode())
    for node in sorted(trace.recorded_series):
        for name in sorted(trace.recorded_series[node]):
            _update_array(
                hasher, f"recorded/{node}/{name}", trace.recorded_series[node][name]
            )
    return hasher.hexdigest()


def features_digest(features: FeatureMatrix) -> str:
    """Content hash of a feature matrix (data, labels, schema, meta)."""
    hasher = hashlib.sha256()
    _update_array(hasher, "X", features.X)
    _update_array(hasher, "y", features.y)
    hasher.update(json.dumps(features.schema.names).encode())
    hasher.update(
        json.dumps(
            {name: sorted(tags) for name, tags in features.schema.tags.items()},
            sort_keys=True,
        ).encode()
    )
    for name in sorted(features.meta):
        _update_array(hasher, f"meta/{name}", features.meta[name])
    return hasher.hexdigest()


def metrics_digest(result: SplitResult) -> str:
    """Content hash of an evaluation's predictions and metrics."""
    hasher = hashlib.sha256()
    _update_array(hasher, "y_true", np.asarray(result.y_true))
    _update_array(hasher, "y_pred", np.asarray(result.y_pred))
    hasher.update(
        json.dumps(
            {
                "precision": f"{result.precision:.17g}",
                "recall": f"{result.recall:.17g}",
                "f1": f"{result.f1:.17g}",
            },
            sort_keys=True,
        ).encode()
    )
    return hasher.hexdigest()


def evaluate_canonical(features: FeatureMatrix, duration_days: float) -> SplitResult:
    """The pinned evaluation: TwoStage GBDT on a 5-train/2-test split."""
    splits = make_paper_splits(
        train_days=5.0,
        test_days=2.0,
        offsets_days=(0.0,),
        duration_days=duration_days,
    )
    pipeline = PredictionPipeline(features, splits)
    return pipeline.evaluate_twostage("DS1", "gbdt", random_state=0)
