"""Golden-digest regression suite.

Pins SHA-256 digests of the canonical small-config trace, feature
matrix, and TwoStage metrics for three seeds
(``tests/golden/golden_digests.json``).  Any content drift fails with a
message naming the *first* pipeline stage that diverged (simulate →
features → predict), which localizes the regression immediately: a
``simulate`` drift is an RNG/substrate change, a ``features``-only drift
is a builder change, a ``predict``-only drift is an ML change.

The suite also enforces the sharding contract on every run: merged
2-shard and 4-shard simulations must produce the *same* digest as the
pinned serial trace.

After an intentional content change, re-pin with::

    GOLDEN_UPDATE=1 PYTHONPATH=src python -m pytest tests/golden -q

and commit the refreshed JSON together with the change that caused it.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.features.builder import build_features
from repro.telemetry.simulator import TraceSimulator, merge_shard_results
from repro.topology.sharding import plan_shards

from tests.golden.canonical import (
    GOLDEN_SEEDS,
    STAGES,
    canonical_config,
    evaluate_canonical,
    features_digest,
    metrics_digest,
    trace_digest,
)

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"
UPDATE = bool(os.environ.get("GOLDEN_UPDATE"))


@lru_cache(maxsize=None)
def compute_digests(seed: int) -> dict[str, str]:
    """All stage digests for one seed (cached: computed once per session)."""
    config = canonical_config(seed)
    trace = TraceSimulator(config).run()
    digests = {"simulate": trace_digest(trace)}
    for shards in (2, 4):
        spans = plan_shards(config.machine, shards)
        merged = merge_shard_results(
            config, [TraceSimulator(config, span).run_span() for span in spans]
        )
        digests[f"simulate_shards{shards}"] = trace_digest(merged)
    features = build_features(trace)
    digests["features"] = features_digest(features)
    result = evaluate_canonical(features, config.duration_days)
    digests["predict"] = metrics_digest(result)
    return digests


def load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} is missing; regenerate with GOLDEN_UPDATE=1 "
            "and commit it"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
class TestGoldenDigests:
    def test_stages_match_pinned_digests(self, seed):
        actual = compute_digests(seed)
        if UPDATE:
            goldens = (
                json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
            )
            goldens[str(seed)] = {
                stage: actual[stage] for stage in STAGES
            }
            GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
            pytest.skip(f"golden digests re-pinned for seed {seed}")
        pinned = load_goldens().get(str(seed))
        assert pinned is not None, (
            f"no golden digests pinned for seed {seed}; "
            "regenerate with GOLDEN_UPDATE=1"
        )
        diverged = [stage for stage in STAGES if actual[stage] != pinned[stage]]
        if diverged:
            first = diverged[0]
            pytest.fail(
                f"golden digest drift (seed {seed}): first divergence at stage "
                f"{first!r} (diverged stages: {diverged}; stages are checked "
                f"in order {list(STAGES)}, so fix/inspect {first!r} first). "
                f"expected {pinned[first][:16]}..., got {actual[first][:16]}... "
                "If the change is intentional, re-pin with GOLDEN_UPDATE=1 "
                "and commit the refreshed golden_digests.json."
            )

    def test_sharded_simulation_matches_serial_digest(self, seed):
        """Shards ∈ {2, 4} must reproduce the serial trace bit for bit."""
        actual = compute_digests(seed)
        for shards in (2, 4):
            assert actual[f"simulate_shards{shards}"] == actual["simulate"], (
                f"{shards}-shard merge diverged from the serial trace for "
                f"seed {seed}: the sharding layer broke bit-parity"
            )


def test_segmented_store_roundtrip_matches_pinned_digest(tmp_path):
    """A store written/read through :mod:`repro.store` hits the same
    pinned ``simulate`` digest as the serial run — both via the merged
    in-memory trace and via the streamed (out-of-core) digest."""
    from repro.store import simulate_trace_to_store, store_trace_digest

    seed = GOLDEN_SEEDS[0]
    expected = compute_digests(seed)["simulate"]
    store = simulate_trace_to_store(
        canonical_config(seed), tmp_path / "store", segments=4
    )
    assert store_trace_digest(store) == expected, (
        "streamed store digest diverged from the pinned serial digest: "
        "the segmented store layer broke bit-parity"
    )
    assert trace_digest(store.load_trace()) == expected
