"""Golden guard: ensemble flattening changes no pinned digest.

Three oracles must agree on the canonical evaluation, byte for byte:

1. the legacy per-tree scoring loop (``_decision_function_pertree``),
2. the flattened numpy batch kernel (the default path), and
3. the numba kernel, when numba is installed (skips cleanly otherwise).

All three are pinned against the committed golden ``predict`` digest, so
a kernel change that perturbs even one score bit fails here with the
backend named.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.features.builder import build_features
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.kernels import numba_available, use_backend
from repro.telemetry.simulator import TraceSimulator

from tests.golden.canonical import (
    GOLDEN_SEEDS,
    canonical_config,
    evaluate_canonical,
    metrics_digest,
)
from tests.golden.test_golden_digests import load_goldens


@lru_cache(maxsize=None)
def _canonical_features():
    """Trace + features for the first golden seed (built once)."""
    config = canonical_config(GOLDEN_SEEDS[0])
    trace = TraceSimulator(config).run()
    return build_features(trace), config.duration_days


def _pinned_predict_digest() -> str:
    return load_goldens()[str(GOLDEN_SEEDS[0])]["predict"]


def test_flat_kernel_hits_pinned_predict_digest():
    features, duration_days = _canonical_features()
    with use_backend("numpy"):
        result = evaluate_canonical(features, duration_days)
    assert metrics_digest(result) == _pinned_predict_digest()


def test_pertree_oracle_hits_pinned_predict_digest(monkeypatch):
    """The pre-flattening scoring loop still reproduces the golden."""
    features, duration_days = _canonical_features()
    monkeypatch.setattr(
        GradientBoostingClassifier,
        "_decision_function",
        GradientBoostingClassifier._decision_function_pertree,
    )
    result = evaluate_canonical(features, duration_days)
    assert metrics_digest(result) == _pinned_predict_digest()


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_numba_kernel_hits_pinned_predict_digest():
    features, duration_days = _canonical_features()
    with use_backend("numba"):
        result = evaluate_canonical(features, duration_days)
    assert metrics_digest(result) == _pinned_predict_digest()


def test_flat_scores_equal_pertree_scores_on_canonical_model():
    """Score-level bit identity on the canonical fitted model itself."""
    features, duration_days = _canonical_features()
    # Reuse the canonical split windows: train on the first 5 days.
    from repro.core.pipeline import PredictionPipeline
    from repro.features.splits import make_paper_splits

    splits = make_paper_splits(
        train_days=5.0,
        test_days=2.0,
        offsets_days=(0.0,),
        duration_days=duration_days,
    )
    pipeline = PredictionPipeline(features, splits)
    train, test = pipeline.train_test("DS1")
    gb = GradientBoostingClassifier(random_state=0)
    gb.fit(train.X, train.y)
    flat = gb.decision_function(test.X)
    pertree = gb._decision_function_pertree(test.X)
    assert np.array_equal(flat, pertree)
    if numba_available():
        with use_backend("numba"):
            assert np.array_equal(gb.decision_function(test.X), pertree)
