"""Scenario neutrality and shard determinism against the pinned goldens.

The scenario engine's hard invariant: a simulation with ``scenario=None``
or an *empty* ``Scenario()`` must be byte-for-byte the simulation this
repo produced before the engine existed.  Rather than comparing two
fresh runs to each other (which would also pass if both drifted), the
empty-scenario trace is hashed against the **pinned** golden ``simulate``
digests for every golden seed — any neutrality leak re-keys the digest
and fails here by name.

The second invariant is shard determinism *with* a scenario attached:
every event's effect is either a pure function of ``(config, scenario,
minute)`` or a whole-machine scenario-keyed draw, so a sharded
simulation merges to the exact serial trace.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.scenarios import (
    Aging,
    CoolingDegradation,
    Maintenance,
    SbeStorm,
    Scenario,
    SeasonalDrift,
    WorkloadShift,
)
from repro.telemetry.simulator import TraceSimulator, merge_shard_results
from repro.topology.sharding import plan_shards

from tests.golden.canonical import GOLDEN_SEEDS, canonical_config, trace_digest

GOLDEN_PATH = Path(__file__).parent / "golden_digests.json"

#: One of each event kind, all active inside the canonical 8-day trace.
EVENTS = {
    "seasonal_drift": SeasonalDrift(
        start_day=0.0, end_day=8.0, amplitude_celsius=2.0, period_days=3.0
    ),
    "cooling_degradation": CoolingDegradation(
        start_day=1.0, end_day=5.0, celsius_at_end=4.0, node_lo=0, node_hi=64
    ),
    "maintenance": Maintenance(day=4.0, susceptibility_scale=1.5),
    "workload_shift": WorkloadShift(
        start_day=3.0, end_day=8.0, arrival_factor=1.4, runtime_factor=1.3
    ),
    "sbe_storm": SbeStorm(start_day=2.0, end_day=4.0, rate_factor=6.0, node_hi=48),
    "aging": Aging(start_day=0.0, end_day=8.0, growth_per_day=0.05),
}


def pinned_simulate_digest(seed: int) -> str:
    return json.loads(GOLDEN_PATH.read_text())[str(seed)]["simulate"]


class TestEmptyScenarioIsGolden:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_empty_scenario_matches_pinned_golden(self, seed):
        config = dataclasses.replace(canonical_config(seed), scenario=Scenario())
        assert trace_digest(TraceSimulator(config).run()) == pinned_simulate_digest(
            seed
        ), (
            f"empty Scenario() changed the seed-{seed} trace digest: "
            f"a telemetry hook is not gated on `compiled is not None`"
        )


class TestScenarioShardDeterminism:
    @pytest.mark.parametrize("kind", sorted(EVENTS))
    def test_single_event_two_shards_match_serial(self, kind):
        config = dataclasses.replace(
            canonical_config(GOLDEN_SEEDS[0]),
            duration_days=4.0,
            scenario=Scenario(events=(EVENTS[kind],), seed=3),
        )
        serial = trace_digest(TraceSimulator(config).run())
        spans = plan_shards(config.machine, 2)
        merged = merge_shard_results(
            config, [TraceSimulator(config, span).run_span() for span in spans]
        )
        assert trace_digest(merged) == serial, (
            f"scenario event {kind!r} broke shard determinism "
            f"(2-shard merge != serial)"
        )

    def test_scenario_changes_the_trace_at_all(self):
        """Guard against an engine that compiles but never applies."""
        config = canonical_config(GOLDEN_SEEDS[0])
        on = dataclasses.replace(
            config, scenario=Scenario(events=(EVENTS["sbe_storm"],))
        )
        assert trace_digest(TraceSimulator(on).run()) != pinned_simulate_digest(
            GOLDEN_SEEDS[0]
        )
