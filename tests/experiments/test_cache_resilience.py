"""Tests for the experiment context's resilient disk cache."""

import warnings

import pytest

from repro.experiments.runner import ExperimentContext
from repro.utils.errors import DegradedDataWarning


def _cache_npz(tmp_path):
    files = list(tmp_path.glob("trace-*.npz"))
    assert len(files) == 1
    return files[0]


class TestCacheFallback:
    def test_corrupt_cache_falls_back_to_resimulation(self, tmp_path):
        first = ExperimentContext("tiny", cache_dir=tmp_path)
        expected_rows = first.trace.num_samples
        npz = _cache_npz(tmp_path)
        npz.write_bytes(b"this is not a zip archive")

        again = ExperimentContext("tiny", cache_dir=tmp_path)
        with pytest.warns(DegradedDataWarning, match="re-simulating"):
            trace = again.trace
        assert trace.num_samples == expected_rows

    def test_fallback_rewrites_a_valid_cache(self, tmp_path):
        first = ExperimentContext("tiny", cache_dir=tmp_path)
        first.trace
        _cache_npz(tmp_path).write_bytes(b"junk")

        broken = ExperimentContext("tiny", cache_dir=tmp_path)
        with pytest.warns(DegradedDataWarning):
            broken.trace

        # Third context reads the repaired cache silently.
        healed = ExperimentContext("tiny", cache_dir=tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            assert healed.trace.num_samples > 0

    def test_truncated_cache_falls_back(self, tmp_path):
        first = ExperimentContext("tiny", cache_dir=tmp_path)
        first.trace
        npz = _cache_npz(tmp_path)
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 3])

        again = ExperimentContext("tiny", cache_dir=tmp_path)
        with pytest.warns(DegradedDataWarning):
            assert again.trace.num_samples > 0
