"""Tests for the imbalance-mitigation comparison experiment."""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def result(tiny_context):
    return run_experiment("imbalance", tiny_context)


class TestImbalanceExperiment:
    def test_all_strategies_present(self, result):
        assert {
            "none (full data)",
            "random under-sampling",
            "smote over-sampling",
            "kmeans under-sampling",
            "twostage",
        } <= set(result.data)

    def test_twostage_competitive(self, result):
        """TwoStage must be within a small margin of the best strategy
        (the paper's claim is parity-or-better at far lower cost)."""
        twostage = result.data["twostage"]["f1"]
        best = max(v["f1"] for v in result.data.values())
        assert twostage >= best - 0.08

    def test_twostage_cheaper_than_full(self, result):
        assert (
            result.data["twostage"]["train_seconds"]
            < result.data["none (full data)"]["train_seconds"]
        )

    def test_resampling_beats_nothing_on_recall(self, result):
        """Balancing the classes should not collapse recall."""
        for label in ("random under-sampling", "smote over-sampling"):
            assert result.data[label]["recall"] > 0.5
