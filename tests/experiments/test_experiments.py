"""Tests for presets, the caching runner, and every experiment driver."""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.presets import PRESETS, preset_config, split_plan
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import ExperimentContext
from repro.utils.errors import ValidationError


class TestPresets:
    def test_all_presets_valid(self):
        for name in PRESETS:
            config = preset_config(name)
            assert config.num_ticks > 0
            plan = split_plan(name)
            need = plan["train_days"] + plan["test_days"] + max(plan["offsets"])
            assert need <= config.duration_days

    def test_default_keeps_titan_grid(self):
        config = preset_config("default")
        assert config.machine.grid_x == 25
        assert config.machine.grid_y == 8

    def test_unknown_preset(self):
        with pytest.raises(ValidationError):
            preset_config("huge")
        with pytest.raises(ValidationError):
            split_plan("huge")


class TestContextCaching:
    def test_trace_memoized(self, tiny_context):
        assert tiny_context.trace is tiny_context.trace

    def test_features_memoized(self, tiny_context):
        assert tiny_context.features is tiny_context.features

    def test_twostage_memoized(self, tiny_context):
        a = tiny_context.twostage("DS1", "lr")
        b = tiny_context.twostage("DS1", "lr")
        assert a is b
        c = tiny_context.twostage("DS1", "lr", exclude={"tp_nei"})
        assert c is not a

    def test_disk_cache_roundtrip(self, tmp_path):
        context = ExperimentContext("tiny", cache_dir=tmp_path)
        trace = context.trace
        again = ExperimentContext("tiny", cache_dir=tmp_path)
        assert again.trace.num_samples == trace.num_samples

    def test_split_names(self, tiny_context):
        assert tiny_context.split_names() == ["DS1", "DS2", "DS3"]


class TestRegistry:
    def test_unknown_experiment(self, tiny_context):
        with pytest.raises(ValidationError):
            run_experiment("fig99", tiny_context)

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_experiment_runs(self, experiment_id, tiny_context):
        result = run_experiment(experiment_id, tiny_context)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.text
        assert result.data


class TestExperimentClaims:
    """The paper's qualitative claims must hold on the tiny preset too."""

    def test_basic_a_high_recall_low_precision(self, tiny_context):
        result = run_experiment("table1", tiny_context)
        basic_a = result.data["basic_a"]["sbe"]
        assert basic_a["recall"] > 0.7
        assert basic_a["precision"] < 0.7

    def test_ml_beats_basic_a(self, tiny_context):
        result = run_experiment("fig10", tiny_context)
        basic_f1 = result.data["basic_a"]["sbe"]["f1"]
        gbdt_f1 = result.data["gbdt"]["sbe"]["f1"]
        assert gbdt_f1 > basic_f1

    def test_gbdt_best_or_near_best(self, tiny_context):
        result = run_experiment("fig10", tiny_context)
        scores = {m: result.data[m]["sbe"]["f1"] for m in ("lr", "gbdt", "svm", "nn")}
        assert scores["gbdt"] >= max(scores.values()) - 0.03

    def test_all_features_best_in_fig11(self, tiny_context):
        result = run_experiment("fig11", tiny_context)
        for split, improvements in result.data.items():
            assert improvements["All"] >= max(improvements.values()) - 0.08

    def test_table4_variants_close(self, tiny_context):
        result = run_experiment("table4", tiny_context)
        assert result.data["f1_spread"] < 0.15

    def test_severity_monotone_trend(self, tiny_context):
        result = run_experiment("table6", tiny_context)
        assert result.data["extreme"] >= result.data["light"] - 0.05

    def test_ecc_predictive_policy_profitable(self, tiny_context):
        result = run_experiment("ecc", tiny_context)
        predictive = result.data["predictive"]
        always_off = result.data["always_off"]
        assert predictive.exposed_sbe_samples < always_off.exposed_sbe_samples
        assert predictive.net_saved_core_hours > 0
