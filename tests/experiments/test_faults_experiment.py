"""Tests for the degradation experiment's graceful-degradation claims."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.faults_experiment import run_faults


@pytest.fixture(scope="module")
def faults_result(tiny_context):
    return run_experiment("faults", tiny_context)


class TestDegradationCurve:
    def test_clean_point_is_sanitizer_noop(self, faults_result):
        assert faults_result.data["clean_noop"] is True
        clean = faults_result.data["curve"][0]
        assert clean["intensity"] == 0.0
        assert clean["drop"] == 0.0
        assert clean["f1"] == faults_result.data["baseline_f1"]

    def test_moderate_intensity_bounded_drop(self, faults_result):
        # The acceptance gate: the default preset at moderate intensity
        # completes and loses < 0.15 absolute F1.
        moderate = faults_result.data["moderate_drop"]
        assert moderate is not None
        assert moderate < 0.15

    def test_quarantine_fraction_reported(self, faults_result):
        for point in faults_result.data["curve"]:
            assert 0.0 <= point["quarantined_fraction"] <= 1.0
        degraded = [p for p in faults_result.data["curve"] if p["intensity"] > 0]
        assert degraded and all(p["error"] is None for p in degraded)

    def test_custom_sweep_parameters(self, tiny_context):
        result = run_faults(
            tiny_context, intensities=(0.0, 0.2), seed=3, model="lr", split="DS2"
        )
        assert result.data["model"] == "lr"
        assert result.data["split"] == "DS2"
        assert len(result.data["curve"]) == 2
        assert result.data["curve"][1]["fault_rows"] > 0
