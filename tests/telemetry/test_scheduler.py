"""Tests for batch-job scheduling and node allocation."""

import numpy as np
import pytest

from repro.telemetry.applications import ApplicationCatalog
from repro.telemetry.config import TraceConfig, WorkloadConfig
from repro.telemetry.scheduler import WorkloadScheduler
from repro.topology.machine import Machine, MachineConfig
from repro.utils.rng import SeedSequenceFactory


@pytest.fixture(scope="module")
def schedule_and_machine():
    config = TraceConfig(
        machine=MachineConfig(grid_x=4, grid_y=2, cages_per_cabinet=1, slots_per_cage=2),
        workload=WorkloadConfig(mean_runtime_minutes=120, mean_nodes_per_run=4),
        duration_days=6.0,
        tick_minutes=5.0,
        seed=11,
    )
    machine = Machine(config.machine)
    seeds = SeedSequenceFactory(config.seed)
    catalog = ApplicationCatalog(config.workload, config.machine, seeds)
    runs = WorkloadScheduler(config, catalog, machine, seeds).build_schedule()
    return config, machine, runs


class TestSchedule:
    def test_nonempty_and_sorted(self, schedule_and_machine):
        _, _, runs = schedule_and_machine
        assert len(runs) > 50
        starts = [r.start_minute for r in runs]
        assert starts == sorted(starts)

    def test_runs_within_horizon(self, schedule_and_machine):
        config, _, runs = schedule_and_machine
        for run in runs:
            assert 0 <= run.start_minute < config.duration_minutes
            assert run.end_minute <= config.duration_minutes + 1e-9
            assert run.end_minute > run.start_minute

    def test_no_node_double_booking(self, schedule_and_machine):
        """A node can host at most one aprun at a time."""
        _, machine, runs = schedule_and_machine
        busy_until = np.zeros(machine.num_nodes)
        for run in runs:  # already start-sorted
            nodes = run.node_ids
            assert np.all(busy_until[nodes] <= run.start_minute + 1e-6), (
                f"run {run.run_id} overlaps on nodes "
                f"{nodes[busy_until[nodes] > run.start_minute + 1e-6]}"
            )
            busy_until[nodes] = run.end_minute

    def test_node_ids_valid_and_unique(self, schedule_and_machine):
        _, machine, runs = schedule_and_machine
        for run in runs:
            assert np.unique(run.node_ids).size == run.node_ids.size
            assert run.node_ids.min() >= 0
            assert run.node_ids.max() < machine.num_nodes

    def test_utilization_near_target(self, schedule_and_machine):
        config, machine, runs = schedule_and_machine
        node_minutes = sum(r.duration_minutes * r.node_ids.size for r in runs)
        utilization = node_minutes / (machine.num_nodes * config.duration_minutes)
        assert 0.5 < utilization <= 1.0

    def test_core_hours(self, schedule_and_machine):
        _, _, runs = schedule_and_machine
        run = runs[0]
        expected = run.duration_minutes / 60 * run.node_ids.size
        assert run.gpu_core_hours == pytest.approx(expected)

    def test_multi_aprun_jobs_share_allocation(self, schedule_and_machine):
        _, _, runs = schedule_and_machine
        by_job: dict[int, list] = {}
        for run in runs:
            by_job.setdefault(run.job_id, []).append(run)
        multi = [job for job in by_job.values() if len(job) > 1]
        assert multi, "expected at least one multi-aprun job"
        for job in multi:
            first = job[0]
            for other in job[1:]:
                assert np.array_equal(first.node_ids, other.node_ids)
                assert other.app_id == first.app_id

    def test_deterministic(self):
        config = TraceConfig(
            machine=MachineConfig(grid_x=2, grid_y=2, cages_per_cabinet=1),
            duration_days=3.0,
            seed=5,
        )
        machine = Machine(config.machine)

        def build():
            seeds = SeedSequenceFactory(config.seed)
            catalog = ApplicationCatalog(config.workload, config.machine, seeds)
            return WorkloadScheduler(config, catalog, machine, seeds).build_schedule()

        a, b = build(), build()
        assert len(a) == len(b)
        assert all(
            x.start_minute == y.start_minute and np.array_equal(x.node_ids, y.node_ids)
            for x, y in zip(a, b)
        )
