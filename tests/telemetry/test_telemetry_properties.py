"""Property-based invariants of the telemetry substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.config import ErrorModelConfig
from repro.telemetry.errors import SbeErrorModel
from repro.telemetry.sampler import HistoryRing, VectorWelford
from repro.topology.machine import Machine, MachineConfig
from repro.utils.rng import SeedSequenceFactory


class TestWelfordProperties:
    @given(
        st.lists(
            st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_for_any_sequence(self, ticks):
        series = np.asarray(ticks)  # (t, 3 nodes)
        wf = VectorWelford(3)
        for row in series:
            wf.update(row)
        stats = wf.stats(np.arange(3))
        assert np.allclose(stats[:, 0], series.mean(axis=0), atol=1e-8)
        assert np.allclose(stats[:, 1], series.std(axis=0), atol=1e-6)

    @given(st.integers(1, 20), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_reset_then_update_counts_from_zero(self, n_ticks, seed):
        rng = np.random.default_rng(seed)
        wf = VectorWelford(2)
        for _ in range(n_ticks):
            wf.update(rng.normal(size=2))
        wf.reset(np.array([0, 1]))
        value = rng.normal(size=2)
        wf.update(value)
        stats = wf.stats(np.arange(2))
        assert np.allclose(stats[:, 0], value)
        assert np.allclose(stats[:, 1], 0.0)


class TestHistoryRingProperties:
    @given(st.integers(1, 8), st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_window_mean_matches_suffix(self, capacity, values):
        ring = HistoryRing(1, capacity)
        for v in values:
            ring.push(np.array([v]))
        k = min(capacity, len(values))
        stats = ring.window_stats(np.array([0]), k)
        suffix = np.asarray(values[-k:])
        assert stats[0, 0] == pytest.approx(suffix.mean(), abs=1e-9)


_MODEL = SbeErrorModel(
    ErrorModelConfig(),
    Machine(MachineConfig(grid_x=4, grid_y=2, cages_per_cabinet=1)),
    SeedSequenceFactory(3),
    num_days=20,
)


class TestErrorModelProperties:
    @property
    def model(self):
        return _MODEL

    @given(st.floats(20, 60), st.floats(30, 200), st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_rates_always_nonnegative_finite(self, temp, power, mem):
        model = self.model
        nodes = np.arange(8)
        lam = model.rate(
            nodes, 1.0, 0.0, 120.0, np.full(8, temp), np.full(8, power), mem
        )
        assert np.all(lam >= 0)
        assert np.isfinite(lam).all()

    @given(st.floats(0.1, 5.0), st.floats(5.1, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_rate_monotone_in_app_susceptibility(self, low, high):
        model = self.model
        nodes = np.arange(4)
        args = (0.0, 120.0, np.full(4, 35.0), np.full(4, 90.0), 0.5)
        assert np.all(model.rate(nodes, low, *args) <= model.rate(nodes, high, *args))
