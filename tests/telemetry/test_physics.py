"""Tests for the power and thermal models."""

import numpy as np
import pytest

from repro.telemetry.config import PowerConfig, ThermalConfig
from repro.telemetry.power import PowerModel
from repro.telemetry.thermal import ThermalModel, cooling_pattern
from repro.topology.machine import Machine, MachineConfig
from repro.utils.rng import SeedSequenceFactory


@pytest.fixture()
def machine():
    return Machine(
        MachineConfig(grid_x=4, grid_y=2, cages_per_cabinet=1, slots_per_cage=2)
    )


class TestPowerModel:
    def test_idle_vs_busy(self):
        model = PowerModel(PowerConfig(), 16, SeedSequenceFactory(0))
        idle = model.sample(np.zeros(16))
        busy = model.sample(np.ones(16))
        assert busy.mean() > idle.mean() + 100

    def test_power_positive(self):
        cfg = PowerConfig(noise_watts=50.0)
        model = PowerModel(cfg, 64, SeedSequenceFactory(0))
        for _ in range(20):
            assert np.all(model.sample(np.zeros(64)) >= 1.0)

    def test_efficiency_static(self):
        model = PowerModel(PowerConfig(), 8, SeedSequenceFactory(3))
        eff = model.efficiency
        assert eff.shape == (8,)
        assert np.all(eff > 0)


class TestCoolingPattern:
    def test_saddle_corners_hot(self):
        pattern = cooling_pattern(8, 25, amplitude=3.0)
        assert pattern.shape == (8, 25)
        # Upper-left (high y, low x) and lower-right (low y, high x) warmest.
        assert pattern[-1, 0] == pattern.max()
        assert pattern[0, -1] == pytest.approx(pattern.max(), rel=0.01)
        assert np.abs(pattern).max() == pytest.approx(3.0)

    def test_zero_amplitude(self):
        assert np.allclose(cooling_pattern(4, 4, 0.0), 0.0)


class TestThermalModel:
    def test_relaxes_to_steady_state(self, machine):
        cfg = ThermalConfig(noise_celsius=0.0, neighbor_coupling=0.0)
        model = ThermalModel(cfg, machine, SeedSequenceFactory(0))
        power = np.full(machine.num_nodes, 100.0)
        for _ in range(200):
            model.step(power, np.zeros(machine.num_nodes), 5.0)
        expected = model.steady_state(power)
        assert np.allclose(model.gpu_temp, expected, atol=0.5)

    def test_power_raises_temperature(self, machine):
        cfg = ThermalConfig(noise_celsius=0.0)
        model = ThermalModel(cfg, machine, SeedSequenceFactory(0))
        hot = np.zeros(machine.num_nodes)
        hot[:4] = 200.0
        for _ in range(50):
            model.step(hot, np.zeros(machine.num_nodes), 5.0)
        assert model.gpu_temp[:4].mean() > model.gpu_temp[8:].mean() + 10

    def test_neighbor_coupling_spreads_heat(self, machine):
        cfg = ThermalConfig(noise_celsius=0.0, neighbor_coupling=0.2)
        coupled = ThermalModel(cfg, machine, SeedSequenceFactory(0))
        uncoupled = ThermalModel(
            ThermalConfig(noise_celsius=0.0, neighbor_coupling=0.0),
            machine,
            SeedSequenceFactory(0),
        )
        power = np.zeros(machine.num_nodes)
        power[0] = 200.0  # one hot node in slot 0
        for _ in range(30):
            coupled.step(power, np.zeros(machine.num_nodes), 5.0)
            uncoupled.step(power, np.zeros(machine.num_nodes), 5.0)
        # Node 1 shares node 0's slot and should be warmer with coupling.
        assert coupled.gpu_temp[1] > uncoupled.gpu_temp[1] + 1.0

    def test_cpu_temperature_follows_cpu_util(self, machine):
        cfg = ThermalConfig(noise_celsius=0.0)
        model = ThermalModel(cfg, machine, SeedSequenceFactory(0))
        cpu = np.zeros(machine.num_nodes)
        cpu[:4] = 1.0
        for _ in range(50):
            model.step(np.zeros(machine.num_nodes), cpu, 5.0)
        assert model.cpu_temp[:4].mean() > model.cpu_temp[8:].mean() + 10

    def test_cabinet_offsets_follow_pattern(self, machine):
        model = ThermalModel(ThermalConfig(), machine, SeedSequenceFactory(0))
        assert model.cabinet_offset.shape == (machine.num_nodes,)
