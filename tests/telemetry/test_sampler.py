"""Tests for the out-of-band sampler primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.sampler import HistoryRing, VectorWelford
from repro.utils.errors import ValidationError


class TestVectorWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(20, 5))  # 20 ticks, 5 nodes
        wf = VectorWelford(5)
        for row in series:
            wf.update(row)
        stats = wf.stats(np.arange(5))
        assert np.allclose(stats[:, 0], series.mean(axis=0))
        assert np.allclose(stats[:, 1], series.std(axis=0))
        deltas = np.diff(series, axis=0)
        assert np.allclose(stats[:, 2], deltas.mean(axis=0))
        assert np.allclose(stats[:, 3], deltas.std(axis=0))

    def test_reset_clears_only_selected(self):
        wf = VectorWelford(3)
        wf.update(np.array([1.0, 2.0, 3.0]))
        wf.update(np.array([3.0, 4.0, 5.0]))
        wf.reset(np.array([1]))
        wf.update(np.array([10.0, 10.0, 10.0]))
        stats = wf.stats(np.arange(3))
        assert stats[1, 0] == pytest.approx(10.0)  # node 1 restarted
        assert stats[0, 0] == pytest.approx(np.mean([1, 3, 10]))

    def test_delta_ignores_pre_reset_value(self):
        """After reset, the first delta uses the previous snapshot (the
        node's telemetry is continuous even when runs change)."""
        wf = VectorWelford(1)
        wf.update(np.array([5.0]))
        wf.reset(np.array([0]))
        wf.update(np.array([7.0]))
        stats = wf.stats(np.array([0]))
        assert stats[0, 0] == pytest.approx(7.0)

    def test_single_update_zero_std(self):
        wf = VectorWelford(2)
        wf.update(np.array([4.0, 6.0]))
        stats = wf.stats(np.arange(2))
        assert np.allclose(stats[:, 1], 0.0)
        assert np.allclose(stats[:, 3], 0.0)


class TestHistoryRing:
    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            HistoryRing(4, 0)

    def test_empty_window_is_zero(self):
        ring = HistoryRing(3, 4)
        stats = ring.window_stats(np.arange(3), 2)
        assert np.allclose(stats, 0.0)

    def test_window_matches_numpy(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(10, 4))
        ring = HistoryRing(4, 6)
        for row in series:
            ring.push(row)
        k = 5
        window = series[-k:]
        stats = ring.window_stats(np.arange(4), k)
        assert np.allclose(stats[:, 0], window.mean(axis=0))
        assert np.allclose(stats[:, 1], window.std(axis=0))
        assert np.allclose(stats[:, 2], np.diff(window, axis=0).mean(axis=0))

    def test_window_clipped_to_filled(self):
        ring = HistoryRing(2, 8)
        ring.push(np.array([1.0, 2.0]))
        stats = ring.window_stats(np.arange(2), 5)
        assert stats[0, 0] == 1.0
        assert stats[0, 2] == 0.0  # no deltas with one snapshot

    def test_wraparound_order(self):
        ring = HistoryRing(1, 3)
        for v in (1.0, 2.0, 3.0, 4.0):
            ring.push(np.array([v]))
        stats = ring.window_stats(np.array([0]), 3)
        assert stats[0, 0] == pytest.approx(np.mean([2, 3, 4]))
        assert stats[0, 2] == pytest.approx(1.0)  # increasing by 1 each tick

    @given(st.integers(1, 6), st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_filled_bounded_by_capacity(self, capacity, pushes):
        ring = HistoryRing(2, capacity)
        for i in range(pushes):
            ring.push(np.full(2, float(i)))
        assert ring.filled == min(capacity, pushes)
