"""Tests for hardened trace persistence: atomicity, checksums, errors."""

import json

import pytest

from repro.telemetry.trace import Trace
from repro.utils.errors import ReproError, TraceIOError


@pytest.fixture()
def saved(tmp_path, tiny_trace):
    path = tmp_path / "trace"
    tiny_trace.save(path)
    return path


class TestSave:
    def test_roundtrip(self, saved, tiny_trace):
        loaded = Trace.load(saved)
        assert loaded.num_samples == tiny_trace.num_samples
        assert loaded.config.seed == tiny_trace.config.seed

    def test_checksum_recorded(self, saved):
        meta = json.loads(saved.with_suffix(".json").read_text())
        assert len(meta["checksum"]) == 64

    def test_no_temp_files_left(self, saved):
        leftovers = [p for p in saved.parent.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestLoadFailures:
    def test_missing_archive(self, tmp_path):
        with pytest.raises(TraceIOError) as excinfo:
            Trace.load(tmp_path / "nothing")
        assert str(tmp_path / "nothing.json") in str(excinfo.value)
        assert excinfo.value.path == tmp_path / "nothing.json"

    def test_truncated_npz(self, saved):
        npz = saved.with_suffix(".npz")
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.raises(TraceIOError) as excinfo:
            Trace.load(saved)
        assert excinfo.value.path == npz

    def test_garbage_json(self, saved):
        saved.with_suffix(".json").write_text("{not json")
        with pytest.raises(TraceIOError):
            Trace.load(saved)

    def test_json_without_config(self, saved):
        saved.with_suffix(".json").write_text(json.dumps({"app_names": []}))
        with pytest.raises(TraceIOError, match="config"):
            Trace.load(saved)

    def test_checksum_mismatch(self, saved):
        meta = json.loads(saved.with_suffix(".json").read_text())
        meta["checksum"] = "0" * 64
        saved.with_suffix(".json").write_text(json.dumps(meta))
        with pytest.raises(TraceIOError, match="checksum"):
            Trace.load(saved)

    def test_checksum_verification_can_be_skipped(self, saved):
        meta = json.loads(saved.with_suffix(".json").read_text())
        meta["checksum"] = "0" * 64
        saved.with_suffix(".json").write_text(json.dumps(meta))
        loaded = Trace.load(saved, verify_checksum=False)
        assert loaded.num_samples > 0

    def test_legacy_sidecar_without_checksum_loads(self, saved):
        meta = json.loads(saved.with_suffix(".json").read_text())
        del meta["checksum"]
        saved.with_suffix(".json").write_text(json.dumps(meta))
        loaded = Trace.load(saved)
        assert loaded.num_samples > 0

    def test_trace_io_error_is_repro_error(self):
        assert issubclass(TraceIOError, ReproError)
