"""Tests for simulation configuration and the application catalog."""

import numpy as np
import pytest

from repro.telemetry.applications import ApplicationCatalog
from repro.telemetry.config import (
    ErrorModelConfig,
    PowerConfig,
    ThermalConfig,
    TraceConfig,
    WorkloadConfig,
)
from repro.topology.machine import MachineConfig
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedSequenceFactory


class TestConfigs:
    def test_defaults_valid(self):
        cfg = TraceConfig()
        assert cfg.num_ticks > 0
        assert cfg.duration_minutes == cfg.duration_days * 1440

    def test_invalid_utilization(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(target_utilization=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(target_utilization=1.5)

    def test_invalid_applications(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_applications=1)

    def test_invalid_power(self):
        with pytest.raises(ConfigurationError):
            PowerConfig(idle_watts=-1)

    def test_invalid_thermal(self):
        with pytest.raises(ConfigurationError):
            ThermalConfig(time_constant_minutes=0)
        with pytest.raises(ConfigurationError):
            ThermalConfig(neighbor_coupling=1.0)

    def test_invalid_errors(self):
        with pytest.raises(ConfigurationError):
            ErrorModelConfig(offender_node_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ErrorModelConfig(base_rate_per_hour=0.0)

    def test_invalid_trace(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(duration_days=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(tick_minutes=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(tick_minutes=90)


@pytest.fixture(scope="module")
def catalog():
    return ApplicationCatalog(
        WorkloadConfig(num_applications=32),
        MachineConfig(grid_x=4, grid_y=2),
        SeedSequenceFactory(7),
    )


class TestApplicationCatalog:
    def test_size_and_lookup(self, catalog):
        assert len(catalog) == 32
        spec = catalog[0]
        assert spec.app_id == 0
        assert spec.name.endswith(".exe")

    def test_popularity_normalized_and_skewed(self, catalog):
        pop = catalog.popularity
        assert pop.sum() == pytest.approx(1.0)
        assert pop[0] > pop[-1]

    def test_susceptibility_heavy_tailed(self, catalog):
        susc = catalog.susceptibility
        assert np.median(susc) == pytest.approx(1.0, rel=0.2)
        assert susc.max() / np.median(susc) > 5.0

    def test_feature_bounds(self, catalog):
        for spec in catalog:
            assert 0.0 < spec.gpu_utilization <= 1.0
            assert 0.0 < spec.memory_fraction <= 1.0
            assert 0.0 < spec.cpu_utilization <= 1.0
            assert spec.median_runtime_minutes > 0
            assert spec.median_nodes >= 1
            assert 0 <= spec.home_cabinet < 8

    def test_deterministic(self):
        a = ApplicationCatalog(
            WorkloadConfig(), MachineConfig(), SeedSequenceFactory(1)
        )
        b = ApplicationCatalog(
            WorkloadConfig(), MachineConfig(), SeedSequenceFactory(1)
        )
        assert np.array_equal(a.susceptibility, b.susceptibility)

    def test_sample_app_follows_popularity(self, catalog):
        rng = np.random.default_rng(0)
        draws = [catalog.sample_app(rng).app_id for _ in range(400)]
        counts = np.bincount(draws, minlength=32)
        assert counts[0] > counts[-1]

    def test_usage_susceptibility_correlation(self, catalog):
        """Heavy users should trend error-prone (basis of paper Fig. 4)."""
        from repro.utils.stats import spearman

        usage = np.asarray(
            [
                spec.popularity * spec.median_runtime_minutes * spec.median_nodes
                for spec in catalog
            ]
        )
        assert spearman(usage, catalog.susceptibility) > 0.5
