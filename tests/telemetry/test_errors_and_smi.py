"""Tests for the SBE error model and the nvidia-smi emulator."""

import numpy as np
import pytest

from repro.telemetry.config import ErrorModelConfig
from repro.telemetry.errors import SbeErrorModel
from repro.telemetry.nvidia_smi import NvidiaSmiEmulator
from repro.topology.machine import Machine, MachineConfig
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedSequenceFactory


@pytest.fixture(scope="module")
def machine():
    return Machine(MachineConfig(grid_x=5, grid_y=4, cages_per_cabinet=1))


@pytest.fixture(scope="module")
def model(machine):
    return SbeErrorModel(
        ErrorModelConfig(), machine, SeedSequenceFactory(0), num_days=30
    )


class TestNodeSusceptibility:
    def test_offender_fraction(self, machine, model):
        susc = model.node_susceptibility
        cfg = ErrorModelConfig()
        offenders = susc > cfg.ordinary_susceptibility
        expected = round(cfg.offender_node_fraction * machine.num_nodes)
        assert offenders.sum() == expected

    def test_ordinary_nodes_near_zero(self, model):
        susc = model.node_susceptibility
        assert np.min(susc) == ErrorModelConfig().ordinary_susceptibility

    def test_deterministic(self, machine):
        a = SbeErrorModel(
            ErrorModelConfig(), machine, SeedSequenceFactory(1), num_days=10
        )
        b = SbeErrorModel(
            ErrorModelConfig(), machine, SeedSequenceFactory(1), num_days=10
        )
        assert np.array_equal(a.node_susceptibility, b.node_susceptibility)


class TestRate:
    def test_temperature_monotone(self, machine, model):
        nodes = np.arange(8)
        cool = model.rate(nodes, 1.0, 0.0, 420.0, np.full(8, 30.0), np.full(8, 80.0), 0.5)
        hot = model.rate(nodes, 1.0, 0.0, 420.0, np.full(8, 45.0), np.full(8, 80.0), 0.5)
        assert np.all(hot >= cool)

    def test_duration_scales_linearly(self, machine, model):
        nodes = np.arange(4)
        one = model.rate(nodes, 1.0, 0.0, 60.0, np.full(4, 35.0), np.full(4, 90.0), 0.3)
        two = model.rate(nodes, 1.0, 0.0, 120.0, np.full(4, 35.0), np.full(4, 90.0), 0.3)
        assert np.allclose(two, 2 * one)

    def test_interaction_knee(self, machine, model):
        cfg = ErrorModelConfig()
        nodes = np.arange(2)
        below = model.rate(
            nodes, 1.0, 0.0, 60.0,
            np.full(2, cfg.temp_knee - 0.5), np.full(2, cfg.power_knee + 10), 0.3,
        )
        above = model.rate(
            nodes, 1.0, 0.0, 60.0,
            np.full(2, cfg.temp_knee + 0.5), np.full(2, cfg.power_knee + 10), 0.3,
        )
        # Above both knees the rate jumps by more than the smooth thermal
        # term alone could explain.
        assert np.all(above > below * (1 + cfg.interaction_boost) / 2)

    def test_rate_cap_bounds_quiet_days(self, machine):
        cfg = ErrorModelConfig()
        model = SbeErrorModel(cfg, machine, SeedSequenceFactory(5), num_days=30)
        nodes = np.arange(machine.num_nodes)
        lam = model.rate(
            nodes, 1e9, 0.0, 60.0,
            np.full(machine.num_nodes, 80.0),
            np.full(machine.num_nodes, 200.0),
            1.0,
        )
        # Even with absurd multipliers, hourly rate is capped before the
        # day factor.
        assert lam.max() <= cfg.max_rate_per_hour * model._day_factors.max() * 1.0 + 1e-9

    def test_sample_counts_poisson_like(self, machine, model):
        nodes = np.arange(machine.num_nodes)
        counts = model.sample_counts(
            0, nodes, 1.0, 0.0, 420.0,
            np.full(machine.num_nodes, 35.0),
            np.full(machine.num_nodes, 100.0),
            0.5,
        )
        assert counts.shape == (machine.num_nodes,)
        assert counts.dtype.kind in "iu"
        assert np.all(counts >= 0)

    def test_sample_counts_partition_independent(self, machine, model):
        """Counts for a node subset equal the subset of full-machine counts."""
        nodes = np.arange(machine.num_nodes)
        temp = np.full(machine.num_nodes, 44.0)
        power = np.full(machine.num_nodes, 130.0)
        full = model.sample_counts(11, nodes, 1.0, 0.0, 420.0, temp, power, 0.5)
        half = machine.num_nodes // 2
        lo = model.sample_counts(
            11, nodes[:half], 1.0, 0.0, 420.0, temp[:half], power[:half], 0.5
        )
        hi = model.sample_counts(
            11, nodes[half:], 1.0, 0.0, 420.0, temp[half:], power[half:], 0.5
        )
        assert np.array_equal(full, np.concatenate([lo, hi]))


class TestEpisodes:
    def test_day_factors_structure(self, model):
        factors = model._day_factors
        cfg = ErrorModelConfig()
        quiet = np.isclose(factors, cfg.quiet_day_factor)
        # Most (node, day) pairs are quiet.
        assert quiet.mean() > 0.5
        # Episode days are strongly elevated.
        assert factors[~quiet].min() > cfg.quiet_day_factor * 10


class TestNvidiaSmi:
    def test_snapshot_delta(self):
        smi = NvidiaSmiEmulator(8)
        nodes = np.array([1, 3, 5])
        smi.snapshot_before(7, nodes)
        smi.record_errors(np.array([3]), np.array([4]))
        smi.record_errors(np.array([0]), np.array([9]))  # outside the job
        deltas = smi.snapshot_after(7, nodes)
        assert deltas.tolist() == [0, 4, 0]

    def test_counters_are_lifetime(self):
        smi = NvidiaSmiEmulator(4)
        smi.record_errors(np.array([0]), np.array([2]))
        smi.record_errors(np.array([0]), np.array([3]))
        assert smi.query(np.array([0]))[0] == 5

    def test_double_snapshot_raises(self):
        smi = NvidiaSmiEmulator(4)
        smi.snapshot_before(1, np.array([0]))
        with pytest.raises(ValidationError):
            smi.snapshot_before(1, np.array([0]))

    def test_missing_snapshot_raises(self):
        smi = NvidiaSmiEmulator(4)
        with pytest.raises(ValidationError):
            smi.snapshot_after(9, np.array([0]))

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            NvidiaSmiEmulator(0)
