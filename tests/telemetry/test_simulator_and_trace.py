"""Integration tests for the trace simulator and Trace persistence."""

import numpy as np
import pytest

from repro.telemetry.trace import PRE_WINDOWS_MINUTES, SAMPLE_TELEMETRY_COLUMNS, Trace
from repro.utils.errors import ValidationError


class TestTraceShape:
    def test_tables_consistent(self, tiny_trace):
        assert tiny_trace.num_samples > 0
        assert tiny_trace.num_runs > 0
        n = tiny_trace.num_samples
        for name, col in tiny_trace.samples.items():
            assert col.shape[0] == n, name

    def test_all_telemetry_columns_present(self, tiny_trace):
        for name in SAMPLE_TELEMETRY_COLUMNS:
            assert name in tiny_trace.samples

    def test_sample_counts_match_run_nodes(self, tiny_trace):
        """Each run contributes exactly n_nodes samples."""
        s = tiny_trace.samples
        per_run = np.bincount(s["run_idx"].astype(int))
        for run_id, n_nodes in zip(
            tiny_trace.runs["run_id"].astype(int),
            tiny_trace.runs["n_nodes"].astype(int),
        ):
            assert per_run[run_id] == n_nodes

    def test_node_ids_valid(self, tiny_trace):
        nodes = tiny_trace.samples["node_id"].astype(int)
        assert nodes.min() >= 0
        assert nodes.max() < tiny_trace.machine.num_nodes

    def test_time_ordering(self, tiny_trace):
        s = tiny_trace.samples
        assert np.all(s["end_minute"] >= s["start_minute"])
        assert s["end_minute"].max() <= tiny_trace.config.duration_minutes + 1e-6


class TestTelemetryPlausibility:
    def test_temperature_range(self, tiny_trace):
        temp = tiny_trace.samples["gpu_temp_mean"]
        assert temp.min() > 0
        assert temp.max() < 100

    def test_power_range(self, tiny_trace):
        power = tiny_trace.samples["gpu_power_mean"]
        assert power.min() >= 1.0
        assert power.max() < 400

    def test_stds_nonnegative(self, tiny_trace):
        for name in ("gpu_temp_std", "gpu_power_std", "cpu_temp_std"):
            assert tiny_trace.samples[name].min() >= 0.0

    def test_pre_windows_finite(self, tiny_trace):
        for window in PRE_WINDOWS_MINUTES:
            col = tiny_trace.samples[f"pre{window}_temp_mean"]
            assert np.isfinite(col).all()

    def test_busy_nodes_hotter_than_ambient(self, tiny_trace):
        ambient = tiny_trace.config.thermal.ambient_celsius
        assert tiny_trace.samples["gpu_temp_mean"].mean() > ambient

    def test_node_mean_arrays(self, tiny_trace):
        n = tiny_trace.machine.num_nodes
        assert tiny_trace.node_mean_temp.shape == (n,)
        assert tiny_trace.node_mean_power.shape == (n,)
        assert np.isfinite(tiny_trace.node_mean_temp).all()


class TestSbeAttribution:
    def test_positive_rate_reasonable(self, tiny_trace):
        rate = tiny_trace.positive_rate()
        assert 0.001 < rate < 0.3

    def test_job_level_attribution(self, tiny_trace):
        """All apruns of one job share the same per-node SBE delta (the
        paper's conservative assumption)."""
        s = tiny_trace.samples
        keys = {}
        for job, node, count in zip(
            s["job_id"].astype(int),
            s["node_id"].astype(int),
            s["sbe_count"].astype(int),
        ):
            if (job, node) in keys:
                assert keys[(job, node)] == count
            else:
                keys[(job, node)] = count

    def test_errors_on_offender_nodes(self, tiny_trace):
        """SBEs should land overwhelmingly on high-susceptibility nodes."""
        totals = tiny_trace.node_sbe_totals()
        offenders = totals > 0
        susc = tiny_trace.node_susceptibility
        assert susc[offenders].mean() > susc[~offenders].mean()

    def test_run_sbe_total_consistency(self, tiny_trace):
        runs = tiny_trace.runs
        affected_runs = (runs["sbe_total"] > 0).sum()
        assert affected_runs > 0
        assert affected_runs < tiny_trace.num_runs


class TestRecordedSeries:
    def test_recorded_node_present(self, tiny_trace):
        node = tiny_trace.config.record_nodes[0]
        series = tiny_trace.recorded_series[node]
        assert series["minute"].size == tiny_trace.config.num_ticks
        for key in ("gpu_temp", "gpu_power", "cpu_temp", "slot_avg_temp",
                    "slot_avg_power", "cage_avg_temp"):
            assert series[key].shape == series["minute"].shape


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace"
        tiny_trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_samples == tiny_trace.num_samples
        assert loaded.num_runs == tiny_trace.num_runs
        assert loaded.app_names == tiny_trace.app_names
        assert np.allclose(
            loaded.samples["gpu_temp_mean"], tiny_trace.samples["gpu_temp_mean"]
        )
        assert np.array_equal(
            loaded.samples["sbe_count"], tiny_trace.samples["sbe_count"]
        )
        assert loaded.config.duration_days == tiny_trace.config.duration_days
        assert loaded.config.machine == tiny_trace.config.machine
        node = tiny_trace.config.record_nodes[0]
        assert np.allclose(
            loaded.recorded_series[node]["gpu_temp"],
            tiny_trace.recorded_series[node]["gpu_temp"],
        )

    def test_ragged_tables_rejected(self, tiny_trace):
        bad = dict(tiny_trace.samples)
        bad["node_id"] = bad["node_id"][:-1]
        with pytest.raises(ValidationError):
            Trace(
                config=tiny_trace.config,
                samples=bad,
                runs=tiny_trace.runs,
                app_names=tiny_trace.app_names,
                node_mean_temp=tiny_trace.node_mean_temp,
                node_mean_power=tiny_trace.node_mean_power,
                node_susceptibility=tiny_trace.node_susceptibility,
            )

    def test_select_samples(self, tiny_trace):
        mask = tiny_trace.samples["sbe_count"] > 0
        subset = tiny_trace.select_samples(mask)
        assert subset["node_id"].shape[0] == int(mask.sum())


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.experiments.presets import preset_config
        from repro.telemetry.simulator import simulate_trace

        config = preset_config("tiny")
        a = simulate_trace(config)
        b = simulate_trace(config)
        assert a.num_samples == b.num_samples
        assert np.array_equal(a.samples["sbe_count"], b.samples["sbe_count"])
        assert np.allclose(a.samples["gpu_temp_mean"], b.samples["gpu_temp_mean"])


class TestStageTimers:
    """The simulator instruments its stages on ``Trace.meta``."""

    def test_meta_records_stage_seconds(self, tiny_trace):
        stages = tiny_trace.meta["stage_seconds"]
        assert set(stages) == {"simulate", "sample", "collate"}
        assert all(seconds >= 0.0 for seconds in stages.values())
        assert tiny_trace.meta["shards"] == 1

    def test_meta_survives_save_and_load(self, tiny_trace, tmp_path):
        from repro.telemetry.trace import Trace

        tiny_trace.save(tmp_path / "trace")
        loaded = Trace.load(tmp_path / "trace")
        assert loaded.meta == tiny_trace.meta

    def test_meta_excluded_from_content_digests(self, tiny_trace):
        """Wall times vary run to run; content digests must not."""
        import sys
        sys.path.insert(0, "tools")
        try:
            from check_determinism import trace_digest
        finally:
            sys.path.pop(0)
        before = trace_digest(tiny_trace)
        original = dict(tiny_trace.meta)
        try:
            tiny_trace.meta["stage_seconds"] = {"simulate": 123.0}
            assert trace_digest(tiny_trace) == before
        finally:
            tiny_trace.meta.clear()
            tiny_trace.meta.update(original)
