"""Tests for the feature schema and the paper's time splits."""

import numpy as np
import pytest

from repro.features.schema import FeatureSchema
from repro.features.splits import DatasetSplit, make_paper_splits
from repro.utils.errors import ValidationError


class TestFeatureSchema:
    def test_add_and_lookup(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        schema.add("b", "tp", "tp_cur")
        assert len(schema) == 2
        assert schema.index_of("b") == 1
        assert schema.tags["b"] == {"tp", "tp_cur"}

    def test_duplicate_rejected(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        with pytest.raises(ValidationError):
            schema.add("a", "tp")

    def test_unknown_lookup(self):
        with pytest.raises(ValidationError):
            FeatureSchema().index_of("missing")

    def test_select_include(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        schema.add("b", "tp")
        schema.add("c", "tp", "tp_nei")
        assert schema.select(include={"tp"}) == [1, 2]

    def test_select_exclude(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        schema.add("b", "tp")
        schema.add("c", "tp", "tp_nei")
        assert schema.select(exclude={"tp_nei"}) == [0, 1]

    def test_select_include_exclude_combined(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        schema.add("b", "tp", "tp_cur")
        schema.add("c", "tp", "tp_nei")
        assert schema.select(include={"tp"}, exclude={"tp_nei"}) == [1]

    def test_empty_selection_rejected(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        with pytest.raises(ValidationError):
            schema.select(include={"nonexistent"})

    def test_names_for(self):
        schema = FeatureSchema()
        schema.add("a", "app")
        schema.add("b", "tp")
        assert schema.names_for([1, 0]) == ["b", "a"]


class TestSplits:
    def test_paper_defaults(self):
        splits = make_paper_splits()
        assert [s.name for s in splits] == ["DS1", "DS2", "DS3"]
        ds1 = splits[0]
        assert ds1.train_start == 0.0
        assert ds1.train_end == 84 * 1440.0
        assert ds1.test_end == 98 * 1440.0

    def test_masks_disjoint_and_ordered(self):
        split = DatasetSplit("X", 0.0, 100.0, 150.0)
        t = np.arange(0.0, 200.0, 10.0)
        train = split.train_mask(t)
        test = split.test_mask(t)
        assert not np.any(train & test)
        assert t[train].max() < t[test].min()

    def test_duration_guard(self):
        with pytest.raises(ValidationError):
            make_paper_splits(duration_days=100.0)
        make_paper_splits(duration_days=130.0)  # fits

    def test_invalid_spans(self):
        with pytest.raises(ValidationError):
            make_paper_splits(train_days=0)

    def test_test_train_ratio_in_paper_band(self):
        """The paper cites a 20-25% test:train rule of thumb."""
        splits = make_paper_splits()
        for split in splits:
            train = split.train_end - split.train_start
            test = split.test_end - split.train_end
            assert 0.1 <= test / train <= 0.3
