"""Tests for causal SBE history indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.history import HistoryIndex, dedupe_job_events
from repro.utils.errors import ValidationError


class TestDedupeJobEvents:
    def test_collapses_multi_aprun_jobs(self):
        # Job 1 has two apruns on node 5, both carrying the job delta 3.
        nodes, minutes, counts = dedupe_job_events(
            job_ids=np.array([1, 1, 2]),
            node_ids=np.array([5, 5, 5]),
            end_minutes=np.array([100.0, 200.0, 300.0]),
            sbe_counts=np.array([3, 3, 1]),
        )
        assert nodes.tolist() == [5, 5]
        assert minutes.tolist() == [200.0, 300.0]
        assert counts.tolist() == [3, 1]

    def test_drops_zero_counts(self):
        nodes, minutes, counts = dedupe_job_events(
            np.array([1]), np.array([2]), np.array([50.0]), np.array([0])
        )
        assert nodes.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            dedupe_job_events(np.array([1]), np.array([1, 2]), np.array([1.0]), np.array([1]))


class TestHistoryIndex:
    @pytest.fixture()
    def index(self):
        return HistoryIndex(
            keys=np.array([1, 1, 2, 1]),
            minutes=np.array([10.0, 50.0, 30.0, 90.0]),
            counts=np.array([2, 3, 7, 1]),
        )

    def test_count_between(self, index):
        assert index.count_between(1, 0.0, 100.0) == 6
        assert index.count_between(1, 10.0, 50.0) == 2  # [10, 50) excludes 50
        assert index.count_between(1, 50.0, 90.0) == 3
        assert index.count_between(2, 0.0, 100.0) == 7
        assert index.count_between(99, 0.0, 100.0) == 0

    def test_count_before(self, index):
        assert index.count_before(1, 50.0) == 2
        assert index.count_before(1, 50.1) == 5

    def test_global_counts(self, index):
        assert index.global_before(100.0) == 13
        assert index.global_between(20.0, 60.0) == 10

    def test_keys_before(self, index):
        assert index.keys_before(5.0).tolist() == []
        assert index.keys_before(15.0).tolist() == [1]
        assert index.keys_before(40.0).tolist() == [1, 2]

    def test_batch_matches_scalar(self, index):
        keys = np.array([1, 2, 1, 99])
        starts = np.array([0.0, 0.0, 40.0, 0.0])
        ends = np.array([100.0, 25.0, 95.0, 100.0])
        batch = index.batch_between(keys, starts, ends)
        scalar = [
            index.count_between(int(k), float(a), float(b))
            for k, a, b in zip(keys, starts, ends)
        ]
        assert batch.tolist() == scalar

    def test_global_batch(self, index):
        out = index.global_batch_between(np.array([0.0, 20.0]), np.array([100.0, 60.0]))
        assert out.tolist() == [13, 10]

    def test_batch_shape_mismatch(self, index):
        with pytest.raises(ValidationError):
            index.batch_between(np.array([1]), np.array([0.0, 1.0]), np.array([2.0]))

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.floats(0, 1000, allow_nan=False),
                st.integers(1, 5),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(0, 1000, allow_nan=False),
        st.floats(0, 1000, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_matches_bruteforce(self, events, a, b):
        lo, hi = min(a, b), max(a, b)
        keys = np.array([e[0] for e in events])
        minutes = np.array([e[1] for e in events])
        counts = np.array([e[2] for e in events])
        index = HistoryIndex(keys, minutes, counts)
        for key in range(4):
            expected = sum(
                c for k, m, c in events if k == key and lo <= m < hi
            )
            assert index.count_between(key, lo, hi) == expected


class TestIncrementalHistoryIndex:
    def test_requires_nondecreasing_minutes(self):
        from repro.features.history import IncrementalHistoryIndex

        index = IncrementalHistoryIndex()
        index.add(1, 10.0, 2)
        index.add(2, 10.0, 1)  # equal minutes are fine
        with pytest.raises(ValidationError):
            index.add(1, 9.0, 1)

    def test_empty_index_counts_zero(self):
        from repro.features.history import IncrementalHistoryIndex

        index = IncrementalHistoryIndex()
        assert len(index) == 0
        assert index.count_between(5, 0.0, 100.0) == 0
        assert index.global_before(1e9) == 0
        assert index.keys_before(1e9).tolist() == []

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.floats(0, 1000, allow_nan=False),
                st.integers(1, 5),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(0, 1000, allow_nan=False),
        st.floats(0, 1000, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_batch_index_on_sorted_events(self, events, a, b):
        """Feeding the same events one at a time must reproduce the batch
        index's window semantics exactly (the streaming-parity substrate)."""
        from repro.features.history import IncrementalHistoryIndex

        lo, hi = min(a, b), max(a, b)
        events = sorted(events, key=lambda e: e[1])  # arrival order
        keys = np.array([e[0] for e in events])
        minutes = np.array([e[1] for e in events])
        counts = np.array([e[2] for e in events])
        batch = HistoryIndex(keys, minutes, counts)
        incremental = IncrementalHistoryIndex()
        for key, minute, count in events:
            incremental.add(key, minute, count)
        assert len(incremental) == len(events)
        for key in range(4):
            assert incremental.count_between(key, lo, hi) == batch.count_between(
                key, lo, hi
            )
            assert incremental.count_before(key, hi) == batch.count_before(key, hi)
        assert incremental.global_between(lo, hi) == batch.global_between(lo, hi)
        assert incremental.global_before(hi) == batch.global_before(hi)
        assert incremental.keys_before(hi).tolist() == batch.keys_before(hi).tolist()
