"""Tests for the feature matrix builder (including causality)."""

import numpy as np
import pytest

from repro.features.builder import build_features
from repro.features.history import HistoryIndex, dedupe_job_events
from repro.features.schema import GROUP_APP, GROUP_HIST, GROUP_LOCATION, GROUP_TP
from repro.utils.errors import ValidationError


class TestShape:
    def test_rows_match_trace(self, tiny_trace, tiny_features):
        assert tiny_features.num_samples == tiny_trace.num_samples
        assert tiny_features.X.shape[1] == len(tiny_features.schema)

    def test_no_nans(self, tiny_features):
        assert np.isfinite(tiny_features.X).all()

    def test_labels_binary(self, tiny_features):
        assert set(np.unique(tiny_features.y)) <= {0, 1}
        assert tiny_features.y.sum() > 0

    def test_meta_keys(self, tiny_features):
        for key in (
            "run_idx",
            "job_id",
            "node_id",
            "app_id",
            "start_minute",
            "end_minute",
            "duration_minutes",
            "n_nodes",
            "gpu_core_hours",
            "sbe_count",
        ):
            assert key in tiny_features.meta
            assert tiny_features.meta[key].shape[0] == tiny_features.num_samples

    def test_all_groups_present(self, tiny_features):
        schema = tiny_features.schema
        for group in (GROUP_APP, GROUP_TP, GROUP_HIST, GROUP_LOCATION):
            assert schema.select(include={group})

    def test_tp_refinements(self, tiny_features):
        schema = tiny_features.schema
        cur = schema.select(include={"tp_cur"})
        prev = schema.select(include={"tp_prev"})
        nei = schema.select(include={"tp_nei"})
        assert len(cur) == 8
        assert len(prev) == 32
        assert len(nei) == 12

    def test_hist_refinements(self, tiny_features):
        schema = tiny_features.schema
        assert len(schema.select(include={"hist_local"})) == 4  # node x3 + alloc
        assert len(schema.select(include={"hist_global"})) == 3
        assert len(schema.select(include={"hist_today"})) == 4


class TestRowColumnOps:
    def test_rows_subsetting(self, tiny_features):
        mask = tiny_features.y == 1
        subset = tiny_features.rows(mask)
        assert subset.num_samples == int(mask.sum())
        assert np.all(subset.y == 1)

    def test_columns_by_tag(self, tiny_features):
        X, names = tiny_features.columns(include={GROUP_HIST})
        assert X.shape == (tiny_features.num_samples, len(names))
        assert all(name.startswith("hist_") for name in names)

    def test_mismatched_shapes_rejected(self, tiny_features):
        from repro.features.builder import FeatureMatrix

        with pytest.raises(ValidationError):
            FeatureMatrix(
                X=tiny_features.X[:-1],
                y=tiny_features.y,
                schema=tiny_features.schema,
                meta=tiny_features.meta,
            )


class TestFeatureSemantics:
    def test_location_features_match_topology(self, tiny_trace, tiny_features):
        machine = tiny_trace.machine
        schema = tiny_features.schema
        x_col = schema.index_of("loc_cabinet_x")
        node_col = schema.index_of("loc_node_code")
        nodes = tiny_features.X[:, node_col].astype(int)
        assert np.array_equal(
            tiny_features.X[:, x_col].astype(int), machine.cabinet_x[nodes]
        )

    def test_app_code_matches_meta(self, tiny_features):
        col = tiny_features.schema.index_of("app_code")
        assert np.array_equal(
            tiny_features.X[:, col].astype(int), tiny_features.meta["app_id"]
        )

    def test_top_app_onehot_rows_sum_at_most_one(self, tiny_features):
        idx = [
            i
            for i, name in enumerate(tiny_features.schema.names)
            if name.startswith("app_is_top")
        ]
        sums = tiny_features.X[:, idx].sum(axis=1)
        assert np.all(sums <= 1.0)

    def test_history_causality(self, tiny_trace, tiny_features):
        """hist_node_today must count only SBEs whose job finished
        strictly before the sample's run start."""
        s = tiny_trace.samples
        nodes, minutes, counts = dedupe_job_events(
            s["job_id"], s["node_id"], s["end_minute"], s["sbe_count"]
        )
        index = HistoryIndex(nodes, minutes, counts)
        col = tiny_features.schema.index_of("hist_node_today")
        # Check a sample of rows against a brute-force recomputation.
        rng = np.random.default_rng(0)
        rows = rng.choice(tiny_features.num_samples, size=80, replace=False)
        for row in rows:
            node = int(tiny_features.meta["node_id"][row])
            start = float(tiny_features.meta["start_minute"][row])
            expected = np.log1p(index.count_between(node, start - 1440.0, start))
            assert tiny_features.X[row, col] == pytest.approx(expected)

    def test_history_excludes_own_run(self, tiny_features):
        """A sample's own SBE must not leak into its history features."""
        col = tiny_features.schema.index_of("hist_node_before")
        # Find first-ever positive per node: its 'before' history must be 0.
        meta = tiny_features.meta
        order = np.argsort(meta["start_minute"], kind="mergesort")
        seen: set[int] = set()
        checked = 0
        for row in order:
            node = int(meta["node_id"][row])
            if meta["sbe_count"][row] > 0 and node not in seen:
                assert tiny_features.X[row, col] == 0.0
                seen.add(node)
                checked += 1
                if checked > 10:
                    break

    def test_alloc_history_is_run_mean(self, tiny_features):
        alloc_col = tiny_features.schema.index_of("hist_alloc_today")
        node_col = tiny_features.schema.index_of("hist_node_today")
        run_idx = tiny_features.meta["run_idx"]
        target_run = run_idx[np.argmax(tiny_features.X[:, node_col])]
        rows = run_idx == target_run
        node_counts = np.expm1(tiny_features.X[rows, node_col])
        expected = np.log1p(node_counts.mean())
        assert np.allclose(tiny_features.X[rows, alloc_col], expected, atol=1e-9)
