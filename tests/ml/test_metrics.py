"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.utils.errors import ValidationError

Y_TRUE = np.array([0, 0, 1, 1, 1, 0, 1, 0])
Y_PRED = np.array([0, 1, 1, 0, 1, 0, 1, 0])


class TestConfusion:
    def test_matrix(self):
        m = confusion_matrix(Y_TRUE, Y_PRED)
        assert m.tolist() == [[3, 1], [1, 3]]

    def test_total(self):
        assert confusion_matrix(Y_TRUE, Y_PRED).sum() == Y_TRUE.size


class TestScores:
    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_f1(self):
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.75)

    def test_negative_class(self):
        p, r, f1 = precision_recall_f1(Y_TRUE, Y_PRED, positive_label=0)
        assert p == pytest.approx(0.75)
        assert r == pytest.approx(0.75)

    def test_degenerate_no_predictions(self):
        p, r, f1 = precision_recall_f1(np.array([1, 0]), np.array([0, 0]))
        assert p == 0.0 and r == 0.0 and f1 == 0.0

    def test_perfect(self):
        y = np.array([0, 1, 1])
        assert f1_score(y, y) == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            f1_score(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValidationError):
            f1_score(np.array([0, 2]), np.array([0, 1]))
        with pytest.raises(ValidationError):
            f1_score(np.array([]), np.array([]))
        with pytest.raises(ValidationError):
            precision_recall_f1(Y_TRUE, Y_PRED, positive_label=2)


class TestReport:
    def test_keys_and_consistency(self):
        report = classification_report(Y_TRUE, Y_PRED)
        assert set(report) == {"sbe", "non_sbe", "overall"}
        assert report["sbe"]["f1"] == pytest.approx(f1_score(Y_TRUE, Y_PRED))
        assert report["overall"]["accuracy"] == pytest.approx(0.75)


@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=60),
    st.lists(st.integers(0, 1), min_size=2, max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_f1_is_harmonic_mean(ys, ps):
    n = min(len(ys), len(ps))
    y = np.asarray(ys[:n])
    p = np.asarray(ps[:n])
    prec, rec, f1 = precision_recall_f1(y, p)
    if prec + rec > 0:
        assert f1 == pytest.approx(2 * prec * rec / (prec + rec))
    else:
        assert f1 == 0.0
    assert 0.0 <= f1 <= 1.0
