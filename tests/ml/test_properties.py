"""Property-based invariants of the ML substrate (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.base import sigmoid
from repro.ml.metrics import accuracy_score, confusion_matrix, precision_recall_f1
from repro.ml.preprocessing import StandardScaler
from repro.ml.sampling import RandomUnderSampler, SMOTE
from repro.ml.tree import FeatureBinner

labels = st.lists(st.integers(0, 1), min_size=4, max_size=50)


class TestMetricInvariants:
    @given(labels)
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_is_perfect(self, ys):
        y = np.asarray(ys)
        if y.sum() == 0 or y.sum() == y.size:
            return
        p, r, f1 = precision_recall_f1(y, y)
        assert (p, r, f1) == (1.0, 1.0, 1.0)
        assert accuracy_score(y, y) == 1.0

    @given(labels, labels)
    @settings(max_examples=40, deadline=None)
    def test_confusion_marginals(self, ys, ps):
        n = min(len(ys), len(ps))
        y, p = np.asarray(ys[:n]), np.asarray(ps[:n])
        matrix = confusion_matrix(y, p)
        assert matrix[1].sum() == y.sum()
        assert matrix[:, 1].sum() == p.sum()

    @given(labels, labels)
    @settings(max_examples=40, deadline=None)
    def test_swapping_classes_swaps_metrics(self, ys, ps):
        n = min(len(ys), len(ps))
        y, p = np.asarray(ys[:n]), np.asarray(ps[:n])
        pos = precision_recall_f1(y, p, positive_label=1)
        neg = precision_recall_f1(1 - y, 1 - p, positive_label=0)
        assert pos == pytest.approx(neg)


class TestScalerProperties:
    @given(st.integers(2, 40), st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_double_transform_is_identity_composed(self, n, d, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d)) * rng.uniform(0.5, 4) + rng.uniform(-3, 3)
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-8)


class TestBinnerProperties:
    @given(st.integers(2, 32), st.integers(10, 200), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_binning_is_monotone(self, bins, n, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 1))
        codes = FeatureBinner(bins).fit_transform(X)[:, 0].astype(int)
        order = np.argsort(X[:, 0])
        assert np.all(np.diff(codes[order]) >= 0)
        assert codes.max() < bins


class TestResamplerProperties:
    @given(st.integers(6, 60), st.integers(2, 5), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_undersampler_preserves_minority(self, n_major, n_minor, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n_major + n_minor, 3))
        y = np.array([0] * n_major + [1] * n_minor)
        Xr, yr = RandomUnderSampler(random_state=seed).fit_resample(X, y)
        assert yr.sum() == n_minor
        assert (yr == 0).sum() <= n_major

    @given(st.integers(10, 60), st.integers(3, 8), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_smote_only_adds_minority(self, n_major, n_minor, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n_major + n_minor, 2))
        y = np.array([0] * n_major + [1] * n_minor)
        Xr, yr = SMOTE(random_state=seed).fit_resample(X, y)
        assert (yr == 0).sum() == n_major
        assert yr.sum() >= n_minor
        assert Xr.shape[0] == yr.size


class TestSigmoidInvariants:
    @given(st.floats(-700, 700, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_range(self, z):
        out = float(sigmoid(np.array([z]))[0])
        assert 0.0 <= out <= 1.0
