"""Cross-cutting tests over the four stage-2 classifiers."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    LogisticRegression,
    MLPClassifier,
    SVC,
    accuracy_score,
    f1_score,
    train_test_split,
)
from repro.ml.base import sigmoid
from repro.utils.errors import NotFittedError, ValidationError


def make_models(fast=True):
    return {
        "lr": LogisticRegression(epochs=30, class_weight="balanced", random_state=0),
        "gbdt": GradientBoostingClassifier(
            n_estimators=60, max_depth=3, random_state=0
        ),
        "svm": SVC(max_train_size=600, max_iter=15, random_state=0),
        "nn": MLPClassifier(hidden_layers=(16,), epochs=25, random_state=0),
    }


@pytest.fixture(scope="module")
def dataset(binary_dataset):
    X, y = binary_dataset
    return train_test_split(X, y, test_fraction=0.25, random_state=0)


class TestSigmoid:
    def test_extremes_are_stable(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)
        assert np.isfinite(out).all()


@pytest.mark.parametrize("name", ["lr", "gbdt", "svm", "nn"])
class TestAllClassifiers:
    def test_learns_better_than_chance(self, name, dataset):
        Xtr, Xte, ytr, yte = dataset
        model = make_models()[name]
        model.fit(Xtr, ytr)
        acc = accuracy_score(yte, model.predict(Xte))
        base = max(yte.mean(), 1 - yte.mean())
        assert acc > 0.55
        assert f1_score(yte, model.predict(Xte)) > 0.5

    def test_predict_proba_in_unit_interval(self, name, dataset):
        Xtr, Xte, ytr, yte = dataset
        model = make_models()[name].fit(Xtr, ytr)
        proba = model.predict_proba(Xte)
        assert proba.shape == (Xte.shape[0],)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)

    def test_predict_matches_threshold(self, name, dataset):
        Xtr, Xte, ytr, yte = dataset
        model = make_models()[name].fit(Xtr, ytr)
        proba = model.predict_proba(Xte)
        assert np.array_equal(model.predict(Xte), (proba >= 0.5).astype(int))

    def test_not_fitted_raises(self, name, dataset):
        _, Xte, _, _ = dataset
        with pytest.raises(NotFittedError):
            make_models()[name].predict(Xte)

    def test_single_class_raises(self, name, dataset):
        Xtr, _, _, _ = dataset
        with pytest.raises(ValidationError):
            make_models()[name].fit(Xtr[:50], np.zeros(50, dtype=int))

    def test_feature_count_mismatch(self, name, dataset):
        Xtr, Xte, ytr, _ = dataset
        model = make_models()[name].fit(Xtr, ytr)
        with pytest.raises(ValidationError):
            model.predict(Xte[:, :3])

    def test_rejects_nan(self, name, dataset):
        Xtr, _, ytr, _ = dataset
        bad = Xtr.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            make_models()[name].fit(bad, ytr)

    def test_deterministic_with_seed(self, name, dataset):
        Xtr, Xte, ytr, _ = dataset
        a = make_models()[name].fit(Xtr, ytr).predict_proba(Xte)
        b = make_models()[name].fit(Xtr, ytr).predict_proba(Xte)
        assert np.allclose(a, b)


class TestImbalancedBehaviour:
    def test_balanced_weights_raise_minority_recall(self):
        rng = np.random.default_rng(3)
        n = 4000
        X = rng.normal(size=(n, 4))
        logits = X[:, 0] + 0.5 * X[:, 1] - 3.2
        y = (rng.random(n) < sigmoid(logits)).astype(int)
        assert 0.01 < y.mean() < 0.2
        unweighted = LogisticRegression(epochs=40, random_state=0)
        weighted = LogisticRegression(
            epochs=40, class_weight="balanced", random_state=0
        )
        unweighted.fit(X, y)
        weighted.fit(X, y)
        from repro.ml.metrics import recall_score

        assert recall_score(y, weighted.predict(X)) > recall_score(
            y, unweighted.predict(X)
        )
