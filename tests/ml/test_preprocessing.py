"""Tests for scalers and encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler
from repro.utils.errors import NotFittedError, ValidationError


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_unscaled(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3)) * 7 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_column_mismatch(self):
        scaler = StandardScaler().fit(np.ones((4, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(np.ones((4, 2)))

    @given(st.integers(1, 5), st.integers(2, 30))
    @settings(max_examples=30, deadline=None)
    def test_transform_is_affine(self, d, n):
        rng = np.random.default_rng(d * 100 + n)
        X = rng.normal(size=(n, d))
        scaler = StandardScaler().fit(X)
        a, b = X[:1], X[1:2] if n > 1 else X[:1]
        mid = (a + b) / 2
        z_mid = scaler.transform(mid)
        expected = (scaler.transform(a) + scaler.transform(b)) / 2
        assert np.allclose(z_mid, expected)


class TestLabelEncoder:
    def test_roundtrip(self):
        labels = ["b", "a", "b", "c"]
        enc = LabelEncoder()
        codes = enc.fit_transform(labels)
        assert codes.tolist() == [0, 1, 0, 2]
        assert enc.inverse_transform(codes) == labels

    def test_unknown_maps_to_minus_one(self):
        enc = LabelEncoder().fit(["a", "b"])
        assert enc.transform(["c"]).tolist() == [-1]
        assert enc.inverse_transform([-1]) == [None]

    def test_unknown_raises_when_disallowed(self):
        enc = LabelEncoder(allow_unknown=False).fit(["a"])
        with pytest.raises(ValidationError):
            enc.transform(["zzz"])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])

    def test_invalid_code_decoding(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValidationError):
            enc.inverse_transform([5])


class TestOneHotEncoder:
    def test_basic(self):
        enc = OneHotEncoder()
        out = enc.fit_transform(np.array([0, 2, 2, 5]))
        assert out.shape == (4, 3)
        assert out.sum(axis=1).tolist() == [1.0, 1.0, 1.0, 1.0]
        assert out[0].tolist() == [1.0, 0.0, 0.0]

    def test_unknown_code_is_zero_row(self):
        enc = OneHotEncoder().fit(np.array([1, 2]))
        out = enc.transform(np.array([-1, 99]))
        assert np.all(out == 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(np.array([1]))
