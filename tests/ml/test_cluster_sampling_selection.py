"""Tests for k-means, resampling, splits, and the AR forecaster."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.cluster import KMeans
from repro.ml.model_selection import time_ordered_split, train_test_split
from repro.ml.sampling import KMeansUnderSampler, RandomUnderSampler, SMOTE
from repro.ml.timeseries import ARForecaster
from repro.utils.errors import NotFittedError, ValidationError


def imbalanced(seed=0, n=400, pos=40):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = np.zeros(n, dtype=int)
    y[:pos] = 1
    X[:pos] += 2.5
    return X, y


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        centers = np.array([[-5.0, 0.0], [5.0, 0.0], [0.0, 8.0]])
        X = np.vstack([rng.normal(c, 0.3, (50, 2)) for c in centers])
        km = KMeans(n_clusters=3, random_state=0).fit(X)
        labels = km.predict(X)
        # Each true cluster maps to one predicted cluster.
        for i in range(3):
            block = labels[i * 50 : (i + 1) * 50]
            assert np.unique(block).size == 1
        assert km.inertia_ < 100.0

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KMeans().predict(np.ones((2, 2)))

    def test_fit_predict_matches_labels(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 2))
        km = KMeans(n_clusters=4, random_state=0)
        labels = km.fit_predict(X)
        assert np.array_equal(labels, km.labels_)


class TestRandomUnderSampler:
    def test_balances(self):
        X, y = imbalanced()
        Xr, yr = RandomUnderSampler(random_state=0).fit_resample(X, y)
        counts = np.bincount(yr)
        assert counts[0] == counts[1] == 40

    def test_ratio(self):
        X, y = imbalanced()
        Xr, yr = RandomUnderSampler(ratio=2.0, random_state=0).fit_resample(X, y)
        counts = np.bincount(yr)
        assert counts[0] == 80 and counts[1] == 40

    def test_requires_both_classes(self):
        X = np.ones((10, 2))
        with pytest.raises(ValidationError):
            RandomUnderSampler().fit_resample(X, np.zeros(10, dtype=int))


class TestSMOTE:
    def test_balances_upward(self):
        X, y = imbalanced()
        Xs, ys = SMOTE(random_state=0).fit_resample(X, y)
        counts = np.bincount(ys)
        assert counts[1] == counts[0] == 360

    def test_synthetic_points_in_minority_hull(self):
        X, y = imbalanced()
        Xs, ys = SMOTE(random_state=0).fit_resample(X, y)
        new = Xs[X.shape[0] :]
        minority = X[y == 1]
        assert new.min() >= minority.min() - 1e-9
        assert new.max() <= minority.max() + 1e-9

    def test_noop_when_balanced(self):
        X, y = imbalanced(pos=200)
        Xs, ys = SMOTE(random_state=0).fit_resample(X, y)
        assert Xs.shape == X.shape

    def test_needs_two_minority_samples(self):
        X, y = imbalanced(pos=1)
        with pytest.raises(ValidationError):
            SMOTE(random_state=0).fit_resample(X, y)


class TestKMeansUnderSampler:
    def test_target_size(self):
        X, y = imbalanced(n=200, pos=20)
        Xr, yr = KMeansUnderSampler(random_state=0).fit_resample(X, y)
        counts = np.bincount(yr)
        assert counts[1] == 20
        assert counts[0] <= 20


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = (np.arange(100) % 2).astype(int)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, random_state=0)
        assert Xte.shape[0] == 25
        assert Xtr.shape[0] == 75

    def test_disjoint_and_complete(self):
        X = np.arange(50).reshape(-1, 1)
        y = (np.arange(50) % 2).astype(int)
        Xtr, Xte, _, _ = train_test_split(X, y, test_fraction=0.2, random_state=1)
        merged = np.sort(np.concatenate([Xtr.ravel(), Xte.ravel()]))
        assert np.array_equal(merged, np.arange(50))

    def test_stratified_keeps_minority(self):
        X, y = imbalanced(n=100, pos=4)
        _, _, _, yte = train_test_split(
            X, y, test_fraction=0.25, stratify=True, random_state=0
        )
        assert yte.sum() >= 1

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones((4, 1)), np.array([0, 1, 0, 1]), test_fraction=1.0)


class TestTimeOrderedSplit:
    def test_window_semantics(self):
        t = np.arange(100.0)
        train, test = time_ordered_split(t, train_span=60, test_span=20)
        assert train.sum() == 60
        assert test.sum() == 20
        assert t[test].min() == 60.0

    def test_offset(self):
        t = np.arange(100.0)
        train, test = time_ordered_split(t, train_span=50, test_span=10, offset=20)
        assert t[train].min() == 20.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            time_ordered_split(np.array([]), train_span=1, test_span=1)
        with pytest.raises(ValidationError):
            time_ordered_split(np.arange(5.0), train_span=0, test_span=1)


class TestARForecaster:
    def test_constant_series(self):
        model = ARForecaster(order=2).fit(np.full(50, 7.0))
        assert model.forecast(5) == pytest.approx(np.full(5, 7.0), abs=0.1)

    def test_linear_trend_with_differencing(self):
        series = 2.0 * np.arange(60.0) + 5.0
        model = ARForecaster(order=2, diff=1).fit(series)
        forecast = model.forecast(3)
        expected = 2.0 * np.arange(60, 63) + 5.0
        assert forecast == pytest.approx(expected, rel=0.05)

    def test_ar1_recovery(self):
        rng = np.random.default_rng(0)
        x = np.zeros(500)
        for t in range(1, 500):
            x[t] = 0.8 * x[t - 1] + rng.normal(0, 0.1)
        model = ARForecaster(order=1).fit(x)
        assert model.coef_[0] == pytest.approx(0.8, abs=0.1)

    def test_too_short(self):
        with pytest.raises(ValidationError):
            ARForecaster(order=5).fit(np.arange(4.0))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ARForecaster().forecast(2)

    def test_forecast_with_external_history(self):
        model = ARForecaster(order=2).fit(np.sin(np.arange(100) / 5) + 10)
        out = model.forecast(4, history=np.full(10, 10.0))
        assert out.shape == (4,)

    def test_residuals_shape(self):
        series = np.sin(np.arange(50) / 3)
        model = ARForecaster(order=3).fit(series)
        assert model.fitted_residuals().shape == (47,)

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_forecast_length(self, steps):
        model = ARForecaster(order=2).fit(np.arange(30.0))
        assert model.forecast(steps).shape == (steps,)
