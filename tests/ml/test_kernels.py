"""Property and regression tests for the flattened scoring kernels.

The core contract: the level-synchronous batch traversal over a
flattened ensemble (:mod:`repro.ml.kernels`) is **bit-identical** to a
node-by-node walk of the per-tree ``_TreeArrays`` — for random tree
topologies (random depths, degenerate single-leaf trees) and for
constant all-NaN-imputed-style rows — and the numba backend matches the
numpy oracle exactly on every drawn ensemble.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import kernels
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.kernels import (
    KernelBackendWarning,
    flatten_ensemble,
    get_backend,
    numba_available,
    predict_raw,
    set_backend,
    traverse,
    use_backend,
)
from repro.ml.tree import GradHessTree, _TreeArrays
from repro.utils.errors import ValidationError

N_BINS = 64


def _random_trees(rng, n_trees, max_depth, n_features, split_p):
    """Random tree topologies (including single-leaf stumps at split_p=0)."""
    trees = []
    for _ in range(n_trees):
        arrays = _TreeArrays()

        def grow(depth):
            node = arrays.add_node()
            arrays.value[node] = float(rng.normal())
            if depth < max_depth and rng.random() < split_p:
                left = grow(depth + 1)
                right = grow(depth + 1)
                arrays.feature[node] = int(rng.integers(n_features))
                arrays.bin_threshold[node] = int(rng.integers(N_BINS))
                arrays.left[node] = left
                arrays.right[node] = right
            return node

        grow(0)
        tree = GradHessTree(max_depth=max_depth)
        tree._arrays = arrays
        trees.append(tree)
    return trees


def _oracle_walk(arrays: _TreeArrays, codes: np.ndarray) -> int:
    """Node-by-node reference walk of one tree for one row."""
    node = 0
    while arrays.feature[node] >= 0:
        if codes[arrays.feature[node]] <= arrays.bin_threshold[node]:
            node = arrays.left[node]
        else:
            node = arrays.right[node]
    return node


ensembles = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**32 - 1),
        "n_trees": st.integers(1, 5),
        "max_depth": st.integers(1, 5),
        "n_features": st.integers(1, 4),
        "n_rows": st.integers(1, 40),
        "split_p": st.floats(0.0, 1.0),
    }
)


class TestTraversalProperties:
    @given(params=ensembles)
    def test_flat_traversal_matches_node_by_node_walk(self, params):
        rng = np.random.default_rng(params["seed"])
        trees = _random_trees(
            rng,
            params["n_trees"],
            params["max_depth"],
            params["n_features"],
            params["split_p"],
        )
        forest = flatten_ensemble(trees)
        binned = rng.integers(
            0, 256, size=(params["n_rows"], params["n_features"])
        ).astype(np.uint8)
        positions = traverse(forest, binned)
        for t, tree in enumerate(trees):
            offset = int(forest.offsets[t])
            for i in range(params["n_rows"]):
                expected = offset + _oracle_walk(tree.arrays, binned[i])
                assert positions[t, i] == expected

    @given(params=ensembles)
    def test_predict_raw_bit_identical_to_pertree_loop(self, params):
        rng = np.random.default_rng(params["seed"])
        trees = _random_trees(
            rng,
            params["n_trees"],
            params["max_depth"],
            params["n_features"],
            params["split_p"],
        )
        base = float(rng.normal())
        lr = float(rng.uniform(0.01, 0.5))
        forest = flatten_ensemble(trees)
        binned = rng.integers(
            0, 256, size=(params["n_rows"], params["n_features"])
        ).astype(np.uint8)
        expected = np.full(binned.shape[0], base)
        for tree in trees:
            expected += lr * tree.predict_binned(binned)
        got = predict_raw(forest, binned, base_score=base, learning_rate=lr)
        assert got.dtype == np.float64
        assert np.array_equal(got, expected)
        if numba_available():
            via_numba = predict_raw(
                forest, binned, base_score=base, learning_rate=lr, backend="numba"
            )
            assert np.array_equal(via_numba, expected)

    @pytest.mark.parametrize("code", [0, 63, 255])
    def test_constant_imputed_rows(self, code):
        """All-NaN-imputed rows surface as constant codes; still exact."""
        rng = np.random.default_rng(code)
        trees = _random_trees(rng, 3, 4, 3, 0.8)
        forest = flatten_ensemble(trees)
        binned = np.full((17, 3), code, dtype=np.uint8)
        expected = np.full(17, 0.25)
        for tree in trees:
            expected += 0.1 * tree.predict_binned(binned)
        got = predict_raw(forest, binned, base_score=0.25, learning_rate=0.1)
        assert np.array_equal(got, expected)
        # Constant input -> one shared leaf per tree -> constant output.
        assert np.unique(got).size == 1

    def test_single_leaf_trees(self):
        rng = np.random.default_rng(5)
        trees = _random_trees(rng, 4, 3, 2, 0.0)  # split_p=0: all stumps
        forest = flatten_ensemble(trees)
        assert forest.n_nodes == 4
        binned = rng.integers(0, 256, size=(9, 2)).astype(np.uint8)
        got = predict_raw(forest, binned, base_score=1.0, learning_rate=0.5)
        expected = np.full(9, 1.0)
        for tree in trees:
            expected += 0.5 * tree.predict_binned(binned)
        assert np.array_equal(got, expected)

    def test_empty_ensemble_scores_base_only(self):
        assert flatten_ensemble([]) is None
        got = predict_raw(
            None, np.zeros((6, 2), dtype=np.uint8), base_score=-1.5, learning_rate=0.1
        )
        assert np.array_equal(got, np.full(6, -1.5))

    def test_traverse_rejects_non_uint8(self):
        trees = _random_trees(np.random.default_rng(0), 1, 2, 2, 1.0)
        forest = flatten_ensemble(trees)
        with pytest.raises(ValidationError, match="uint8"):
            traverse(forest, np.zeros((3, 2), dtype=np.int64))

    def test_tree_major_bulk_path_bit_identical(self, monkeypatch):
        """Bulk batches take the tree-major sweep; same bits either way."""
        rng = np.random.default_rng(3)
        trees = _random_trees(rng, 5, 4, 3, 0.8)
        forest = flatten_ensemble(trees)
        n_rows = kernels.TREE_MAJOR_MIN_ROWS + 7
        binned = rng.integers(0, 256, size=(n_rows, 3)).astype(np.uint8)
        bulk = predict_raw(forest, binned, base_score=0.5, learning_rate=0.1)
        monkeypatch.setattr(kernels, "TREE_MAJOR_MIN_ROWS", n_rows + 1)
        level_sync = predict_raw(forest, binned, base_score=0.5, learning_rate=0.1)
        assert np.array_equal(bulk, level_sync)
        expected = np.full(n_rows, 0.5)
        for tree in trees:
            expected += 0.1 * tree.predict_binned(binned)
        assert np.array_equal(bulk, expected)

    def test_chunked_traversal_matches_unchunked(self, monkeypatch):
        rng = np.random.default_rng(11)
        trees = _random_trees(rng, 3, 4, 3, 0.8)
        forest = flatten_ensemble(trees)
        binned = rng.integers(0, 256, size=(103, 3)).astype(np.uint8)
        whole = traverse(forest, binned)
        monkeypatch.setattr(kernels, "CHUNK_ROWS", 16)
        assert np.array_equal(traverse(forest, binned), whole)


class TestFittedModelParity:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_fitted_gbdt_flat_matches_pertree_oracle(self, binary_dataset, seed):
        X, y = binary_dataset
        gb = GradientBoostingClassifier(
            n_estimators=30, max_depth=3, random_state=seed
        )
        gb.fit(X, y)
        assert gb._flat is not None
        assert gb._flat.n_trees == gb.n_estimators_
        flat = gb.decision_function(X)
        pertree = gb._decision_function_pertree(X)
        assert np.array_equal(flat, pertree)
        if numba_available():
            with use_backend("numba"):
                assert np.array_equal(gb.decision_function(X), pertree)

    def test_refit_invalidates_flat_cache(self, binary_dataset):
        X, y = binary_dataset
        gb = GradientBoostingClassifier(n_estimators=8, max_depth=2, random_state=0)
        gb.fit(X[:800], y[:800])
        first = gb._flat
        gb.fit(X[800:1600], y[800:1600])
        assert gb._flat is not first
        assert np.array_equal(
            gb.decision_function(X[:100]), gb._decision_function_pertree(X[:100])
        )

    def test_predict_does_not_reflatten(self, binary_dataset, monkeypatch):
        """Regression: scoring must reuse the fit-time flat cache."""
        X, y = binary_dataset
        calls = []
        real = kernels.flatten_ensemble

        def counting(trees):
            calls.append(len(trees))
            return real(trees)

        monkeypatch.setattr("repro.ml.gbdt.flatten_ensemble", counting)
        gb = GradientBoostingClassifier(n_estimators=8, max_depth=2, random_state=0)
        gb.fit(X[:800], y[:800])
        assert len(calls) == 1  # flattened exactly once, at fit time
        gb.decision_scores(X[800:900])
        gb.decision_scores(X[900:1000])
        gb.predict_proba(X[:50])
        assert len(calls) == 1  # no re-flattening on any predict path

    def test_unpickle_rebuilds_flat_cache(self, binary_dataset):
        import pickle

        X, y = binary_dataset
        gb = GradientBoostingClassifier(n_estimators=8, max_depth=2, random_state=0)
        gb.fit(X[:800], y[:800])
        blob = pickle.dumps(gb)
        clone = pickle.loads(blob)
        assert clone._flat is not None
        assert np.array_equal(
            clone.decision_function(X[:100]), gb.decision_function(X[:100])
        )

    def test_unpickle_of_pre_kernel_payload(self, binary_dataset):
        """Old pickles never carried ``_flat``; __setstate__ upgrades them."""
        X, y = binary_dataset
        gb = GradientBoostingClassifier(n_estimators=6, max_depth=2, random_state=0)
        gb.fit(X[:600], y[:600])
        state = gb.__getstate__()
        assert "_flat" not in state  # derived data never pickles
        fresh = GradientBoostingClassifier.__new__(GradientBoostingClassifier)
        fresh.__setstate__(state)
        assert fresh._flat is not None
        assert np.array_equal(
            fresh.decision_function(X[:100]), gb.decision_function(X[:100])
        )


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        previous = get_backend()
        yield
        set_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown scoring backend"):
            set_backend("cython")
        assert get_backend() in kernels.KERNEL_BACKENDS

    def test_predict_raw_rejects_unknown_backend(self):
        trees = _random_trees(np.random.default_rng(0), 1, 2, 2, 1.0)
        forest = flatten_ensemble(trees)
        with pytest.raises(ValidationError, match="unknown scoring backend"):
            predict_raw(
                forest,
                np.zeros((2, 2), dtype=np.uint8),
                base_score=0.0,
                learning_rate=0.1,
                backend="fortran",
            )

    def test_numba_fallback_warns_and_uses_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels, "_NUMBA_OK", False)
        with pytest.warns(KernelBackendWarning, match="falling back"):
            effective = set_backend("numba")
        assert effective == "numpy"
        assert get_backend() == "numpy"

    def test_use_backend_restores_previous(self):
        assert get_backend() == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", KernelBackendWarning)
            with use_backend("numba"):
                assert get_backend() in kernels.KERNEL_BACKENDS
        assert get_backend() == "numpy"

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_backend_selectable_when_available(self):
        with use_backend("numba") as effective:
            assert effective == "numba"
            assert get_backend() == "numba"
