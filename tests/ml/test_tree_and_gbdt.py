"""Tests for histogram trees and gradient boosting."""

import numpy as np
import pytest

from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FeatureBinner,
    GradHessTree,
)
from repro.utils.errors import NotFittedError, ValidationError


class TestFeatureBinner:
    def test_bins_are_monotone(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        binner = FeatureBinner(16)
        codes = binner.fit_transform(X)
        assert codes.dtype == np.uint8
        order = np.argsort(X[:, 0])
        assert np.all(np.diff(codes[order, 0].astype(int)) >= 0)

    def test_invalid_bins(self):
        with pytest.raises(ValidationError):
            FeatureBinner(1)
        with pytest.raises(ValidationError):
            FeatureBinner(300)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            FeatureBinner().transform(np.ones((2, 2)))

    def test_transform_column_mismatch(self):
        binner = FeatureBinner(8).fit(np.random.default_rng(0).normal(size=(50, 3)))
        with pytest.raises(ValidationError):
            binner.transform(np.ones((5, 2)))

    def test_constant_column(self):
        X = np.column_stack([np.ones(100), np.arange(100.0)])
        codes = FeatureBinner(8).fit_transform(X)
        assert np.unique(codes[:, 0]).size == 1

    def test_bin_upper_value(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        binner = FeatureBinner(4).fit(X)
        assert binner.bin_upper_value(0, 100) == np.inf
        assert binner.bin_upper_value(0, 0) < binner.bin_upper_value(0, 1)


class TestGradHessTree:
    def test_requires_uint8(self):
        tree = GradHessTree()
        with pytest.raises(ValidationError):
            tree.fit(np.zeros((4, 1)), np.zeros(4), np.ones(4), n_bins=8)

    def test_pure_split_recovery(self):
        """A single informative feature should be split on exactly."""
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        model = DecisionTreeRegressor(max_depth=2, min_samples_leaf=5)
        model.fit(X, y)
        pred = model.predict(X)
        assert np.abs(pred - y).mean() < 0.05

    def test_not_fitted_predict(self):
        with pytest.raises(NotFittedError):
            GradHessTree().predict_binned(np.zeros((2, 1), dtype=np.uint8))


class TestDecisionTreeRegressor:
    def test_reduces_to_mean_with_depth_limits(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        X = np.zeros((4, 1))
        model = DecisionTreeRegressor(max_depth=1, min_samples_leaf=1)
        model.fit(X, y)
        assert model.predict(X) == pytest.approx(np.full(4, y.mean()))

    def test_fits_step_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(600, 2))
        y = np.where(X[:, 0] > 0, 3.0, -1.0) + rng.normal(0, 0.05, 600)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        pred = model.predict(X)
        assert np.corrcoef(pred, y)[0, 1] > 0.98

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            DecisionTreeRegressor().fit(np.ones((3, 1)), np.ones(4))


class TestDecisionTreeClassifier:
    def test_basic_classification(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(400, 2))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_proba_bounds(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        proba = model.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))


class TestGradientBoosting:
    def test_improves_with_rounds(self, binary_dataset):
        X, y = binary_dataset
        small = GradientBoostingClassifier(
            n_estimators=5, max_depth=3, random_state=0, subsample=1.0
        ).fit(X, y)
        large = GradientBoostingClassifier(
            n_estimators=80, max_depth=3, random_state=0, subsample=1.0
        ).fit(X, y)
        from repro.ml.metrics import f1_score

        assert f1_score(y, large.predict(X)) >= f1_score(y, small.predict(X))

    def test_early_stopping_limits_trees(self, binary_dataset):
        X, y = binary_dataset
        model = GradientBoostingClassifier(
            n_estimators=300,
            early_stopping_fraction=0.2,
            early_stopping_rounds=5,
            random_state=0,
        ).fit(X, y)
        assert model.n_estimators_ <= 300

    def test_staged_scores_converge_to_final(self, binary_dataset):
        X, y = binary_dataset
        model = GradientBoostingClassifier(
            n_estimators=10, random_state=0, early_stopping_fraction=0.0
        ).fit(X, y)
        stages = list(model.staged_decision_function(X[:20]))
        assert len(stages) == model.n_estimators_
        assert np.allclose(stages[-1], model.decision_function(X[:20]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(class_weight="bogus")

    def test_nonlinear_advantage_over_linear(self, binary_dataset):
        """GBDT must beat LR on an interaction-heavy problem (the paper's
        core modelling claim)."""
        from repro.ml import LogisticRegression, f1_score, train_test_split

        X, y = binary_dataset
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, random_state=1)
        gbdt = GradientBoostingClassifier(n_estimators=80, random_state=0).fit(Xtr, ytr)
        lr = LogisticRegression(epochs=60, random_state=0).fit(Xtr, ytr)
        assert f1_score(yte, gbdt.predict(Xte)) > f1_score(yte, lr.predict(Xte))
