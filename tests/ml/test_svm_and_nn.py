"""Model-specific tests for the SVM and the MLP."""

import numpy as np
import pytest

from repro.ml.nn import MLPClassifier
from repro.ml.svm import SVC
from repro.utils.errors import ValidationError


class TestSVC:
    def test_linearly_separable(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (60, 2)), rng.normal(2, 0.5, (60, 2))])
        y = np.array([0] * 60 + [1] * 60)
        model = SVC(kernel="linear", max_iter=30, random_state=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_rbf_solves_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = SVC(kernel="rbf", gamma=2.0, C=5.0, max_iter=40, random_state=0)
        model.fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_subsampling_cap_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(3000, 3))
        y = (X[:, 0] > 0).astype(int)
        model = SVC(max_train_size=300, max_iter=5, random_state=0).fit(X, y)
        assert model.support_vectors_ is not None
        assert model.support_vectors_.shape[0] <= 300

    def test_stratified_subsample_keeps_minority(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(2000, 2))
        y = np.zeros(2000, dtype=int)
        y[:40] = 1
        X[:40] += 3.0
        model = SVC(max_train_size=200, max_iter=5, random_state=0)
        model.fit(X, y)  # must not raise "single class"

    def test_invalid_kernel_and_gamma(self):
        with pytest.raises(ValidationError):
            SVC(kernel="poly")
        with pytest.raises(ValidationError):
            SVC(gamma="auto")
        with pytest.raises(ValidationError):
            SVC(gamma=-1.0)

    def test_gamma_scale_resolution(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 4))
        y = (X[:, 0] > 0).astype(int)
        model = SVC(gamma="scale", max_iter=3, random_state=0).fit(X, y)
        assert model._gamma_value > 0


class TestMLP:
    def test_solves_xor(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = MLPClassifier(
            hidden_layers=(32, 16),
            epochs=120,
            early_stopping_fraction=0.0,
            random_state=0,
        ).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_early_stopping_restores_best(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] > 0).astype(int)
        model = MLPClassifier(
            hidden_layers=(8,), epochs=200, patience=3, random_state=0
        ).fit(X, y)
        assert model.n_iter_ <= 200

    def test_invalid_hidden_layers(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=())
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=(0,))

    def test_invalid_class_weight(self):
        with pytest.raises(ValueError):
            MLPClassifier(class_weight="weird")
