"""Tests for estimator base-class plumbing and input validation."""

import numpy as np
import pytest

from repro.ml.base import BaseClassifier, check_array, check_X_y, sigmoid
from repro.utils.errors import ValidationError


class TestCheckArray:
    def test_promotes_1d(self):
        out = check_array(np.arange(3.0))
        assert out.shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((0, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_array(np.array([[np.nan]]))
        with pytest.raises(ValidationError):
            check_array(np.array([[np.inf]]))

    def test_casts_to_float(self):
        out = check_array(np.array([[1, 2], [3, 4]]))
        assert out.dtype == float


class TestCheckXy:
    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            check_X_y(np.ones((3, 2)), np.array([0, 1]))

    def test_nonbinary_labels(self):
        with pytest.raises(ValidationError):
            check_X_y(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_2d_labels(self):
        with pytest.raises(ValidationError):
            check_X_y(np.ones((2, 2)), np.array([[0], [1]]))

    def test_valid_passthrough(self):
        X, y = check_X_y(np.ones((2, 2)), np.array([0, 1]))
        assert X.shape == (2, 2)
        assert y.dtype == int


class _ConstantClassifier(BaseClassifier):
    """Trivial subclass for exercising template behaviour."""

    def _fit(self, X, y):
        self._logit = float(np.log(y.mean() / (1 - y.mean())))

    def _decision_function(self, X):
        return np.full(X.shape[0], self._logit)


class TestBaseClassifier:
    def test_template_flow(self):
        X = np.zeros((10, 2))
        y = np.array([0, 1] * 5)
        model = _ConstantClassifier().fit(X, y)
        assert np.allclose(model.predict_proba(X), 0.5)
        assert set(model.predict(X)) <= {0, 1}

    def test_decision_function_validates_shape(self):
        model = _ConstantClassifier().fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
        with pytest.raises(ValidationError):
            model.decision_function(np.zeros((2, 3)))


class TestSigmoidProperties:
    def test_symmetry(self):
        z = np.linspace(-20, 20, 41)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_monotone(self):
        z = np.linspace(-5, 5, 100)
        assert np.all(np.diff(sigmoid(z)) > 0)
