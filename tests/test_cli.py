"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "simulate", "--out", "/tmp/x"]
        )
        assert args.command == "simulate"
        assert args.preset == "tiny"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig1", "table2"])
        assert args.ids == ["fig1", "table2"]

    def test_invalid_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "giant", "characterize"])

    def test_faults_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "faults", "--seed", "7", "--intensities", "0,0.25"]
        )
        assert args.command == "faults"
        assert args.seed == 7
        assert args.intensities == "0,0.25"

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.seed == 0
        assert args.intensities is None
        assert args.model == "gbdt"

    def test_gateway_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "gateway", "--shards", "1,2", "--clients", "5"]
        )
        assert args.command == "gateway"
        assert args.shards == "1,2"
        assert args.clients == 5
        assert args.chaos == 0.25

    def test_gateway_defaults(self):
        args = build_parser().parse_args(["gateway"])
        assert args.shards is None
        assert args.clients == 3
        assert args.batch_size == 64

    def test_serve_replay_chaos_and_checkpoint_args(self):
        args = build_parser().parse_args(
            [
                "serve-replay",
                "--registry",
                "/tmp/r",
                "--chaos",
                "0.25",
                "--chaos-seed",
                "7",
                "--checkpoint-dir",
                "/tmp/ckpt",
                "--checkpoint-every",
                "500",
                "--crash-after",
                "1200",
            ]
        )
        assert args.chaos == 0.25
        assert args.chaos_seed == 7
        assert args.checkpoint_dir == "/tmp/ckpt"
        assert args.checkpoint_every == 500
        assert args.crash_after == 1200
        assert args.resume is False

    def test_serve_replay_chaos_defaults_off(self):
        args = build_parser().parse_args(["serve-replay", "--registry", "/tmp/r"])
        assert args.chaos is None
        assert args.checkpoint_dir is None
        assert args.crash_after is None

    def test_resilience_args(self):
        args = build_parser().parse_args(
            ["resilience", "--intensities", "0,0.25", "--seed", "3"]
        )
        assert args.command == "resilience"
        assert args.seed == 3

    def test_registry_verify_args(self):
        args = build_parser().parse_args(
            ["registry", "verify", "--registry", "/tmp/r", "--name", "twostage"]
        )
        assert args.command == "registry"
        assert args.action == "verify"


class TestMain:
    def test_simulate_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = main(["--preset", "tiny", "--no-cache", "simulate", "--out", str(out)])
        assert code == 0
        assert out.with_suffix(".npz").exists()
        assert "samples" in capsys.readouterr().out

    def test_evaluate_basic(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["--preset", "tiny", "evaluate", "--split", "DS1", "--model", "basic_a"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1=" in out and "basic_a" in out

    def test_experiment_fig1(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--preset", "tiny", "experiment", "fig1"])
        assert code == 0
        assert "fig1" in capsys.readouterr().out

    def test_faults_sweep(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["--preset", "tiny", "faults", "--intensities", "0,0.25", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation" in out
        assert "baseline" in out


class TestChaosServeCli:
    def test_crash_then_resume_smoke(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        base = [
            "--preset",
            "tiny",
            "serve-replay",
            "--registry",
            str(tmp_path / "registry"),
            "--fast",
            "--batch-size",
            "64",
            "--chaos",
            "0.25",
            "--chaos-seed",
            "7",
            "--checkpoint-dir",
            str(tmp_path / "ckpt"),
            "--checkpoint-every",
            "300",
        ]
        code = main(base + ["--crash-after", "900"])
        captured = capsys.readouterr()
        # The simulated crash is a library error: one line, no traceback.
        assert code == 1
        assert "repro: error: simulated crash" in captured.err
        assert "Traceback" not in captured.err

        code = main(base + ["--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "resumed from" in captured.out
        assert "availability" in captured.out

    def test_resume_without_checkpoints_is_one_line_error(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            [
                "--preset",
                "tiny",
                "serve-replay",
                "--registry",
                str(tmp_path / "registry"),
                "--fast",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--resume",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "repro: error:" in captured.err
        assert "nothing to resume" in captured.err


class TestErrorHandling:
    """Library failures exit nonzero with one stderr line, no traceback."""

    def test_unknown_experiment_id(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--preset", "tiny", "experiment", "nope"])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "nope" in err
        assert "Traceback" not in err

    def test_invalid_intensities(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--preset", "tiny", "faults", "--intensities", "0,2"])
        assert code == 1
        assert "[0, 1]" in capsys.readouterr().err

    def test_unparseable_intensities(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--preset", "tiny", "faults", "--intensities", "a,b"])
        assert code == 1
        assert "invalid" in capsys.readouterr().err
