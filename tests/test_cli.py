"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["--preset", "tiny", "simulate", "--out", "/tmp/x"]
        )
        assert args.command == "simulate"
        assert args.preset == "tiny"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig1", "table2"])
        assert args.ids == ["fig1", "table2"]

    def test_invalid_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "giant", "characterize"])


class TestMain:
    def test_simulate_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace"
        code = main(["--preset", "tiny", "--no-cache", "simulate", "--out", str(out)])
        assert code == 0
        assert out.with_suffix(".npz").exists()
        assert "samples" in capsys.readouterr().out

    def test_evaluate_basic(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(
            ["--preset", "tiny", "evaluate", "--split", "DS1", "--model", "basic_a"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1=" in out and "basic_a" in out

    def test_experiment_fig1(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["--preset", "tiny", "experiment", "fig1"])
        assert code == 0
        assert "fig1" in capsys.readouterr().out
