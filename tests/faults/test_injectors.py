"""Tests for the seeded fault injectors."""

import numpy as np
import pytest

from repro.faults import (
    CounterResetInjector,
    DuplicateInjector,
    FaultLog,
    FaultSpec,
    NodeOutageInjector,
    OutOfOrderInjector,
    SensorCorruptionInjector,
    inject_faults,
)
from repro.faults.injectors import CLIP_SENTINEL, telemetry_columns_present
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedSequenceFactory


def _rng(name="test"):
    return SeedSequenceFactory(123).generator(name)


def _samples_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[k], b[k], equal_nan=True) for k in a
    )


class TestFaultSpec:
    def test_intensity_range_enforced(self):
        with pytest.raises(ValidationError):
            FaultSpec(intensity=1.5)
        with pytest.raises(ValidationError):
            FaultSpec(intensity=-0.1)

    def test_presets(self):
        assert FaultSpec.preset("clean").intensity == 0.0
        assert FaultSpec.preset("moderate").intensity == 0.25
        with pytest.raises(ValidationError):
            FaultSpec.preset("catastrophic")

    def test_scaled(self):
        spec = FaultSpec(intensity=0.5, sensor_rate=0.2)
        assert spec.scaled(spec.sensor_rate) == pytest.approx(0.1)


class TestInjectFaults:
    def test_zero_intensity_is_exact_noop(self, tiny_trace):
        faulty, log = inject_faults(tiny_trace, FaultSpec(intensity=0.0))
        assert faulty is tiny_trace
        assert len(log) == 0

    def test_deterministic_per_seed(self, tiny_trace):
        spec = FaultSpec(intensity=0.3)
        a, log_a = inject_faults(tiny_trace, spec, seed=11)
        b, log_b = inject_faults(tiny_trace, spec, seed=11)
        assert _samples_equal(a.samples, b.samples)
        assert log_a.digest() == log_b.digest()

    def test_seed_changes_outcome(self, tiny_trace):
        spec = FaultSpec(intensity=0.3)
        _, log_a = inject_faults(tiny_trace, spec, seed=1)
        _, log_b = inject_faults(tiny_trace, spec, seed=2)
        assert log_a.digest() != log_b.digest()

    def test_original_trace_untouched(self, tiny_trace):
        before = {k: v.copy() for k, v in tiny_trace.samples.items()}
        inject_faults(tiny_trace, FaultSpec(intensity=0.5), seed=3)
        assert _samples_equal(before, tiny_trace.samples)

    def test_log_covers_all_kinds_at_high_intensity(self, tiny_trace):
        _, log = inject_faults(tiny_trace, FaultSpec(intensity=0.5), seed=5)
        assert set(log.kinds()) == {
            "outage",
            "counter_reset",
            "sensor",
            "duplicate",
            "out_of_order",
        }
        assert log.rows_affected() > 0


class TestIndividualInjectors:
    def test_outage_drops_only_chosen_nodes(self, tiny_trace):
        log = FaultLog(seed=0, intensity=1.0)
        spec = FaultSpec(intensity=1.0)
        out = NodeOutageInjector().apply(tiny_trace.samples, spec, _rng(), log)
        dropped = tiny_trace.num_samples - out["node_id"].shape[0]
        assert dropped == log.rows_affected("outage")
        assert dropped > 0
        affected_nodes = {e.node_id for e in log.events}
        survivors = set(np.unique(out["node_id"]).astype(int))
        untouched = set(np.unique(tiny_trace.samples["node_id"]).astype(int))
        assert survivors <= untouched
        assert affected_nodes <= untouched

    def test_counter_reset_goes_negative(self, tiny_trace):
        log = FaultLog(seed=0, intensity=1.0)
        spec = FaultSpec(intensity=1.0)
        out = CounterResetInjector().apply(tiny_trace.samples, spec, _rng(), log)
        negatives = int((out["sbe_count"] < 0).sum())
        assert negatives > 0
        assert (tiny_trace.samples["sbe_count"] >= 0).all()

    def test_duplicates_grow_table(self, tiny_trace):
        log = FaultLog(seed=0, intensity=1.0)
        spec = FaultSpec(intensity=1.0)
        out = DuplicateInjector().apply(tiny_trace.samples, spec, _rng(), log)
        added = out["node_id"].shape[0] - tiny_trace.num_samples
        assert added == log.rows_affected("duplicate")
        assert added > 0

    def test_out_of_order_permutes_without_loss(self, tiny_trace):
        log = FaultLog(seed=0, intensity=1.0)
        spec = FaultSpec(intensity=1.0)
        s = tiny_trace.samples
        out = OutOfOrderInjector().apply(s, spec, _rng(), log)
        assert out["node_id"].shape[0] == tiny_trace.num_samples
        # Same multiset of rows (check via a per-row composite key).
        key_in = np.sort(s["run_idx"].astype(np.int64) * 10**6 + s["node_id"])
        key_out = np.sort(out["run_idx"].astype(np.int64) * 10**6 + out["node_id"])
        assert np.array_equal(key_in, key_out)
        assert not np.array_equal(out["end_minute"], s["end_minute"])

    def test_sensor_corruption_modes(self, tiny_trace):
        log = FaultLog(seed=0, intensity=1.0)
        spec = FaultSpec(intensity=1.0)
        out = SensorCorruptionInjector().apply(tiny_trace.samples, spec, _rng(), log)
        columns = telemetry_columns_present(out)
        stacked = np.column_stack([out[c].astype(float) for c in columns])
        assert np.isnan(stacked).any()
        assert (stacked == CLIP_SENTINEL).any()
        # Non-telemetry columns are never touched.
        for name in ("node_id", "start_minute", "end_minute", "sbe_count"):
            assert np.array_equal(out[name], tiny_trace.samples[name])

    def test_empty_samples_pass_through(self, tiny_trace):
        empty = {k: v[:0] for k, v in tiny_trace.samples.items()}
        spec = FaultSpec(intensity=1.0)
        for injector in (
            NodeOutageInjector(),
            CounterResetInjector(),
            DuplicateInjector(),
            OutOfOrderInjector(),
            SensorCorruptionInjector(),
        ):
            log = FaultLog(seed=0, intensity=1.0)
            out = injector.apply(empty, spec, _rng(), log)
            assert out["node_id"].shape[0] == 0
