"""Tests for the telemetry sanitizer, including the satellite edge cases."""

import warnings

import numpy as np
import pytest

from repro.faults import FaultSpec, inject_faults, sanitize_trace
from repro.features.builder import build_features
from repro.telemetry.trace import SAMPLE_TELEMETRY_COLUMNS, Trace
from repro.utils.errors import DegradedDataWarning, TelemetryFaultError


def _with_samples(trace: Trace, samples: dict) -> Trace:
    """A copy of ``trace`` with a replaced samples table."""
    return Trace(
        config=trace.config,
        samples=samples,
        runs=trace.runs,
        app_names=trace.app_names,
        node_mean_temp=trace.node_mean_temp,
        node_mean_power=trace.node_mean_power,
        node_susceptibility=trace.node_susceptibility,
        recorded_series=trace.recorded_series,
    )


def _sanitize_quiet(trace):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedDataWarning)
        return sanitize_trace(trace)


class TestCleanPath:
    def test_clean_trace_is_bitwise_noop(self, tiny_trace):
        repaired, report = sanitize_trace(tiny_trace)
        assert repaired is tiny_trace
        assert report.clean
        assert report.rows_quarantined == 0
        assert report.quarantined_fraction == 0.0

    def test_clean_trace_emits_no_warning(self, tiny_trace):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            sanitize_trace(tiny_trace)

    def test_empty_trace_handled(self, tiny_trace):
        empty = _with_samples(tiny_trace, {k: v[:0] for k, v in tiny_trace.samples.items()})
        repaired, report = sanitize_trace(empty)
        assert repaired is empty
        assert report.total_rows == 0
        assert report.clean

    def test_missing_column_rejected(self, tiny_trace):
        samples = dict(tiny_trace.samples)
        del samples["gpu_temp_mean"]
        broken = _with_samples(tiny_trace, samples)
        with pytest.raises(TelemetryFaultError, match="gpu_temp_mean"):
            sanitize_trace(broken)


class TestRepairs:
    def test_counter_reset_at_window_boundaries(self, tiny_trace):
        samples = {k: v.copy() for k, v in tiny_trace.samples.items()}
        sbe = samples["sbe_count"].astype(np.int64)
        first = int(np.argmin(samples["end_minute"]))
        last = int(np.argmax(samples["end_minute"]))
        sbe[first] = -7  # reset crossing the trace's first window boundary
        sbe[last] = -3  # and its last
        samples["sbe_count"] = sbe
        repaired, report = _sanitize_quiet(_with_samples(tiny_trace, samples))
        assert report.counter_resets == 2
        assert repaired.num_samples == tiny_trace.num_samples
        assert (repaired.samples["sbe_count"] >= 0).all()

    def test_duplicate_timestamps_conflicting_values(self, tiny_trace):
        samples = {k: v.copy() for k, v in tiny_trace.samples.items()}
        # Duplicate row 0 with identical timestamps but corrupt telemetry.
        for name, col in list(samples.items()):
            samples[name] = np.concatenate([col, col[:1]])
        corrupt = samples["gpu_temp_mean"].astype(float)
        corrupt[-1] = np.nan  # the duplicate disagrees with the original
        samples["gpu_temp_mean"] = corrupt
        repaired, report = _sanitize_quiet(_with_samples(tiny_trace, samples))
        assert report.duplicates_removed == 1
        assert repaired.num_samples == tiny_trace.num_samples
        # The clean copy won: the surviving value is the original one.
        row = (repaired.samples["run_idx"] == samples["run_idx"][0]) & (
            repaired.samples["node_id"] == samples["node_id"][0]
        )
        kept = repaired.samples["gpu_temp_mean"][row]
        assert np.isfinite(kept).all()
        assert kept[0] == pytest.approx(float(tiny_trace.samples["gpu_temp_mean"][0]))

    def test_all_rows_dead_raises(self, tiny_trace):
        samples = {k: v.copy() for k, v in tiny_trace.samples.items()}
        for name in SAMPLE_TELEMETRY_COLUMNS:
            samples[name] = np.full_like(samples[name], np.nan, dtype=float)
        with pytest.raises(TelemetryFaultError, match="quarantined"):
            _sanitize_quiet(_with_samples(tiny_trace, samples))

    def test_all_nodes_out_outage_yields_empty_then_graceful(self, tiny_trace):
        # An outage covering every node and the whole horizon drops every
        # sample at injection time; the sanitizer must not crash on the
        # resulting empty trace.
        empty = _with_samples(
            tiny_trace, {k: v[:0] for k, v in tiny_trace.samples.items()}
        )
        repaired, report = sanitize_trace(empty)
        assert repaired.num_samples == 0
        assert report.quarantined_fraction == 0.0

    def test_strict_mode_raises_instead_of_repairing(self, tiny_trace):
        samples = {k: v.copy() for k, v in tiny_trace.samples.items()}
        sbe = samples["sbe_count"].astype(np.int64)
        sbe[0] = -1
        samples["sbe_count"] = sbe
        with pytest.raises(TelemetryFaultError, match="strict"):
            sanitize_trace(_with_samples(tiny_trace, samples), strict=True)

    def test_repair_emits_degraded_warning(self, tiny_trace):
        faulty, _ = inject_faults(tiny_trace, FaultSpec(intensity=0.3), seed=9)
        with pytest.warns(DegradedDataWarning):
            sanitize_trace(faulty)

    def test_out_of_range_values_imputed(self, tiny_trace):
        samples = {k: v.copy() for k, v in tiny_trace.samples.items()}
        col = samples["gpu_power_mean"].astype(float)
        col[5] = 1.0e6  # clipped sensor rail
        samples["gpu_power_mean"] = col
        repaired, report = _sanitize_quiet(_with_samples(tiny_trace, samples))
        assert report.values_imputed == 1
        fixed = repaired.samples["gpu_power_mean"]
        assert np.isfinite(fixed).all()
        assert np.abs(fixed).max() < 1.0e4


class TestRoundTripProperties:
    """sanitize(inject(trace)) invariants, property-style over seeds."""

    @pytest.mark.parametrize("intensity", [0.1, 0.25, 0.5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_row_count_and_feature_invariants(self, tiny_trace, intensity, seed):
        faulty, log = inject_faults(
            tiny_trace, FaultSpec(intensity=intensity), seed=seed
        )
        repaired, report = _sanitize_quiet(faulty)

        # Row accounting is exact.
        assert report.total_rows == faulty.num_samples
        assert (
            report.rows_out
            == report.total_rows
            - report.duplicates_removed
            - report.rows_quarantined
        )
        assert repaired.num_samples == report.rows_out
        # Never more rows than the clean trace had (dupes are collapsed).
        assert repaired.num_samples <= tiny_trace.num_samples

        # Every surviving (run, node) pair existed in the clean trace.
        def pairs(trace):
            return set(
                zip(
                    trace.samples["run_idx"].astype(int),
                    trace.samples["node_id"].astype(int),
                )
            )

        assert pairs(repaired) <= pairs(tiny_trace)
        # One row per (run, node): the builder's core assumption.
        assert len(pairs(repaired)) == repaired.num_samples

        # Counters are monotone again and features are fully finite.
        assert (repaired.samples["sbe_count"] >= 0).all()
        features = build_features(repaired)
        assert np.isfinite(features.X).all()
        assert features.num_samples == repaired.num_samples
