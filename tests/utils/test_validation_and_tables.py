"""Tests for validation helpers and text rendering."""

import numpy as np
import pytest

from repro.utils.errors import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.utils.tables import format_grid, format_table
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2, "x") == 2
        with pytest.raises(ValidationError, match="x"):
            check_positive(0, "x")
        with pytest.raises(ValidationError):
            check_positive(-1, "x")

    def test_check_nonnegative(self):
        assert check_nonnegative(0, "x") == 0
        with pytest.raises(ValidationError):
            check_nonnegative(-0.1, "x")

    def test_check_fraction_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValidationError):
            check_fraction(1.1, "f")

    def test_check_fraction_exclusive(self):
        with pytest.raises(ValidationError):
            check_fraction(0.0, "f", inclusive=False)
        assert check_fraction(0.5, "f", inclusive=False) == 0.5

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "opt") == "a"
        with pytest.raises(ValidationError, match="opt"):
            check_in("c", ("a", "b"), "opt")


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, ValidationError, NotFittedError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(NotFittedError, RuntimeError)


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "0.125" in text

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in text

    def test_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width


class TestFormatGrid:
    def test_shape_check(self):
        with pytest.raises(ValueError):
            format_grid(np.zeros(3))

    def test_renders_rows_top_down(self):
        grid = np.array([[0.0, 0.0], [9.0, 9.0]])
        lines = format_grid(grid).splitlines()
        # Highest row index first; that row holds the max glyph.
        assert lines[0].startswith(" 1 |")
        assert "@" in lines[0]

    def test_constant_grid(self):
        text = format_grid(np.ones((2, 2)), title="flat")
        assert "flat" in text

    def test_nan_marked(self):
        grid = np.array([[np.nan, 1.0]])
        assert "?" in format_grid(grid)
