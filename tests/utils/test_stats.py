"""Tests for streaming statistics and distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import OnlineStats, diff_stats, empirical_cdf, spearman

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestOnlineStats:
    def test_empty_is_nan(self):
        stats = OnlineStats()
        assert np.isnan(stats.variance)
        assert stats.as_tuple() == (pytest.approx(np.nan, nan_ok=True),) * 2

    def test_single_value(self):
        stats = OnlineStats()
        stats.update(3.0)
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert stats.min == 3.0 == stats.max

    def test_matches_numpy(self):
        values = np.array([1.0, 2.0, -5.0, 7.5, 0.0])
        stats = OnlineStats()
        for v in values:
            stats.update(float(v))
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std())
        assert stats.min == values.min()
        assert stats.max == values.max()

    def test_update_many_matches_scalar_updates(self):
        values = np.linspace(-3, 9, 17)
        a, b = OnlineStats(), OnlineStats()
        for v in values:
            a.update(float(v))
        b.update_many(values)
        assert a.mean == pytest.approx(b.mean)
        assert a.std == pytest.approx(b.std)
        assert a.count == b.count

    def test_update_many_empty_is_noop(self):
        stats = OnlineStats()
        stats.update_many(np.empty(0))
        assert stats.count == 0

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, xs, ys):
        merged = OnlineStats()
        merged.update_many(np.asarray(xs))
        other = OnlineStats()
        other.update_many(np.asarray(ys))
        merged.merge(other)
        reference = np.concatenate([xs, ys])
        assert merged.count == reference.size
        assert merged.mean == pytest.approx(reference.mean(), rel=1e-9, abs=1e-6)
        assert merged.std == pytest.approx(reference.std(), rel=1e-6, abs=1e-6)

    def test_merge_into_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.update_many(np.array([1.0, 2.0]))
        a.merge(b)
        assert a.mean == pytest.approx(1.5)

    def test_merge_empty_is_noop(self):
        a = OnlineStats()
        a.update(1.0)
        a.merge(OnlineStats())
        assert a.count == 1


class TestDiffStats:
    def test_short_series(self):
        assert diff_stats(np.array([])) == (0.0, 0.0)
        assert diff_stats(np.array([5.0])) == (0.0, 0.0)

    def test_linear_series_has_constant_diffs(self):
        mean, std = diff_stats(np.arange(10, dtype=float) * 2.0)
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.0)

    def test_matches_numpy_diff(self):
        series = np.array([1.0, 4.0, 2.0, 2.0, 8.0])
        mean, std = diff_stats(series)
        deltas = np.diff(series)
        assert mean == pytest.approx(deltas.mean())
        assert std == pytest.approx(deltas.std())


class TestEmpiricalCdf:
    def test_empty(self):
        values, fractions = empirical_cdf(np.array([]))
        assert values.size == 0 and fractions.size == 0

    def test_monotone_and_bounded(self):
        values, fractions = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert fractions[-1] == pytest.approx(1.0)
        assert np.all(np.diff(fractions) > 0)


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman(x, x**3) == pytest.approx(1.0)
        assert spearman(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_nan(self):
        assert np.isnan(spearman(np.ones(5), np.arange(5)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman(np.arange(3), np.arange(4))

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        rng = np.random.default_rng(0)
        x = rng.normal(size=40)
        y = x + rng.normal(size=40)
        expected = spearmanr(x, y).statistic
        assert spearman(x, y) == pytest.approx(expected, abs=1e-10)

    def test_ties_match_scipy(self):
        from scipy.stats import spearmanr

        x = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 0.0])
        y = np.array([4.0, 4.0, 4.0, 1.0, 2.0, 2.0])
        assert spearman(x, y) == pytest.approx(spearmanr(x, y).statistic, abs=1e-10)

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, xs):
        x = np.asarray(xs)
        y = np.asarray(xs)[::-1].copy()
        r = spearman(x, y)
        assert np.isnan(r) or -1.0 - 1e-9 <= r <= 1.0 + 1e-9
