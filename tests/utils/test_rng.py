"""Tests for hierarchical seeded random streams."""

import numpy as np

from repro.utils.rng import SeedSequenceFactory, child_rng


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        a = SeedSequenceFactory(7).generator("thermal")
        b = SeedSequenceFactory(7).generator("thermal")
        assert np.array_equal(a.random(8), b.random(8))

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(7)
        a = factory.generator("thermal").random(8)
        b = factory.generator("power").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeedSequenceFactory(1).generator("x").random(8)
        b = SeedSequenceFactory(2).generator("x").random(8)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Requesting streams in a different order must not change them."""
        f1 = SeedSequenceFactory(9)
        first = f1.generator("a").random(4)
        _ = f1.generator("b").random(4)
        f2 = SeedSequenceFactory(9)
        _ = f2.generator("b").random(4)
        second = f2.generator("a").random(4)
        assert np.array_equal(first, second)

    def test_indexed_streams(self):
        factory = SeedSequenceFactory(3)
        a = factory.generator("node", 0).random(4)
        b = factory.generator("node", 1).random(4)
        assert not np.array_equal(a, b)
        again = SeedSequenceFactory(3).generator("node", 0).random(4)
        assert np.array_equal(a, again)

    def test_spawn_namespaces(self):
        factory = SeedSequenceFactory(5)
        child = factory.spawn("sub")
        a = child.generator("x").random(4)
        b = factory.generator("x").random(4)
        assert not np.array_equal(a, b)
        again = SeedSequenceFactory(5).spawn("sub").generator("x").random(4)
        assert np.array_equal(a, again)

    def test_root_seed_property(self):
        assert SeedSequenceFactory(11).root_seed == 11


class TestChildRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert child_rng(gen) is gen

    def test_int_seed_deterministic(self):
        assert child_rng(5).random() == child_rng(5).random()

    def test_none_gives_generator(self):
        assert isinstance(child_rng(None), np.random.Generator)
