"""Tests for the shared hardened-IO helpers."""

import hashlib
import json

import pytest

from repro.utils.io import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)


class TestChecksums:
    def test_sha256_bytes_matches_hashlib(self):
        payload = b"some payload"
        assert sha256_bytes(payload) == hashlib.sha256(payload).hexdigest()

    def test_sha256_file_matches_bytes(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x01" * 5000)
        assert sha256_file(path) == sha256_bytes(b"\x00\x01" * 5000)


class TestAtomicWrite:
    def test_writes_via_temp_then_rename(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target) as tmp:
            tmp.write_bytes(b"hello")
            assert not target.exists()  # not committed yet
            assert tmp != target
        assert target.read_bytes() == b"hello"
        assert list(tmp_path.iterdir()) == [target]  # temp cleaned up

    def test_failure_leaves_no_file(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as tmp:
                tmp.write_bytes(b"partial")
                raise RuntimeError("writer crashed")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failure_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_bytes(target, b"old")
        with pytest.raises(RuntimeError):
            with atomic_write(target) as tmp:
                tmp.write_bytes(b"new")
                raise RuntimeError("writer crashed")
        assert target.read_bytes() == b"old"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "nested")
        assert target.read_text() == "nested"

    def test_json_is_sorted_and_round_trips(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}
