"""Tests for the fixed-capacity ring buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.errors import ValidationError
from repro.utils.ringbuffer import RingBuffer


class TestRingBuffer:
    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            RingBuffer(0)

    def test_empty(self):
        buf = RingBuffer(4)
        assert len(buf) == 0
        assert buf.last().size == 0
        assert buf.last(2).size == 0

    def test_append_below_capacity(self):
        buf = RingBuffer(4)
        buf.extend([1.0, 2.0, 3.0])
        assert len(buf) == 3
        assert list(buf.last()) == [1.0, 2.0, 3.0]

    def test_eviction_order(self):
        buf = RingBuffer(3)
        buf.extend([1, 2, 3, 4, 5])
        assert list(buf.last()) == [3.0, 4.0, 5.0]
        assert list(buf.last(2)) == [4.0, 5.0]

    def test_last_more_than_size(self):
        buf = RingBuffer(5)
        buf.extend([1, 2])
        assert list(buf.last(10)) == [1.0, 2.0]

    def test_clear(self):
        buf = RingBuffer(3)
        buf.extend([1, 2, 3])
        buf.clear()
        assert len(buf) == 0
        buf.append(9.0)
        assert list(buf.last()) == [9.0]

    def test_capacity_property(self):
        assert RingBuffer(7).capacity == 7

    @given(
        st.integers(min_value=1, max_value=10),
        st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_list_suffix(self, capacity, values):
        buf = RingBuffer(capacity)
        buf.extend(np.asarray(values, dtype=float))
        expected = [float(v) for v in values][-capacity:]
        assert list(buf.last()) == pytest.approx(expected)
        assert len(buf) == len(expected)
