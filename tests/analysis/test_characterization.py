"""Tests for the trace characterization analyses (paper Section III)."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    app_sbe_skew,
    cabinet_grids,
    offender_day_coverage,
    period_distributions,
    run_profile_pairs,
    utilization_correlations,
)
from repro.utils.errors import ValidationError


class TestCabinetGrids:
    def test_shapes(self, tiny_trace):
        grids = cabinet_grids(tiny_trace)
        shape = (
            tiny_trace.config.machine.grid_y,
            tiny_trace.config.machine.grid_x,
        )
        assert grids.offender_nodes.shape == shape
        assert grids.affected_apruns.shape == shape
        assert grids.mean_temperature.shape == shape
        assert grids.mean_power.shape == shape

    def test_offender_total_matches(self, tiny_trace):
        grids = cabinet_grids(tiny_trace)
        assert grids.offender_nodes.sum() == (tiny_trace.node_sbe_totals() > 0).sum()

    def test_nonuniform_offenders(self, tiny_trace):
        grids = cabinet_grids(tiny_trace)
        assert grids.offender_nodes.std() > 0

    def test_correlations_finite(self, tiny_trace):
        grids = cabinet_grids(tiny_trace)
        assert np.isfinite(grids.temp_sbe_spearman)
        assert -1 <= grids.temp_sbe_spearman <= 1


class TestAppSkew:
    def test_cumulative_share_valid(self, tiny_trace):
        skew = app_sbe_skew(tiny_trace)
        assert skew.cumulative_share[-1] == pytest.approx(1.0)
        assert np.all(np.diff(skew.cumulative_share) >= -1e-12)
        assert 0 < skew.top20_share <= 1.0

    def test_skew_is_heavy(self, tiny_trace):
        """A minority of apps should carry most SBEs."""
        skew = app_sbe_skew(tiny_trace)
        assert skew.top20_share > 0.4

    def test_affected_fraction_bounds(self, tiny_trace):
        skew = app_sbe_skew(tiny_trace)
        assert np.all(skew.affected_run_fraction >= 0)
        assert np.all(skew.affected_run_fraction <= 1)


class TestUtilizationCorrelations:
    def test_positive_correlations(self, tiny_trace):
        corr = utilization_correlations(tiny_trace)
        assert corr["core_hours"] > 0
        assert corr["memory"] > 0


class TestPeriodDistributions:
    def test_affected_hotter_and_hungrier(self, tiny_trace):
        dist = period_distributions(tiny_trace)
        assert dist.temp_elevation > 0
        assert dist.power_elevation > 0

    def test_population_sizes(self, tiny_trace):
        dist = period_distributions(tiny_trace)
        assert dist.temp_affected.size > 0
        assert dist.temp_free.size > dist.temp_affected.size


class TestDayCoverage:
    def test_fractions_valid(self, tiny_trace):
        coverage = offender_day_coverage(tiny_trace)
        assert coverage.size == (tiny_trace.node_sbe_totals() > 0).sum()
        assert np.all((coverage > 0) & (coverage <= 1))


class TestRunProfiles:
    def test_profiles_for_recorded_node(self, tiny_trace):
        node = tiny_trace.config.record_nodes[0]
        profiles = run_profile_pairs(tiny_trace, node, max_pairs=2)
        assert 1 <= len(profiles) <= 2
        for profile in profiles:
            assert profile["gpu_temp"].size > 0
            assert profile["minute"].size == profile["gpu_temp"].size
            assert profile["run_end"][0] > profile["run_start"][0]

    def test_unrecorded_node_rejected(self, tiny_trace):
        with pytest.raises(ValidationError):
            run_profile_pairs(tiny_trace, node_id=10_000)
