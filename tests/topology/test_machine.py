"""Tests for the vectorized machine topology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.location import NodeLocation
from repro.topology.machine import Machine, MachineConfig, TITAN_CONFIG
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def small_machine() -> Machine:
    return Machine(
        MachineConfig(
            grid_x=3, grid_y=2, cages_per_cabinet=2, slots_per_cage=2, nodes_per_slot=4
        )
    )


class TestMachineConfig:
    def test_titan_dimensions(self):
        assert TITAN_CONFIG.num_cabinets == 200
        assert TITAN_CONFIG.nodes_per_cabinet == 96
        assert TITAN_CONFIG.num_nodes == 19200

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(grid_x=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(nodes_per_slot=-1)

    def test_scaled(self):
        cfg = TITAN_CONFIG.scaled(nodes_per_slot=2, cages_per_cabinet=1)
        assert cfg.nodes_per_slot == 2
        assert cfg.cages_per_cabinet == 1
        assert cfg.grid_x == 25


class TestLocationMapping:
    def test_roundtrip_all_nodes(self, small_machine):
        for node_id in range(small_machine.num_nodes):
            loc = small_machine.location(node_id)
            assert small_machine.node_id(loc) == node_id

    def test_out_of_range(self, small_machine):
        with pytest.raises(ValueError):
            small_machine.location(small_machine.num_nodes)
        with pytest.raises(ValueError):
            small_machine.location(-1)
        with pytest.raises(ValueError):
            small_machine.node_id(NodeLocation(99, 0, 0, 0, 0))

    @given(st.integers(min_value=0))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_titan(self, raw):
        machine = Machine()
        node_id = raw % machine.num_nodes
        assert machine.node_id(machine.location(node_id)) == node_id


class TestNeighbours:
    def test_slot_peers(self, small_machine):
        peers = small_machine.slot_peers(0)
        assert list(peers) == [1, 2, 3]
        assert 5 not in peers

    def test_slot_peers_consistent_with_locations(self, small_machine):
        loc0 = small_machine.location(9)
        for peer in small_machine.slot_peers(9):
            assert loc0.same_slot(small_machine.location(int(peer)))

    def test_cage_peers(self, small_machine):
        peers = small_machine.cage_peers(0)
        assert peers.size == 2 * 4 - 1
        loc0 = small_machine.location(0)
        for peer in peers:
            assert loc0.same_cage(small_machine.location(int(peer)))

    def test_cabinet_of(self, small_machine):
        per_cab = small_machine.config.nodes_per_cabinet
        assert small_machine.cabinet_of(0) == (0, 0)
        assert small_machine.cabinet_of(per_cab) == (1, 0)
        assert small_machine.cabinet_of(3 * per_cab) == (0, 1)


class TestVectorizedViews:
    def test_views_are_readonly(self, small_machine):
        with pytest.raises(ValueError):
            small_machine.cabinet_x[0] = 7

    def test_cabinet_linear_consistent(self, small_machine):
        linear = small_machine.cabinet_linear
        expected = (
            small_machine.cabinet_y * small_machine.config.grid_x
            + small_machine.cabinet_x
        )
        assert np.array_equal(linear, expected)

    def test_cabinet_grid_sum(self, small_machine):
        values = np.ones(small_machine.num_nodes)
        grid = small_machine.cabinet_grid(values, reduce="sum")
        assert grid.shape == (2, 3)
        assert np.all(grid == small_machine.config.nodes_per_cabinet)

    def test_cabinet_grid_mean(self, small_machine):
        values = np.arange(small_machine.num_nodes, dtype=float)
        grid = small_machine.cabinet_grid(values, reduce="mean")
        per_cab = small_machine.config.nodes_per_cabinet
        assert grid[0, 0] == pytest.approx(np.arange(per_cab).mean())

    def test_cabinet_grid_validation(self, small_machine):
        with pytest.raises(ValueError):
            small_machine.cabinet_grid(np.ones(3))
        with pytest.raises(ValueError):
            small_machine.cabinet_grid(
                np.ones(small_machine.num_nodes), reduce="median"
            )

    def test_slot_means(self, small_machine):
        values = np.arange(small_machine.num_nodes, dtype=float)
        means = small_machine.slot_means(values)
        assert means[0] == pytest.approx(np.mean([0, 1, 2, 3]))
        assert means[0] == means[3]
        assert means[4] == pytest.approx(np.mean([4, 5, 6, 7]))

    def test_slot_group_matches_slot_peers(self, small_machine):
        group = small_machine.slot_group
        assert group[0] == group[3]
        assert group[0] != group[4]
