"""Tests for Cray-style node locations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.location import NodeLocation


class TestCname:
    def test_roundtrip_example(self):
        loc = NodeLocation(x=12, y=3, cage=1, slot=5, node=2)
        assert loc.cname() == "c12-3c1s5n2"
        assert NodeLocation.from_cname("c12-3c1s5n2") == loc

    def test_invalid_cnames(self):
        for bad in ("", "c1-2", "c1-2c3s4", "x1-2c3s4n5", "c1-2c3s4n5x"):
            with pytest.raises(ValueError):
                NodeLocation.from_cname(bad)

    @given(
        st.integers(0, 24),
        st.integers(0, 7),
        st.integers(0, 2),
        st.integers(0, 7),
        st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, x, y, cage, slot, node):
        loc = NodeLocation(x=x, y=y, cage=cage, slot=slot, node=node)
        assert NodeLocation.from_cname(loc.cname()) == loc


class TestRelations:
    def test_same_slot(self):
        a = NodeLocation(1, 2, 0, 3, 0)
        b = NodeLocation(1, 2, 0, 3, 3)
        c = NodeLocation(1, 2, 0, 4, 0)
        assert a.same_slot(b)
        assert not a.same_slot(c)

    def test_same_cage_and_cabinet(self):
        a = NodeLocation(1, 2, 0, 3, 0)
        b = NodeLocation(1, 2, 0, 7, 1)
        c = NodeLocation(1, 2, 1, 3, 0)
        d = NodeLocation(2, 2, 0, 3, 0)
        assert a.same_cage(b)
        assert not a.same_cage(c)
        assert a.same_cabinet(c)
        assert not a.same_cabinet(d)

    def test_cabinet_property(self):
        assert NodeLocation(4, 5, 0, 0, 0).cabinet == (4, 5)

    def test_ordering_is_total(self):
        a = NodeLocation(0, 0, 0, 0, 0)
        b = NodeLocation(0, 0, 0, 0, 1)
        assert a < b
