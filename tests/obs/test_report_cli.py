"""Snapshot persistence + the ``repro obs report`` / ``obs diff`` CLI."""

import json

import pytest

from repro.cli import main
from repro.obs import (
    MetricsRegistry,
    diff_snapshots,
    load_snapshot,
    render_diff,
    render_report,
    use_registry,
    write_snapshot,
)
from repro.utils.errors import ValidationError


def _registry(rows=10.0):
    registry = MetricsRegistry()
    registry.counter("repro_rows_total", "Rows.").inc(rows, shard="0:4")
    registry.histogram("repro_batch_rows", buckets=(16.0, 64.0)).observe(20.0)
    registry.event("tick", minute=5.0, rows=int(rows))
    return registry


class TestSnapshotFiles:
    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "snap.json"
        written = write_snapshot(path, _registry(), run={"preset": "tiny"})
        loaded = load_snapshot(path)
        assert loaded == written
        assert loaded["run"] == {"preset": "tiny"}

    def test_load_rejects_tampered_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, _registry())
        snapshot = json.loads(path.read_text())
        snapshot["metrics"][1]["samples"][0]["value"] = 999.0
        path.write_text(json.dumps(snapshot))
        with pytest.raises(ValidationError, match="digest mismatch"):
            load_snapshot(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no obs snapshot"):
            load_snapshot(tmp_path / "absent.json")


class TestRenderers:
    def test_report_lists_every_series_and_event(self):
        snapshot = _registry().snapshot()
        report = render_report(snapshot)
        assert "repro_rows_total" in report
        assert "shard=0:4" in report
        assert "count=1" in report  # histogram series line
        assert "tick" in report and "minute 5" in report

    def test_diff_flags_changed_and_missing_series(self):
        before = _registry(rows=10.0).snapshot()
        after_registry = _registry(rows=12.0)
        after_registry.counter("repro_new_total").inc()
        after = after_registry.snapshot()
        diffs = diff_snapshots(before, after)
        by_metric = {entry["metric"]: entry for entry in diffs}
        assert by_metric["repro_rows_total"]["before"] == 10.0
        assert by_metric["repro_rows_total"]["after"] == 12.0
        assert by_metric["repro_new_total"]["before"] is None
        assert "series differ" in render_diff(before, after)

    def test_diff_of_identical_snapshots_is_empty(self):
        snapshot = _registry().snapshot()
        assert diff_snapshots(snapshot, snapshot) == []
        assert "no series-level differences" in render_diff(
            snapshot, snapshot
        )


class TestObsCli:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        path = tmp_path / "snap.json"
        with use_registry(MetricsRegistry()):
            code = main(
                [
                    "--preset",
                    "tiny",
                    "--no-cache",
                    "--obs",
                    "on",
                    "--obs-snapshot",
                    str(path),
                    "simulate",
                    "--out",
                    str(tmp_path / "trace"),
                ]
            )
        assert code == 0
        return path

    def test_snapshot_flag_writes_a_loadable_snapshot(self, snapshot_path):
        snapshot = load_snapshot(snapshot_path)
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert "repro_sim_rows_total" in names
        assert snapshot["run"]["command"] == "simulate"

    def test_report_subcommand(self, snapshot_path, capsys):
        assert main(["obs", "report", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "repro_sim_rows_total" in out
        assert "digest:" in out

    def test_diff_subcommand_exit_codes(self, snapshot_path, capsys):
        same = main(
            ["obs", "diff", str(snapshot_path), str(snapshot_path)]
        )
        assert same == 0
        assert "no series-level differences" in capsys.readouterr().out

        other = snapshot_path.parent / "other.json"
        with use_registry(_registry()):
            write_snapshot(other, _registry())
        different = main(["obs", "diff", str(snapshot_path), str(other)])
        assert different == 1
        assert "series differ" in capsys.readouterr().out

    def test_report_on_missing_snapshot_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 1
        assert "repro: error:" in capsys.readouterr().err
