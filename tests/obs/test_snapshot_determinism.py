"""Same seed -> same obs snapshot digest, serial or sharded.

These are integration tests for invariant 2 of ``repro.obs.metrics``:
every metric derived from deterministic pipeline state is wall-excluded
or seed-stable, so a fresh registry observing the same run twice (or the
same run at different ``--jobs``) produces the same snapshot digest.
"""

import pytest

from repro.experiments.presets import preset_config
from repro.obs import MetricsRegistry, use_registry
from repro.parallel.simulate import simulate_trace_sharded
from repro.serve import serve_replay
from repro.telemetry.simulator import simulate_trace


@pytest.fixture(scope="module")
def tiny_config():
    return preset_config("tiny")


def _simulate_digest(config, *, shards=None, jobs=1):
    with use_registry(MetricsRegistry()) as registry:
        if shards is None:
            simulate_trace(config)
        else:
            simulate_trace_sharded(config, shards=shards, jobs=jobs)
        return registry.snapshot_digest()


class TestSimulateSnapshots:
    def test_same_seed_same_digest(self, tiny_config):
        assert _simulate_digest(tiny_config) == _simulate_digest(tiny_config)

    def test_jobs_parity(self, tiny_config):
        serial = _simulate_digest(tiny_config, shards=2, jobs=1)
        parallel = _simulate_digest(tiny_config, shards=2, jobs=2)
        assert serial == parallel

    def test_digest_tracks_run_content(self, tiny_config):
        one_shard = _simulate_digest(tiny_config, shards=1, jobs=1)
        two_shards = _simulate_digest(tiny_config, shards=2, jobs=1)
        assert one_shard != two_shards  # shard layout is run content


class TestServeReplaySnapshots:
    def test_same_seed_same_digest(self, tiny_trace, tiny_context, tmp_path):
        splits = tiny_context.preset_splits()
        digests = []
        for leg in range(2):
            with use_registry(MetricsRegistry()) as registry:
                serve_replay(
                    tiny_trace,
                    tmp_path / f"registry-{leg}",
                    splits=splits,
                    fast=True,
                    batch_size=64,
                )
                digests.append(registry.snapshot_digest())
        assert digests[0] == digests[1]
