"""Registry semantics: instruments, modes, snapshots, digests."""

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    SpanTracer,
    digest_view,
    get_registry,
    use_registry,
)
from repro.obs.metrics import SAMPLE_EVERY
from repro.utils.errors import ValidationError


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = MetricsRegistry().counter("repro_test_total")
        counter.inc()
        counter.inc(2.0)
        counter.inc(5.0, shard="a")
        assert counter.value() == 3.0
        assert counter.value(shard="a") == 5.0

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValidationError):
            counter.inc(-1.0)

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("repro_test_total")
        counter.inc(1.0, a="1", b="2")
        counter.inc(1.0, b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_depth")
        gauge.set(7.0)
        gauge.inc(3.0)
        gauge.dec()
        assert gauge.value() == 9.0


class TestHistogram:
    def test_observations_land_in_upper_inclusive_buckets(self):
        hist = MetricsRegistry().histogram(
            "repro_test_rows", buckets=(1.0, 10.0, 100.0)
        )
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count() == 5
        assert hist.sum() == 556.5
        series = hist.series_dicts()[0]
        assert series["bucket_counts"] == [2, 1, 1, 1]  # +overflow

    def test_quantile_is_monotone_and_positive(self):
        hist = MetricsRegistry().histogram(
            "repro_test_rows", buckets=DEFAULT_SIZE_BUCKETS
        )
        for value in (3, 5, 60, 200, 900):
            hist.observe(value)
        p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
        assert 0.0 < p50 <= p99

    def test_quantile_of_empty_series_is_zero(self):
        hist = MetricsRegistry().histogram("repro_test_rows")
        assert hist.quantile(0.5) == 0.0

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().histogram("repro_test_rows", buckets=(2.0, 1.0))


class TestRegistration:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") is registry.counter(
            "repro_x_total"
        )

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValidationError):
            registry.gauge("repro_x_total")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_x", buckets=(1.0, 2.0))
        with pytest.raises(ValidationError):
            registry.histogram("repro_x", buckets=(1.0, 3.0))


class TestModes:
    def test_off_mode_noops_everything(self):
        registry = MetricsRegistry(mode="off")
        registry.counter("repro_x_total").inc(5.0)
        registry.gauge("repro_y").set(3.0)
        registry.histogram("repro_z").observe(1.0)
        registry.event("boom", reason="test")
        assert registry.counter("repro_x_total").value() == 0.0
        assert registry.histogram("repro_z").count() == 0
        assert registry.events == []

    def test_sample_mode_thins_histograms_only(self):
        registry = MetricsRegistry(mode="sample")
        hist = registry.histogram("repro_z")
        for _ in range(2 * SAMPLE_EVERY):
            hist.observe(1.0)
        registry.counter("repro_x_total").inc(5.0)
        assert hist.count() == 2  # every SAMPLE_EVERY-th observation
        assert registry.counter("repro_x_total").value() == 5.0

    def test_unknown_mode_raises(self):
        with pytest.raises(ValidationError):
            MetricsRegistry(mode="loud")


class TestEvents:
    def test_events_are_sequenced_and_bounded(self):
        registry = MetricsRegistry(event_capacity=2)
        for i in range(3):
            registry.event("tick", minute=float(i), index=i)
        assert [record.seq for record in registry.events] == [1, 2]
        assert registry.events_dropped == 1


class TestSnapshot:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "help text").inc(2.0, shard="0:4")
        registry.event("tick", minute=5.0)
        snapshot = registry.snapshot(run={"command": "test"})
        assert snapshot["format"] == MetricsRegistry.SNAPSHOT_FORMAT
        assert snapshot["run"] == {"command": "test"}
        (metric,) = snapshot["metrics"]
        assert metric["name"] == "repro_x_total"
        assert metric["samples"] == [
            {"labels": {"shard": "0:4"}, "value": 2.0}
        ]
        (event,) = snapshot["events"]
        assert event["name"] == "tick" and event["minute"] == 5.0

    def test_digest_excludes_wall_metrics_and_mode(self):
        def build(mode, wall_value):
            registry = MetricsRegistry(mode=mode)
            registry.counter("repro_rows_total").inc(10.0)
            registry.counter("repro_seconds_total", wall=True).inc(wall_value)
            return registry

        a = build("on", 1.25).snapshot_digest()
        b = build("sample", 99.0).snapshot_digest()
        assert a == b

    def test_digest_changes_with_deterministic_content(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_rows_total").inc(10.0)
        b.counter("repro_rows_total").inc(11.0)
        assert a.snapshot_digest() != b.snapshot_digest()

    def test_wall_fields_excluded_from_digest(self):
        registry = MetricsRegistry()
        run_a = {"preset": "tiny", "jobs": 1, "wall_fields": ["jobs"]}
        run_b = {"preset": "tiny", "jobs": 4, "wall_fields": ["jobs"]}
        assert registry.snapshot_digest(run_a) == registry.snapshot_digest(
            run_b
        )
        view = digest_view(registry.snapshot(run_a))
        assert view["run"] == {"preset": "tiny"}


class TestDefaultRegistry:
    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh) as active:
            assert active is fresh
            assert get_registry() is fresh
        assert get_registry() is original


class TestSpanTracer:
    def test_virtual_clock_spans_are_deterministic(self):
        ticks = iter([0.0, 5.0, 5.0, 7.5])
        tracer = SpanTracer(clock=lambda: next(ticks))
        with tracer.span("simulate"):
            pass
        with tracer.span("sample"):
            pass
        assert tracer.seconds == {"simulate": 5.0, "sample": 2.5}
        assert tracer.counts == {"simulate": 1, "sample": 1}

    def test_imperative_start_switch_stop(self):
        # switch() reads the clock twice: once to close "a", once to
        # open "b".
        ticks = iter([0.0, 1.0, 1.0, 3.0])
        tracer = SpanTracer(clock=lambda: next(ticks))
        tracer.start("a")
        tracer.switch("b")
        tracer.stop()
        assert tracer.seconds == {"a": 1.0, "b": 2.0}

    def test_double_start_raises(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        tracer.start("a")
        with pytest.raises(RuntimeError):
            tracer.start("b")

    def test_merge_and_record_to(self):
        child = SpanTracer(clock=lambda: 0.0)
        child.add("simulate", 2.0)
        parent = SpanTracer(clock=lambda: 0.0)
        parent.add("simulate", 1.0)
        parent.merge(child)
        parent.merge({"collate": 0.5})
        registry = MetricsRegistry()
        parent.record_to(registry, component="sim", wall=False)
        seconds = registry.counter("repro_span_seconds_total")
        assert seconds.value(span="simulate", component="sim") == 3.0
        assert seconds.value(span="collate", component="sim") == 0.5
