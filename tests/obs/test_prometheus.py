"""Prometheus text exposition: format lines, escaping, determinism."""

from repro.obs import CONTENT_TYPE, MetricsRegistry, render_prometheus


def test_content_type_is_exposition_format_0_0_4():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_counter_renders_help_type_and_samples():
    registry = MetricsRegistry()
    registry.counter("repro_rows_total", "Rows processed.").inc(
        3.0, shard="0:4"
    )
    text = render_prometheus(registry)
    assert "# HELP repro_rows_total Rows processed.\n" in text
    assert "# TYPE repro_rows_total counter\n" in text
    assert 'repro_rows_total{shard="0:4"} 3\n' in text
    assert text.endswith("\n")


def test_untouched_instrument_renders_zero():
    registry = MetricsRegistry()
    registry.counter("repro_rows_total")
    assert "repro_rows_total 0\n" in render_prometheus(registry)


def test_label_value_escaping():
    registry = MetricsRegistry()
    registry.counter("repro_odd_total").inc(
        1.0, path='a\\b"c\nd'
    )
    text = render_prometheus(registry)
    assert 'path="a\\\\b\\"c\\nd"' in text


def test_histogram_renders_cumulative_buckets_sum_count():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_batch_rows", buckets=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        hist.observe(value)
    text = render_prometheus(registry)
    assert "# TYPE repro_batch_rows histogram\n" in text
    assert 'repro_batch_rows_bucket{le="1"} 1\n' in text
    assert 'repro_batch_rows_bucket{le="10"} 2\n' in text
    assert 'repro_batch_rows_bucket{le="+Inf"} 3\n' in text
    assert "repro_batch_rows_sum 55.5\n" in text
    assert "repro_batch_rows_count 3\n" in text


def test_two_scrapes_of_identical_registries_are_byte_identical():
    def build():
        registry = MetricsRegistry()
        registry.counter("repro_b_total").inc(2.0, z="1", a="2")
        registry.gauge("repro_a_depth").set(4.0)
        registry.histogram("repro_c", buckets=(1.0,)).observe(0.5)
        return render_prometheus(registry)

    assert build() == build()
