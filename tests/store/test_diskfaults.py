"""Disk-fault injector: determinism, detection, and write-time faults."""

from __future__ import annotations

import shutil

import pytest

from repro.store import (
    DISK_FAULT_KINDS,
    DiskFaultSpec,
    SegmentedTraceStore,
    WriteFaultPlan,
    inject_disk_fault,
    simulate_trace_to_store,
    store_trace_digest,
)
from repro.utils.errors import (
    SimulatedCrashError,
    TraceIOError,
    ValidationError,
)


@pytest.mark.parametrize("kind", DISK_FAULT_KINDS)
class TestPostHocFaults:
    def test_fault_is_detected_by_verify(self, kind, store_copy):
        event = inject_disk_fault(store_copy, DiskFaultSpec(kind, seed=3))
        statuses = SegmentedTraceStore(store_copy.root).verify()
        broken = [s for s in statuses if s.status != "ok"]
        assert len(broken) == 1
        assert broken[0].index == event.segment

    def test_fault_heals_to_serial_digest(self, kind, store_copy, serial_digest):
        inject_disk_fault(store_copy, DiskFaultSpec(kind, seed=3))
        with pytest.warns(UserWarning):
            digest = store_trace_digest(SegmentedTraceStore(store_copy.root))
        assert digest == serial_digest

    def test_same_spec_is_deterministic(
        self, kind, pristine_store_dir, tmp_path
    ):
        events = []
        for name in ("a", "b"):
            root = tmp_path / name
            shutil.copytree(pristine_store_dir, root)
            events.append(
                inject_disk_fault(
                    SegmentedTraceStore(root), DiskFaultSpec(kind, seed=11)
                )
            )
        assert events[0].segment == events[1].segment
        assert events[0].detail == events[1].detail


class TestSpecValidation:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValidationError, match="unknown disk fault kind"):
            DiskFaultSpec("gremlins")

    def test_write_kinds_are_not_post_hoc_kinds(self):
        with pytest.raises(ValidationError):
            DiskFaultSpec("enospc")
        with pytest.raises(ValidationError, match="unknown write fault kind"):
            WriteFaultPlan("torn")

    def test_fraction_range(self):
        with pytest.raises(ValidationError, match="fraction"):
            DiskFaultSpec("torn", fraction=1.5)

    def test_segment_out_of_range(self, store_copy):
        with pytest.raises(ValidationError, match="out of range"):
            inject_disk_fault(store_copy, DiskFaultSpec("torn", segment=99))


class TestWriteTimeFaults:
    def test_enospc_leaves_no_committed_segment(
        self, store_config, serial_digest, tmp_path
    ):
        root = tmp_path / "enospc"
        with pytest.raises(TraceIOError, match="No space left on device"):
            simulate_trace_to_store(
                store_config,
                root,
                segments=4,
                write_fault=WriteFaultPlan("enospc", segment=1),
            )
        # Atomicity: neither the victim's committed name nor a temp file.
        assert not (root / "seg-0001.npz").exists()
        assert not list(root.glob("*.tmp*"))
        store = simulate_trace_to_store(
            store_config, root, segments=4, resume=True
        )
        assert store_trace_digest(store) == serial_digest

    def test_torn_commit_is_caught_on_resume(
        self, store_config, serial_digest, tmp_path
    ):
        root = tmp_path / "torn-commit"
        with pytest.raises(SimulatedCrashError):
            simulate_trace_to_store(
                store_config,
                root,
                segments=4,
                write_fault=WriteFaultPlan("torn_commit", segment=1),
            )
        # The journal believes segment 1 committed, but its bytes are
        # short; resume must re-verify checksums and re-simulate it.
        store = simulate_trace_to_store(
            store_config, root, segments=4, resume=True
        )
        assert store_trace_digest(store) == serial_digest
