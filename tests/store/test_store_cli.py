"""``repro store`` subcommands and the top-level ``--strict`` flag."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.store import SegmentedTraceStore


@pytest.fixture(scope="module")
def cli_store(tmp_path_factory) -> str:
    """One tiny-preset store built through the CLI itself."""
    root = tmp_path_factory.mktemp("cli") / "store"
    assert (
        main(
            [
                "--preset",
                "tiny",
                "store",
                "simulate",
                "--out",
                str(root),
                "--segments",
                "4",
            ]
        )
        == 0
    )
    return str(root)


class TestStoreCli:
    def test_simulate_commits_a_manifest(self, cli_store):
        assert SegmentedTraceStore(cli_store).is_committed

    def test_verify_ok_exits_zero(self, cli_store, capsys):
        assert main(["store", "verify", "--store", cli_store]) == 0
        assert "0 broken" in capsys.readouterr().out

    def test_digest_prints_hex(self, cli_store, capsys):
        assert main(["store", "digest", "--store", cli_store]) == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64
        int(digest, 16)

    def test_inject_verify_recover_cycle(self, cli_store, capsys):
        assert main(["store", "digest", "--store", cli_store]) == 0
        before = capsys.readouterr().out.strip()

        assert (
            main(
                [
                    "store",
                    "inject",
                    "--store",
                    cli_store,
                    "--kind",
                    "bitflip",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        assert "bitflip fault" in capsys.readouterr().out
        assert main(["store", "verify", "--store", cli_store]) == 1
        assert "1 broken" in capsys.readouterr().out

        # Strict: typed error, exit 1, no healing.
        assert main(["--strict", "store", "digest", "--store", cli_store]) == 1
        assert "checksum mismatch" in capsys.readouterr().err
        assert main(["store", "verify", "--store", cli_store]) == 1
        capsys.readouterr()

        with pytest.warns(UserWarning, match="re-simulating span"):
            assert main(["store", "recover", "--store", cli_store]) == 0
        assert "recovered" in capsys.readouterr().out
        assert main(["store", "verify", "--store", cli_store]) == 0
        capsys.readouterr()

        assert main(["store", "digest", "--store", cli_store]) == 0
        assert capsys.readouterr().out.strip() == before

    def test_features_reports_shape(self, cli_store, capsys):
        assert main(["store", "features", "--store", cli_store]) == 0
        out = capsys.readouterr().out
        assert "rows x" in out and "4 segment(s)" in out

    def test_crash_hook_exits_nonzero_then_resume_succeeds(
        self, tmp_path, capsys
    ):
        root = tmp_path / "crashy"
        code = main(
            [
                "--preset",
                "tiny",
                "store",
                "simulate",
                "--out",
                str(root),
                "--segments",
                "4",
                "--crash-after-segments",
                "1",
            ]
        )
        assert code == 1
        assert "simulated crash after 1 segments" in capsys.readouterr().err
        assert not SegmentedTraceStore(root).is_committed
        assert (
            main(
                [
                    "--preset",
                    "tiny",
                    "store",
                    "simulate",
                    "--out",
                    str(root),
                    "--segments",
                    "4",
                    "--resume",
                ]
            )
            == 0
        )
        assert SegmentedTraceStore(root).is_committed
