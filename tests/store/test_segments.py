"""Segmented store format, commit protocol, journal, and recovery."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.store import (
    DiskFaultSpec,
    SegmentedTraceStore,
    inject_disk_fault,
    simulate_trace_to_store,
    store_trace_digest,
)
from repro.store.segments import MANIFEST_NAME, STORE_FORMAT
from repro.utils.errors import (
    DegradedDataWarning,
    SegmentCorruptionError,
    SimulatedCrashError,
    TraceIOError,
    ValidationError,
)

from tests.golden.canonical import trace_digest


class TestRoundtrip:
    def test_load_trace_is_bit_identical_to_serial(
        self, store_copy, serial_digest
    ):
        assert trace_digest(store_copy.load_trace()) == serial_digest

    def test_streamed_digest_matches_serial(self, store_copy, serial_digest):
        assert store_trace_digest(store_copy) == serial_digest

    def test_manifest_records_every_segment(self, store_copy, serial_trace):
        entries = store_copy.entries()
        assert len(entries) == store_copy.num_segments
        assert store_copy.num_samples == serial_trace.num_samples
        assert [e["index"] for e in entries] == list(range(len(entries)))
        for entry in entries:
            assert set(entry) >= {
                "index",
                "lo",
                "hi",
                "file",
                "checksum",
                "num_samples",
            }

    def test_manifest_format_is_pinned(self, store_copy):
        raw = json.loads(store_copy.manifest_path.read_text())
        assert raw["format"] == STORE_FORMAT

    def test_config_roundtrips_through_manifest(self, store_copy, store_config):
        assert store_copy.config() == store_config

    def test_row_layout_is_a_permutation(self, store_copy, serial_trace):
        total, dests = store_copy.row_layout()
        assert total == serial_trace.num_samples
        stacked = np.concatenate(dests)
        assert np.array_equal(np.sort(stacked), np.arange(total))

    def test_iter_shard_results_covers_all_rows(self, store_copy):
        seen = 0
        for index, result in store_copy.iter_shard_results():
            seen += sum(
                next(iter(block.values())).shape[0] for _, block in result.blocks
            )
        assert seen == store_copy.num_samples

    def test_jobs_parallel_store_is_identical(
        self, store_config, serial_digest, tmp_path
    ):
        store = simulate_trace_to_store(
            store_config, tmp_path / "par", segments=4, jobs=2
        )
        assert store_trace_digest(store) == serial_digest


class TestCommitProtocol:
    def test_manifest_written_last(self, store_config, tmp_path):
        root = tmp_path / "crash"
        with pytest.raises(SimulatedCrashError):
            simulate_trace_to_store(
                store_config, root, segments=4, crash_after_segments=2
            )
        # Segments and journal are durable; the commit point is not.
        assert not (root / MANIFEST_NAME).exists()
        assert not SegmentedTraceStore(root).is_committed
        assert sorted(p.name for p in root.glob("seg-*.npz")) == [
            "seg-0000.npz",
            "seg-0001.npz",
        ]

    def test_kill_and_resume_is_bit_identical(
        self, store_config, serial_digest, tmp_path
    ):
        root = tmp_path / "resume"
        with pytest.raises(SimulatedCrashError) as excinfo:
            simulate_trace_to_store(
                store_config, root, segments=4, crash_after_segments=1
            )
        assert excinfo.value.unit == "segments"
        store = simulate_trace_to_store(
            store_config, root, segments=4, resume=True
        )
        assert store.is_committed
        assert store_trace_digest(store) == serial_digest

    def test_resume_keeps_committed_segments(self, store_config, tmp_path):
        root = tmp_path / "keep"
        with pytest.raises(SimulatedCrashError):
            simulate_trace_to_store(
                store_config, root, segments=4, crash_after_segments=1
            )
        before = (root / "seg-0000.npz").stat().st_mtime_ns
        simulate_trace_to_store(store_config, root, segments=4, resume=True)
        assert (root / "seg-0000.npz").stat().st_mtime_ns == before

    def test_resume_refuses_incompatible_journal(self, store_config, tmp_path):
        root = tmp_path / "mismatch"
        with pytest.raises(SimulatedCrashError):
            simulate_trace_to_store(
                store_config, root, segments=4, crash_after_segments=1
            )
        other = replace(store_config, seed=store_config.seed + 1)
        with pytest.raises(ValidationError, match="refusing to resume"):
            simulate_trace_to_store(other, root, segments=4, resume=True)

    def test_fresh_run_discards_previous_segments(
        self, store_config, serial_digest, tmp_path
    ):
        root = tmp_path / "fresh"
        with pytest.raises(SimulatedCrashError):
            simulate_trace_to_store(
                store_config, root, segments=4, crash_after_segments=1
            )
        store = simulate_trace_to_store(store_config, root, segments=4)
        assert store_trace_digest(store) == serial_digest


class TestRecovery:
    def test_corrupt_segment_heals_to_identical_content(
        self, store_copy, serial_digest
    ):
        inject_disk_fault(store_copy, DiskFaultSpec("bitflip", seed=5, segment=2))
        with pytest.warns(DegradedDataWarning, match="re-simulating span"):
            trace = store_copy.load_trace()
        assert trace_digest(trace) == serial_digest

    def test_damaged_file_is_quarantined(self, store_copy):
        inject_disk_fault(store_copy, DiskFaultSpec("torn", seed=1, segment=1))
        with pytest.warns(DegradedDataWarning):
            store_copy.recover()
        quarantined = list(store_copy.quarantine_path.iterdir())
        assert [p.name for p in quarantined] == ["seg-0001.npz.0"]

    def test_strict_mode_raises_typed_error(self, store_copy):
        inject_disk_fault(store_copy, DiskFaultSpec("bitflip", seed=5, segment=2))
        with pytest.raises(SegmentCorruptionError) as excinfo:
            store_copy.load_trace(strict=True)
        assert excinfo.value.index == 2
        message = str(excinfo.value)
        # Satellite contract: mismatch reports expected AND actual digests
        # plus the offending path.
        assert "expected" in message and "actual" in message
        assert "seg-0002.npz" in message

    def test_recover_rewrites_manifest_checksum(self, store_copy):
        inject_disk_fault(store_copy, DiskFaultSpec("torn", seed=1, segment=1))
        with pytest.warns(DegradedDataWarning):
            statuses = store_copy.recover()
        assert [s.status for s in statuses] == ["ok", "recovered", "ok", "ok"]
        # The healed npz need not be byte-identical (zip metadata varies;
        # only array *content* is pinned), but the manifest must agree
        # with the bytes actually on disk.
        reopened = SegmentedTraceStore(store_copy.root)
        assert all(s.status == "ok" for s in reopened.verify())

    def test_missing_manifest_is_a_trace_io_error(self, store_copy):
        store_copy.manifest_path.unlink()
        fresh = SegmentedTraceStore(store_copy.root)
        with pytest.raises(TraceIOError, match="unreadable store manifest"):
            fresh.manifest()

    def test_unsupported_format_is_rejected(self, store_copy):
        raw = json.loads(store_copy.manifest_path.read_text())
        raw["format"] = STORE_FORMAT + 1
        store_copy.manifest_path.write_text(json.dumps(raw))
        fresh = SegmentedTraceStore(store_copy.root)
        with pytest.raises(TraceIOError, match="unsupported store format"):
            fresh.manifest()


class TestMonolithicChecksumMessage:
    def test_trace_load_reports_expected_and_actual(self, serial_trace, tmp_path):
        path = tmp_path / "trace"
        serial_trace.save(path)
        npz = path.with_suffix(".npz")
        npz.write_bytes(npz.read_bytes()[:-7])
        with pytest.raises(TraceIOError) as excinfo:
            __import__("repro.telemetry.trace", fromlist=["Trace"]).Trace.load(path)
        message = str(excinfo.value)
        assert "expected" in message and "actual" in message
        assert str(npz) in message
