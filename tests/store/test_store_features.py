"""Out-of-core feature building must be bit-identical to the batch path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.builder import build_features, build_features_from_store
from repro.store import DiskFaultSpec, inject_disk_fault
from repro.utils.errors import DegradedDataWarning, SegmentCorruptionError

from tests.golden.canonical import features_digest


@pytest.fixture(scope="module")
def batch_digest(serial_trace) -> str:
    return features_digest(build_features(serial_trace))


class TestStreamingParity:
    def test_store_features_match_batch_digest(self, store_copy, batch_digest):
        streamed = build_features_from_store(store_copy)
        assert features_digest(streamed) == batch_digest

    def test_schema_and_shapes_match_batch(self, store_copy, serial_trace):
        batch = build_features(serial_trace)
        streamed = build_features_from_store(store_copy)
        assert streamed.schema.names == batch.schema.names
        assert streamed.schema.tags == batch.schema.tags
        assert streamed.X.shape == batch.X.shape
        assert np.array_equal(streamed.y, batch.y)
        for name in batch.meta:
            assert streamed.meta[name].dtype == batch.meta[name].dtype

    def test_alternate_top_k_matches_batch(self, store_copy, serial_trace):
        batch = build_features(serial_trace, top_k_apps=5)
        streamed = build_features_from_store(store_copy, top_k_apps=5)
        assert features_digest(streamed) == features_digest(batch)


class TestDegradedStores:
    def test_damaged_store_heals_then_builds_identically(
        self, store_copy, batch_digest
    ):
        inject_disk_fault(store_copy, DiskFaultSpec("torn", seed=9, segment=0))
        with pytest.warns(DegradedDataWarning):
            streamed = build_features_from_store(store_copy)
        assert features_digest(streamed) == batch_digest

    def test_strict_mode_raises_instead_of_healing(self, store_copy):
        inject_disk_fault(store_copy, DiskFaultSpec("torn", seed=9, segment=0))
        with pytest.raises(SegmentCorruptionError):
            build_features_from_store(store_copy, strict=True)
