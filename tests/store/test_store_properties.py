"""Property: corruption always heals bit-identically or fails typed.

For *any* single-segment fault (kind × seed × victim), exactly two
outcomes are allowed:

- non-strict: the store heals and reproduces the serial digest bit for
  bit, under a :class:`DegradedDataWarning`;
- strict: a typed :class:`SegmentCorruptionError` is raised.

There is no third outcome — never a silently wrong digest, never an
untyped exception.  Hypothesis sweeps the fault space; the ``ci``
profile (derandomized) keeps the sweep reproducible.
"""

from __future__ import annotations

import shutil
import warnings

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.store import (
    DISK_FAULT_KINDS,
    DiskFaultSpec,
    SegmentedTraceStore,
    inject_disk_fault,
    store_trace_digest,
)
from repro.utils.errors import DegradedDataWarning, SegmentCorruptionError

from tests.store.conftest import STORE_SEGMENTS


@given(
    kind=st.sampled_from(DISK_FAULT_KINDS),
    seed=st.integers(min_value=0, max_value=999),
    segment=st.one_of(
        st.none(), st.integers(min_value=0, max_value=STORE_SEGMENTS - 1)
    ),
    strict=st.booleans(),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_single_segment_corruption_heals_or_fails_typed(
    kind,
    seed,
    segment,
    strict,
    pristine_store_dir,
    serial_digest,
    tmp_path_factory,
):
    root = tmp_path_factory.mktemp("prop") / "store"
    try:
        shutil.copytree(pristine_store_dir, root)
        store = SegmentedTraceStore(root)
        inject_disk_fault(store, DiskFaultSpec(kind, seed=seed, segment=segment))

        if strict:
            with pytest.raises(SegmentCorruptionError):
                store_trace_digest(store, strict=True)
            return
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedDataWarning)
            digest = store_trace_digest(store)
        assert digest == serial_digest, (
            f"fault ({kind}, seed={seed}, segment={segment}) healed to a "
            "different digest: recovery is not bit-identical"
        )
    finally:
        shutil.rmtree(root.parent, ignore_errors=True)
