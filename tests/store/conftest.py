"""Fixtures for the segmented-store suite.

One pristine store (and the matching serial trace digest) is built per
session from a shortened canonical config; destructive tests damage a
per-test *copy*, so recovery work re-simulates a single 1-day span
rather than a whole trace.
"""

from __future__ import annotations

import shutil
from dataclasses import replace
from pathlib import Path

import pytest

from repro.store import SegmentedTraceStore, simulate_trace_to_store
from repro.telemetry.config import TraceConfig
from repro.telemetry.simulator import TraceSimulator
from repro.telemetry.trace import Trace

from tests.golden.canonical import canonical_config, trace_digest

#: Segments the pristine store is cut into (= the mini machine's rows).
STORE_SEGMENTS = 4


@pytest.fixture(scope="session")
def store_config() -> TraceConfig:
    """Canonical golden config shortened to 4 days (fast re-simulation)."""
    return replace(canonical_config(2018), duration_days=4.0)


@pytest.fixture(scope="session")
def serial_trace(store_config: TraceConfig) -> Trace:
    """The serial reference trace for :func:`store_config`."""
    return TraceSimulator(store_config).run()


@pytest.fixture(scope="session")
def serial_digest(serial_trace: Trace) -> str:
    """Content digest of the serial reference trace."""
    return trace_digest(serial_trace)


@pytest.fixture(scope="session")
def pristine_store_dir(
    store_config: TraceConfig, tmp_path_factory: pytest.TempPathFactory
) -> Path:
    """A committed, undamaged store; treat as read-only."""
    root = tmp_path_factory.mktemp("store") / "pristine"
    simulate_trace_to_store(store_config, root, segments=STORE_SEGMENTS)
    return root


@pytest.fixture()
def store_copy(pristine_store_dir: Path, tmp_path: Path) -> SegmentedTraceStore:
    """A disposable copy of the pristine store for destructive tests."""
    root = tmp_path / "store"
    shutil.copytree(pristine_store_dir, root)
    return SegmentedTraceStore(root)
