"""Shared fixtures: a tiny simulated trace and derived artifacts.

The tiny preset (96 nodes, 16 days, hot error model) simulates in a few
seconds; everything expensive is session-scoped so the suite pays for it
once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings

    # Pinned CI profile: derandomized (the seed derives from each test's
    # signature, not from machine entropy) with an extended deadline, so
    # property tests cannot flake on a loaded CI box.  Opt in with
    # HYPOTHESIS_PROFILE=ci (tools/ci.sh exports it).
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=2000,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis is optional
    pass

from repro.experiments.presets import preset_config
from repro.experiments.runner import ExperimentContext
from repro.features.builder import FeatureMatrix, build_features
from repro.telemetry.simulator import simulate_trace
from repro.telemetry.trace import Trace


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """One simulated tiny trace shared by the whole suite."""
    return simulate_trace(preset_config("tiny"))


@pytest.fixture(scope="session")
def tiny_features(tiny_trace: Trace) -> FeatureMatrix:
    """Feature matrix of the tiny trace."""
    return build_features(tiny_trace)


@pytest.fixture(scope="session")
def tiny_context(tiny_trace: Trace) -> ExperimentContext:
    """Experiment context pre-seeded with the shared tiny trace."""
    context = ExperimentContext("tiny", use_disk_cache=False)
    context._trace = tiny_trace  # reuse the session trace
    return context


@pytest.fixture(scope="session")
def binary_dataset() -> tuple[np.ndarray, np.ndarray]:
    """A nonlinear, mildly imbalanced binary classification problem."""
    rng = np.random.default_rng(42)
    n = 3000
    X = rng.normal(size=(n, 6))
    score = (
        np.sin(2 * X[:, 0])
        + X[:, 1] * X[:, 2]
        - 0.4 * X[:, 3] ** 2
        + 0.3 * rng.normal(size=n)
    )
    y = (score > -0.3).astype(int)
    return X, y
