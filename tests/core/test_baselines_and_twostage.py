"""Tests for the basic schemes and the TwoStage predictor."""

import numpy as np
import pytest

from repro.core.baselines import BasicA, BasicB, BasicC, RandomBaseline
from repro.core.twostage import TwoStagePredictor
from repro.features.splits import make_paper_splits
from repro.utils.errors import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def split_features(tiny_features):
    """Train/test features on the tiny trace's first split."""
    from repro.experiments.presets import split_plan

    plan = split_plan("tiny")
    splits = make_paper_splits(
        train_days=plan["train_days"],
        test_days=plan["test_days"],
        offsets_days=tuple(plan["offsets"]),
    )
    starts = tiny_features.meta["start_minute"]
    train = tiny_features.rows(splits[0].train_mask(starts))
    test = tiny_features.rows(splits[0].test_mask(starts))
    return train, test


class TestRandomBaseline:
    def test_half_positive(self, split_features):
        train, test = split_features
        pred = RandomBaseline(random_state=0).fit(train).predict(test)
        assert 0.4 < pred.mean() < 0.6


class TestBasicA:
    def test_predicts_only_offender_nodes(self, split_features):
        train, test = split_features
        scheme = BasicA().fit(train)
        pred = scheme.predict(test)
        offender_nodes = scheme.offender_nodes
        assert offender_nodes
        on_offender = np.isin(test.meta["node_id"], sorted(offender_nodes))
        assert np.array_equal(pred.astype(bool), on_offender)

    def test_high_recall(self, split_features):
        from repro.ml.metrics import recall_score

        train, test = split_features
        pred = BasicA().fit(train).predict(test)
        assert recall_score(test.y, pred) > 0.7

    def test_not_fitted(self, split_features):
        _, test = split_features
        with pytest.raises(NotFittedError):
            BasicA().predict(test)


class TestBasicBC:
    def test_basic_b_covers_more_than_basic_c(self, split_features):
        train, test = split_features
        pred_b = BasicB().fit(train).predict(test)
        pred_c = BasicC().fit(train).predict(test)
        assert pred_b.sum() >= pred_c.sum()

    def test_basic_c_top_fraction_validation(self):
        with pytest.raises(ValidationError):
            BasicC(top_fraction=0.0)
        with pytest.raises(ValidationError):
            BasicC(top_fraction=1.0)

    def test_basic_c_empty_training_errors(self, split_features):
        train, test = split_features
        none_erred = train.rows(train.meta["sbe_count"] == 0)
        scheme = BasicC().fit(none_erred)
        assert scheme.predict(test).sum() == 0


class TestTwoStage:
    def test_stage1_filters(self, split_features):
        train, test = split_features
        predictor = TwoStagePredictor("gbdt", random_state=0, fast=True).fit(train)
        mask = predictor.stage1_pass_mask(test)
        pred = predictor.predict(test)
        # Stage-1 rejected samples are always predicted negative.
        assert pred[~mask].sum() == 0

    def test_offender_nodes_match_training(self, split_features):
        train, _ = split_features
        predictor = TwoStagePredictor("lr", random_state=0, fast=True).fit(train)
        erred = np.unique(train.meta["node_id"][train.meta["sbe_count"] > 0])
        assert np.array_equal(predictor.offender_nodes, erred)

    def test_beats_basic_a_f1(self, split_features):
        from repro.ml.metrics import f1_score

        train, test = split_features
        predictor = TwoStagePredictor("gbdt", random_state=0).fit(train)
        basic = BasicA().fit(train)
        assert f1_score(test.y, predictor.predict(test)) > f1_score(
            test.y, basic.predict(test)
        )

    def test_proba_bounds_and_threshold(self, split_features):
        train, test = split_features
        predictor = TwoStagePredictor("lr", random_state=0, fast=True).fit(train)
        proba = predictor.predict_proba(test)
        assert np.all((proba >= 0) & (proba <= 1))
        assert np.array_equal(predictor.predict(test), (proba >= 0.5).astype(int))

    def test_feature_selection_respected(self, split_features):
        train, _ = split_features
        predictor = TwoStagePredictor(
            "lr", include={"hist"}, random_state=0, fast=True
        ).fit(train)
        assert all(name.startswith("hist_") for name in predictor.feature_names)

    def test_custom_model_instance(self, split_features):
        from repro.ml import LogisticRegression

        train, test = split_features
        predictor = TwoStagePredictor(
            LogisticRegression(epochs=5, class_weight="balanced", random_state=0)
        ).fit(train)
        assert predictor.predict(test).shape == (test.num_samples,)

    def test_no_offenders_raises(self, split_features):
        train, _ = split_features
        clean = train.rows(train.meta["sbe_count"] == 0)
        with pytest.raises(ValidationError):
            TwoStagePredictor("lr", fast=True).fit(clean)

    def test_not_fitted(self, split_features):
        _, test = split_features
        with pytest.raises(NotFittedError):
            TwoStagePredictor("lr").predict(test)

    def test_stage2_class_balance_improves(self, split_features):
        """Stage 1 must dramatically raise the positive fraction (the
        paper: ~50:1 becomes ~2:1)."""
        train, _ = split_features
        predictor = TwoStagePredictor("lr", random_state=0, fast=True).fit(train)
        stage2 = train.rows(np.isin(train.meta["node_id"], predictor.offender_nodes))
        assert stage2.y.mean() > 3 * train.y.mean()
