"""Tests for the oracle-per-cabinet analysis and the PR threshold sweep."""

import numpy as np
import pytest

from repro.core.evaluation import oracle_model_analysis, precision_recall_curve
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def model_results(tiny_context):
    return {
        name: tiny_context.twostage("DS1", name, random_state=0)
        for name in ("lr", "gbdt")
    }


class TestOracle:
    def test_oracle_at_least_best_global(self, model_results, tiny_context):
        analysis = oracle_model_analysis(model_results, tiny_context.trace.machine)
        best = max(analysis["global_f1"].values())
        assert analysis["oracle_f1"] >= best - 1e-9
        assert analysis["oracle_gain"] >= -1e-9

    def test_winners_are_known_models(self, model_results, tiny_context):
        analysis = oracle_model_analysis(model_results, tiny_context.trace.machine)
        assert set(analysis["winning_model_per_cabinet"].values()) <= {"lr", "gbdt"}

    def test_empty_results_rejected(self, tiny_context):
        with pytest.raises(ValidationError):
            oracle_model_analysis({}, tiny_context.trace.machine)

    def test_mismatched_windows_rejected(self, model_results, tiny_context):
        import dataclasses

        bad = dict(model_results)
        lr = bad["lr"]
        bad["lr"] = dataclasses.replace(lr, y_true=1 - lr.y_true)
        with pytest.raises(ValidationError):
            oracle_model_analysis(bad, tiny_context.trace.machine)


class TestPrecisionRecallCurve:
    def test_threshold_zero_full_recall(self):
        y = np.array([0, 1, 1, 0, 1])
        proba = np.array([0.1, 0.9, 0.4, 0.2, 0.6])
        curve = precision_recall_curve(y, proba, num_thresholds=10)
        assert curve["recall"][0] == pytest.approx(1.0)

    def test_recall_nonincreasing(self):
        rng = np.random.default_rng(0)
        proba = rng.random(500)
        y = (rng.random(500) < proba).astype(int)
        curve = precision_recall_curve(y, proba, num_thresholds=30)
        assert np.all(np.diff(curve["recall"]) <= 1e-12)

    def test_f1_consistent(self):
        rng = np.random.default_rng(1)
        proba = rng.random(200)
        y = (rng.random(200) < proba).astype(int)
        curve = precision_recall_curve(y, proba, num_thresholds=20)
        p, r, f1 = curve["precision"], curve["recall"], curve["f1"]
        mask = (p + r) > 0
        assert np.allclose(f1[mask], 2 * p[mask] * r[mask] / (p[mask] + r[mask]))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            precision_recall_curve(np.array([0, 1]), np.array([0.5]))
