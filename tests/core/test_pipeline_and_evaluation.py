"""Tests for the pipeline, evaluation helpers, ECC policy, and registry."""

import numpy as np
import pytest

from repro.core.ecc import EccPolicySimulator
from repro.core.evaluation import (
    cabinet_prediction_error,
    prediction_cdfs,
    runtime_class_report,
    severity_level_report,
)
from repro.core.pipeline import PredictionPipeline
from repro.core.registry import MODEL_NAMES, make_model, needs_scaling
from repro.features.splits import make_paper_splits
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def pipeline(tiny_features):
    from repro.experiments.presets import split_plan

    plan = split_plan("tiny")
    splits = make_paper_splits(
        train_days=plan["train_days"],
        test_days=plan["test_days"],
        offsets_days=tuple(plan["offsets"]),
    )
    return PredictionPipeline(tiny_features, splits)


@pytest.fixture(scope="module")
def gbdt_result(pipeline):
    return pipeline.evaluate_twostage("DS1", "gbdt", fast=True)


class TestRegistry:
    def test_all_models_constructible(self):
        for name in MODEL_NAMES:
            model = make_model(name, random_state=0, fast=True)
            assert hasattr(model, "fit")

    def test_unknown_model(self):
        with pytest.raises(ValidationError):
            make_model("xgboost")
        with pytest.raises(ValidationError):
            needs_scaling("xgboost")

    def test_scaling_flags(self):
        assert needs_scaling("lr") and needs_scaling("svm") and needs_scaling("nn")
        assert not needs_scaling("gbdt")


class TestPipeline:
    def test_split_lookup(self, pipeline):
        assert pipeline.split("DS1").name == "DS1"
        with pytest.raises(ValidationError):
            pipeline.split("DS9")

    def test_train_test_windows_disjoint(self, pipeline):
        train, test = pipeline.train_test("DS1")
        assert train.meta["start_minute"].max() < test.meta["start_minute"].min() + 1e9
        assert train.num_samples > test.num_samples

    def test_evaluate_basic_all_schemes(self, pipeline):
        for scheme in PredictionPipeline.BASIC_SCHEMES:
            result = pipeline.evaluate_basic("DS1", scheme)
            assert 0.0 <= result.f1 <= 1.0
            assert result.test_features is not None

    def test_unknown_scheme(self, pipeline):
        with pytest.raises(ValidationError):
            pipeline.evaluate_basic("DS1", "basic_z")

    def test_twostage_result_fields(self, gbdt_result):
        assert gbdt_result.split == "DS1"
        assert gbdt_result.predictor == "twostage-gbdt"
        assert gbdt_result.train_seconds > 0
        assert gbdt_result.y_true.shape == gbdt_result.y_pred.shape
        assert 0.0 <= gbdt_result.f1 <= 1.0

    def test_from_trace_constructor(self, tiny_trace):
        pipe = PredictionPipeline.from_trace(tiny_trace)
        assert pipe.features.num_samples == tiny_trace.num_samples


class TestEvaluationHelpers:
    def test_cabinet_error_shape_and_conservation(self, gbdt_result, tiny_trace):
        machine = tiny_trace.machine
        grid = cabinet_prediction_error(gbdt_result, machine)
        assert grid.shape == (machine.config.grid_y, machine.config.grid_x)
        total = gbdt_result.y_true.sum() - gbdt_result.y_pred.sum()
        assert grid.sum() == pytest.approx(total)

    def test_prediction_cdfs(self, gbdt_result, tiny_trace):
        cdfs = prediction_cdfs(gbdt_result, tiny_trace.machine)
        assert set(cdfs) == {"ground_truth", "prediction", "true_positives"}
        # True positives can never exceed either series, cabinet-wise.
        assert np.all(cdfs["true_positives"] <= cdfs["ground_truth"] + 1e-9)
        assert np.all(cdfs["true_positives"] <= cdfs["prediction"] + 1e-9)

    def test_runtime_classes(self, gbdt_result):
        report = runtime_class_report(gbdt_result)
        assert set(report) == {"all", "short", "long"}
        for metrics in report.values():
            assert 0.0 <= metrics["f1"] <= 1.0

    def test_severity_levels(self, gbdt_result):
        report = severity_level_report(gbdt_result)
        assert set(report) == {"light", "moderate", "severe", "extreme"}
        for value in report.values():
            assert 0.0 <= value <= 1.0

    def test_severity_requires_positives(self, gbdt_result):
        import dataclasses

        empty = dataclasses.replace(
            gbdt_result, y_true=np.zeros_like(gbdt_result.y_true)
        )
        with pytest.raises(ValidationError):
            severity_level_report(empty)


class TestEccPolicy:
    def test_always_on_saves_nothing(self, gbdt_result):
        report = EccPolicySimulator().replay(gbdt_result, policy="always_on")
        assert report.ecc_off_fraction == 0.0
        assert report.net_saved_core_hours == 0.0
        assert report.exposed_sbe_samples == 0

    def test_always_off_exposes_all_positives(self, gbdt_result):
        report = EccPolicySimulator().replay(gbdt_result, policy="always_off")
        assert report.exposed_sbe_samples == int(gbdt_result.y_true.sum())
        assert report.ecc_off_fraction == 1.0

    def test_predictive_beats_always_off_on_exposure(self, gbdt_result):
        sim = EccPolicySimulator()
        predictive = sim.replay(gbdt_result, policy="predictive")
        always_off = sim.replay(gbdt_result, policy="always_off")
        assert predictive.exposed_sbe_samples < always_off.exposed_sbe_samples

    def test_compare_policies(self, gbdt_result):
        reports = EccPolicySimulator().compare_policies(gbdt_result)
        assert [r.policy for r in reports] == ["always_on", "predictive", "always_off"]

    def test_unknown_policy(self, gbdt_result):
        with pytest.raises(ValidationError):
            EccPolicySimulator().replay(gbdt_result, policy="sometimes")

    def test_summary_rows(self, gbdt_result):
        report = EccPolicySimulator().replay(gbdt_result)
        rows = report.summary_rows()
        assert len(rows) == 6
