"""Bit-exact trace comparison shared by the parallel parity tests."""

import numpy as np

from repro.telemetry.trace import Trace

__all__ = ["assert_traces_bit_identical"]


def assert_traces_bit_identical(expected: Trace, actual: Trace) -> None:
    """Every content array equal, bit for bit (``meta`` excluded)."""
    assert set(expected.samples) == set(actual.samples)
    for name in expected.samples:
        assert np.array_equal(
            expected.samples[name], actual.samples[name]
        ), f"samples column {name!r} differs"
    assert set(expected.runs) == set(actual.runs)
    for name in expected.runs:
        assert np.array_equal(
            expected.runs[name], actual.runs[name]
        ), f"runs column {name!r} differs"
    assert expected.app_names == actual.app_names
    for attr in ("node_mean_temp", "node_mean_power", "node_susceptibility"):
        assert np.array_equal(
            getattr(expected, attr), getattr(actual, attr)
        ), f"{attr} differs"
    assert set(expected.recorded_series) == set(actual.recorded_series)
    for node, series in expected.recorded_series.items():
        for name, values in series.items():
            assert np.array_equal(
                values, actual.recorded_series[node][name]
            ), f"recorded series {node}/{name} differs"
