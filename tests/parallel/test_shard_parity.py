"""Property tests: sharded simulation is bit-identical to serial.

Hypothesis draws small random machine/workload configurations and shard
counts; for every example the merged shard simulation must equal the
serial simulation bit for bit.  This is the load-bearing guarantee of the
whole parallel layer — everything downstream (parallel experiments, the
content-addressed cache, the golden digests) assumes it.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.experiments.presets import preset_config
from repro.parallel.simulate import simulate_trace_sharded
from repro.telemetry.config import ErrorModelConfig, TraceConfig, WorkloadConfig
from repro.telemetry.simulator import TraceSimulator, merge_shard_results
from repro.topology.machine import MachineConfig
from repro.topology.sharding import plan_shards

from tests.parallel._compare import assert_traces_bit_identical


@st.composite
def small_trace_configs(draw) -> TraceConfig:
    """Random tiny machines (a few dozen nodes, 1-2 simulated days)."""
    machine = MachineConfig(
        grid_x=draw(st.integers(1, 3)),
        grid_y=draw(st.integers(1, 4)),
        cages_per_cabinet=1,
        slots_per_cage=draw(st.integers(1, 2)),
        nodes_per_slot=draw(st.sampled_from([2, 4])),
    )
    return TraceConfig(
        machine=machine,
        workload=WorkloadConfig(
            num_applications=8,
            mean_runtime_minutes=draw(st.sampled_from([180.0, 420.0])),
            mean_nodes_per_run=2.0,
            max_nodes_per_run=min(8, machine.num_nodes),
            target_utilization=draw(st.sampled_from([0.5, 0.85])),
        ),
        # Hot error model so SBE draws actually exercise the per-(run,
        # node) substreams instead of all skipping below the threshold.
        errors=ErrorModelConfig(
            base_rate_per_hour=0.05,
            offender_node_fraction=0.2,
            quiet_day_factor=0.01,
        ),
        duration_days=draw(st.sampled_from([1.0, 2.0])),
        tick_minutes=30.0,
        seed=draw(st.integers(0, 2**16)),
        record_nodes=(1,),
    )


class TestShardParity:
    @settings(max_examples=25, deadline=None)
    @given(config=small_trace_configs(), shards=st.sampled_from([1, 2, 4]))
    def test_sharded_merge_is_bit_identical_to_serial(self, config, shards):
        serial = TraceSimulator(config).run()
        spans = plan_shards(config.machine, shards)
        results = [TraceSimulator(config, span).run_span() for span in spans]
        merged = merge_shard_results(config, results)
        assert_traces_bit_identical(serial, merged)
        assert merged.meta["shards"] == len(spans)

    @settings(max_examples=5, deadline=None)
    @given(config=small_trace_configs())
    def test_shard_counts_agree_with_each_other(self, config):
        digests = []
        for shards in (1, 2, 4):
            trace = simulate_trace_sharded(config, shards=shards, jobs=1)
            digests.append(trace.samples["sbe_count"].sum())
            if len(digests) > 1:
                assert digests[0] == digests[-1]


class TestProcessPoolParity:
    def test_pool_simulation_matches_serial(self):
        """Worker-process sharding (the real --jobs path) is bit-identical."""
        config = preset_config("tiny")
        serial = TraceSimulator(config).run()
        pooled = simulate_trace_sharded(config, shards=4, jobs=2)
        assert_traces_bit_identical(serial, pooled)
        assert pooled.meta["shards"] == 4

    def test_stage_timers_are_recorded(self):
        config = preset_config("tiny")
        trace = simulate_trace_sharded(config, shards=2, jobs=1)
        stages = trace.meta["stage_seconds"]
        assert set(stages) == {"simulate", "sample", "collate"}
        assert all(seconds >= 0.0 for seconds in stages.values())
