"""Unit tests for the row-aligned shard planner and halo machinery."""

import numpy as np
import pytest

from repro.topology.machine import MachineConfig
from repro.topology.sharding import (
    ShardSpan,
    full_span,
    halo_node_ids,
    plan_shards,
    validate_span,
)
from repro.utils.errors import ValidationError

CONFIG = MachineConfig(grid_x=6, grid_y=4, cages_per_cabinet=1, slots_per_cage=1,
                       nodes_per_slot=4)
ROW_NODES = CONFIG.grid_x * CONFIG.nodes_per_cabinet


class TestPlanShards:
    def test_plan_tiles_the_machine(self):
        for n in (1, 2, 3, 4):
            spans = plan_shards(CONFIG, n)
            assert spans[0].lo == 0
            assert spans[-1].hi == CONFIG.num_nodes
            for prev, cur in zip(spans, spans[1:]):
                assert prev.hi == cur.lo
            assert sum(s.num_nodes for s in spans) == CONFIG.num_nodes

    def test_plan_clamps_to_row_count(self):
        spans = plan_shards(CONFIG, 100)
        assert len(spans) == CONFIG.grid_y
        assert all(s.row_hi - s.row_lo == 1 for s in spans)

    def test_uneven_rows_distributed(self):
        spans = plan_shards(CONFIG, 3)  # 4 rows over 3 shards
        rows = [s.row_hi - s.row_lo for s in spans]
        assert sorted(rows, reverse=True) == [2, 1, 1]
        assert rows[0] == 2  # earlier shards take the remainder

    def test_invalid_shard_count(self):
        with pytest.raises(ValidationError):
            plan_shards(CONFIG, 0)

    def test_full_span_covers_machine(self):
        span = full_span(CONFIG)
        assert span.lo == 0 and span.hi == CONFIG.num_nodes
        assert span.is_full


class TestHalo:
    def test_row_aligned_spans_have_empty_halo(self):
        for n in (1, 2, 4):
            for span in plan_shards(CONFIG, n):
                assert halo_node_ids(span, CONFIG).size == 0

    def test_slot_cutting_span_has_halo(self):
        # Start two nodes into a slot: the rest of that slot is the halo.
        span = ShardSpan(index=0, num_shards=2, lo=2, hi=ROW_NODES,
                         row_lo=0, row_hi=1)
        halo = halo_node_ids(span, CONFIG)
        assert np.array_equal(halo, np.array([0, 1]))

    def test_validate_rejects_unaligned_span(self):
        span = ShardSpan(index=0, num_shards=2, lo=0, hi=ROW_NODES - 2,
                         row_lo=0, row_hi=1)
        with pytest.raises(ValidationError):
            validate_span(span, CONFIG)

    def test_validate_rejects_oversized_span(self):
        span = ShardSpan(index=0, num_shards=1, lo=0,
                         hi=CONFIG.num_nodes + ROW_NODES,
                         row_lo=0, row_hi=CONFIG.grid_y + 1)
        with pytest.raises(ValidationError):
            validate_span(span, CONFIG)


class TestSpanHelpers:
    def test_owns_and_local_ids(self):
        span = plan_shards(CONFIG, 2)[1]
        assert not span.owns(span.lo - 1)
        assert span.owns(span.lo)
        assert not span.owns(span.hi)
        ids = np.array([span.lo - 1, span.lo, span.lo + 3, span.hi])
        assert np.array_equal(span.local_ids(ids), np.array([0, 3]))
