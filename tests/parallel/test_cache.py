"""Content-addressed cache: keying, cold/warm parity, corruption fallback."""

import warnings

import numpy as np
import pytest

from repro.experiments.presets import preset_config
from repro.experiments.runner import ExperimentContext
from repro.parallel.cache import ContentCache, config_digest
from repro.telemetry.config import TraceConfig
from repro.utils.errors import DegradedDataWarning


class TestConfigDigest:
    def test_digest_is_stable(self):
        config = preset_config("tiny")
        assert config_digest(config) == config_digest(preset_config("tiny"))

    def test_digest_changes_with_any_knob(self):
        base = config_digest(TraceConfig())
        assert config_digest(TraceConfig(seed=3)) != base
        assert config_digest(TraceConfig(duration_days=2.0)) != base
        assert config_digest(TraceConfig(), extra={"top_k_apps": 8}) != base

    def test_extra_params_key_independently(self):
        config = preset_config("tiny")
        a = config_digest(config, extra={"top_k_apps": 16})
        b = config_digest(config, extra={"top_k_apps": 8})
        assert a != b


class TestTraceCache:
    def test_miss_returns_none_silently(self, tmp_path):
        cache = ContentCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            assert cache.load_trace(preset_config("tiny")) is None

    def test_round_trip(self, tmp_path, tiny_trace):
        cache = ContentCache(tmp_path)
        config = tiny_trace.config
        cache.store_trace(config, tiny_trace)
        loaded = cache.load_trace(config)
        assert loaded is not None
        assert loaded.num_samples == tiny_trace.num_samples
        assert np.array_equal(
            loaded.samples["sbe_count"], tiny_trace.samples["sbe_count"]
        )

    def test_corrupt_entry_warns_and_recomputes(self, tmp_path, tiny_trace):
        cache = ContentCache(tmp_path)
        config = tiny_trace.config
        path = cache.store_trace(config, tiny_trace)
        path.with_suffix(".npz").write_bytes(b"junk")
        with pytest.warns(DegradedDataWarning, match="re-simulating"):
            assert cache.load_trace(config) is None


class TestFeatureCache:
    def test_round_trip_preserves_everything(self, tmp_path, tiny_features):
        cache = ContentCache(tmp_path)
        config = preset_config("tiny")
        cache.store_features(config, tiny_features, top_k_apps=16)
        loaded = cache.load_features(config, top_k_apps=16)
        assert loaded is not None
        assert np.array_equal(loaded.X, tiny_features.X)
        assert np.array_equal(loaded.y, tiny_features.y)
        assert loaded.schema.names == tiny_features.schema.names
        assert loaded.schema.tags == tiny_features.schema.tags
        assert set(loaded.meta) == set(tiny_features.meta)
        for name in tiny_features.meta:
            assert np.array_equal(loaded.meta[name], tiny_features.meta[name])

    def test_params_partition_the_key(self, tmp_path, tiny_features):
        cache = ContentCache(tmp_path)
        config = preset_config("tiny")
        cache.store_features(config, tiny_features, top_k_apps=16)
        assert cache.load_features(config, top_k_apps=8) is None

    def test_corrupt_archive_warns_and_recomputes(self, tmp_path, tiny_features):
        cache = ContentCache(tmp_path)
        config = preset_config("tiny")
        path = cache.store_features(config, tiny_features, top_k_apps=16)
        npz = path.with_suffix(".npz")
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.warns(DegradedDataWarning, match="recomputing"):
            assert cache.load_features(config, top_k_apps=16) is None

    def test_corrupt_manifest_warns_and_recomputes(self, tmp_path, tiny_features):
        cache = ContentCache(tmp_path)
        config = preset_config("tiny")
        path = cache.store_features(config, tiny_features, top_k_apps=16)
        path.with_suffix(".json").write_text("{not json")
        with pytest.warns(DegradedDataWarning):
            assert cache.load_features(config, top_k_apps=16) is None


class TestContextIntegration:
    def test_cold_vs_warm_runs_have_identical_metrics(self, tmp_path):
        """A warm feature-cache run scores exactly like the cold run."""
        cold = ExperimentContext("tiny", cache_dir=tmp_path)
        cold_result = cold.twostage("DS1", "lr")
        files = {p.name for p in tmp_path.iterdir()}
        assert any(name.startswith("trace-") for name in files)
        assert any(name.startswith("features-") for name in files)

        warm = ExperimentContext("tiny", cache_dir=tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedDataWarning)
            warm_result = warm.twostage("DS1", "lr")
        assert warm_result.f1 == cold_result.f1
        assert warm_result.precision == cold_result.precision
        assert warm_result.recall == cold_result.recall
        assert np.array_equal(warm_result.y_pred, cold_result.y_pred)

    def test_corrupt_feature_cache_falls_back_in_context(self, tmp_path):
        first = ExperimentContext("tiny", cache_dir=tmp_path)
        expected = first.features
        for entry in tmp_path.glob("features-*.npz"):
            entry.write_bytes(b"garbage")
        again = ExperimentContext("tiny", cache_dir=tmp_path)
        with pytest.warns(DegradedDataWarning, match="recomputing"):
            features = again.features
        assert np.array_equal(features.X, expected.X)
