"""ParallelRunner: ordered fan-out, and jobs=N == jobs=1 cell-for-cell."""

import math

import pytest

from repro.experiments.faults_experiment import run_faults
from repro.experiments.registry import run_experiments
from repro.parallel.runner import ExperimentCell, ParallelRunner, experiment_cells
from repro.utils.errors import ValidationError

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def _affine(item):
    """Pure, picklable worker for pool tests."""
    return 3 * item + 1


def _boom(item):
    raise RuntimeError(f"cell {item} failed")


class TestParallelRunner:
    def test_inline_path_preserves_order(self):
        assert ParallelRunner(1).map(_affine, range(7)) == [_affine(i) for i in range(7)]

    def test_pool_path_preserves_order(self):
        items = list(range(23))
        assert ParallelRunner(3).map(_affine, items) == [_affine(i) for i in items]

    def test_worker_errors_propagate(self):
        with pytest.raises(RuntimeError, match="cell \\d failed"):
            ParallelRunner(2).map(_boom, [0, 1, 2])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ParallelRunner(0)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=25, deadline=None)
        @given(items=st.lists(st.integers(-1000, 1000), max_size=12),
               jobs=st.sampled_from([2, 3]))
        def test_jobs_n_equals_jobs_1(self, items, jobs):
            assert ParallelRunner(jobs).map(_affine, items) == ParallelRunner(1).map(
                _affine, items
            )


class TestExperimentCell:
    def test_make_sorts_params(self):
        cell = ExperimentCell.make("experiment", "fig1", b=2, a=1)
        assert cell.params == (("a", 1), ("b", 2))
        assert cell.as_dict() == {"a": 1, "b": 2}

    def test_experiment_cells_carry_ids(self):
        cells = experiment_cells(["fig1", "fig3"], preset="tiny")
        assert [c.label for c in cells] == ["fig1", "fig3"]
        assert all(c.as_dict()["preset"] == "tiny" for c in cells)


class TestExperimentFanout:
    def test_registry_fanout_matches_serial(self, tmp_path):
        """run_experiments(jobs=2) returns the same results, in order."""
        serial = run_experiments(
            ["fig1", "fig3"], preset="tiny", jobs=1, cache_dir=tmp_path
        )
        fanned = run_experiments(
            ["fig1", "fig3"], preset="tiny", jobs=2, cache_dir=tmp_path
        )
        assert [r.experiment_id for r in fanned] == ["fig1", "fig3"]
        for a, b in zip(serial, fanned):
            assert a.text == b.text

    def test_unknown_experiment_rejected_before_fanout(self, tmp_path):
        with pytest.raises(ValidationError, match="unknown experiments"):
            run_experiments(["nope"], preset="tiny", jobs=2, cache_dir=tmp_path)


class TestFaultsSweepParity:
    def test_faults_jobs_2_equals_jobs_1(self, tiny_context):
        intensities = (0.0, 0.25)
        serial = run_faults(tiny_context, intensities=intensities, jobs=1)
        fanned = run_faults(tiny_context, intensities=intensities, jobs=2)
        assert len(serial.data["curve"]) == len(fanned.data["curve"])
        for a, b in zip(serial.data["curve"], fanned.data["curve"]):
            for key in ("intensity", "f1", "precision", "recall", "drop",
                        "rows_out", "quarantined_fraction", "fault_rows"):
                va, vb = a.get(key), b.get(key)
                if isinstance(va, float) and math.isnan(va):
                    assert math.isnan(vb), key
                else:
                    assert va == vb, key
