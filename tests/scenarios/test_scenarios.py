"""Units for the scenario DSL, its compiler, and the built-in presets."""

import math

import numpy as np
import pytest

from repro.experiments.presets import preset_config
from repro.scenarios import (
    Aging,
    CoolingDegradation,
    Maintenance,
    SbeStorm,
    Scenario,
    SeasonalDrift,
    WorkloadShift,
    compile_scenario,
    scenario_from_dict,
    scenario_preset,
    scenario_preset_names,
    scenario_to_dict,
)
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedSequenceFactory

DAY = 1440.0


@pytest.fixture(scope="module")
def config():
    return preset_config("tiny")  # 96 nodes; never simulated here


def compiled(config, *events, seed=0):
    return compile_scenario(Scenario(events=tuple(events), seed=seed), config)


class TestEventValidation:
    def test_inverted_window_rejected(self):
        with pytest.raises(ConfigurationError, match="start_day < end_day"):
            SeasonalDrift(start_day=5.0, end_day=5.0, amplitude_celsius=1.0)

    def test_inverted_region_rejected(self):
        with pytest.raises(ConfigurationError, match="node_lo < node_hi"):
            SbeStorm(start_day=0.0, end_day=1.0, rate_factor=2.0, node_lo=8, node_hi=8)

    def test_nonpositive_factors_rejected(self):
        with pytest.raises(ConfigurationError, match="rate_factor"):
            SbeStorm(start_day=0.0, end_day=1.0, rate_factor=0.0)
        with pytest.raises(ConfigurationError, match="runtime_factor"):
            WorkloadShift(start_day=0.0, end_day=1.0, runtime_factor=-1.0)
        with pytest.raises(ConfigurationError, match="susceptibility_scale"):
            Maintenance(day=1.0, susceptibility_scale=0.0)

    def test_scenario_rejects_non_events(self):
        with pytest.raises(ConfigurationError, match="not a scenario event"):
            Scenario(events=("maintenance",))


class TestSerialization:
    def test_round_trip_preserves_events_and_seed(self):
        scenario = scenario_preset("cluster-life")
        again = scenario_from_dict(scenario_to_dict(scenario))
        assert again == scenario

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario event kind"):
            scenario_from_dict({"events": [{"kind": "earthquake"}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            scenario_from_dict(
                {"events": [{"kind": "maintenance", "day": 1.0, "hammer": True}]}
            )


class TestCompileNeutrality:
    def test_none_and_empty_compile_to_none(self, config):
        assert compile_scenario(None, config) is None
        assert compile_scenario(Scenario(), config) is None
        assert Scenario().empty

    def test_gates_reflect_event_mix(self, config):
        storm = compiled(
            config, SbeStorm(start_day=1.0, end_day=2.0, rate_factor=4.0)
        )
        assert storm.has_error_factors
        assert not (storm.has_thermal or storm.has_maintenance or storm.has_workload)
        season = compiled(
            config, SeasonalDrift(start_day=0.0, end_day=9.0, amplitude_celsius=1.0)
        )
        assert season.has_thermal and not season.has_error_factors


class TestThermalSchedule:
    def test_seasonal_sine_inside_window_only(self, config):
        c = compiled(
            config,
            SeasonalDrift(
                start_day=2.0, end_day=6.0, amplitude_celsius=3.0, period_days=4.0
            ),
        )
        assert c.ambient_offset(0.0, 0, 96) is None  # before the window
        assert c.ambient_offset(6.0 * DAY, 0, 96) is None  # half-open end
        quarter = c.ambient_offset(3.0 * DAY, 0, 96)  # sin(2*pi*1/4) = 1
        assert quarter == pytest.approx(3.0)

    def test_cooling_ramps_then_freezes_per_region(self, config):
        c = compiled(
            config,
            CoolingDegradation(
                start_day=0.0, end_day=4.0, celsius_at_end=4.0, node_lo=0, node_hi=48
            ),
        )
        half = c.ambient_offset(2.0 * DAY, 0, 96)
        np.testing.assert_allclose(half[:48], 2.0)
        np.testing.assert_allclose(half[48:], 0.0)
        # Past end_day the loss freezes at its final value: not repaired.
        late = c.ambient_offset(10.0 * DAY, 0, 96)
        np.testing.assert_allclose(late[:48], 4.0)

    def test_offsets_compose_additively(self, config):
        c = compiled(
            config,
            SeasonalDrift(
                start_day=0.0, end_day=9.0, amplitude_celsius=2.0, period_days=4.0
            ),
            CoolingDegradation(
                start_day=0.0, end_day=2.0, celsius_at_end=1.0, node_lo=0, node_hi=96
            ),
        )
        total = c.ambient_offset(1.0 * DAY, 0, 96)  # sin peak (2) + ramp (0.5)
        np.testing.assert_allclose(total, 2.5)


class TestErrorFactors:
    def test_storm_multiplies_inside_window_and_region(self, config):
        c = compiled(
            config,
            SbeStorm(start_day=1.0, end_day=2.0, rate_factor=6.0, node_lo=0, node_hi=4),
        )
        nodes = np.array([0, 3, 4, 95])
        np.testing.assert_allclose(
            c.error_rate_factor(nodes, 1.5 * DAY), [6.0, 6.0, 1.0, 1.0]
        )
        np.testing.assert_allclose(c.error_rate_factor(nodes, 2.5 * DAY), 1.0)

    def test_aging_grows_then_freezes(self, config):
        c = compiled(
            config, Aging(start_day=0.0, end_day=10.0, growth_per_day=0.1)
        )
        nodes = np.array([5])
        assert c.error_rate_factor(nodes, 5.0 * DAY)[0] == pytest.approx(
            math.exp(0.5)
        )
        # Hardware does not un-age: past end_day the factor freezes.
        assert c.error_rate_factor(nodes, 50.0 * DAY)[0] == pytest.approx(
            math.exp(1.0)
        )


class TestMaintenanceEpochs:
    def make_epochs(self, config, *, seed=0, root_seed=2018):
        c = compiled(
            config,
            Maintenance(day=4.0, node_lo=0, node_hi=32, susceptibility_scale=2.0),
            seed=seed,
        )
        base = np.full(96, 0.5)
        return c.susceptibility_epochs(
            base, SeedSequenceFactory(root_seed), config.errors
        )

    def test_epochs_redraw_only_the_region(self, config):
        starts, epochs = self.make_epochs(config)
        np.testing.assert_array_equal(starts, [0.0, 4.0 * DAY])
        assert len(epochs) == 2
        np.testing.assert_allclose(epochs[0], 0.5)  # base epoch untouched
        assert not np.allclose(epochs[1][:32], 0.5)  # region redrawn
        np.testing.assert_allclose(epochs[1][32:], 0.5)  # rest carried over

    def test_redraw_is_keyed_by_scenario_seed(self, config):
        _, first = self.make_epochs(config, seed=0)
        _, again = self.make_epochs(config, seed=0)
        _, other = self.make_epochs(config, seed=1)
        np.testing.assert_array_equal(first[1], again[1])
        assert not np.array_equal(first[1], other[1])

    def test_epoch_lookup_is_half_open(self, config):
        starts, _ = self.make_epochs(config)
        lookup = lambda m: int(np.searchsorted(starts, m, side="right") - 1)
        assert lookup(4.0 * DAY - 1.0) == 0
        assert lookup(4.0 * DAY) == 1


class TestWorkloadFactors:
    def test_factors_compose_multiplicatively(self, config):
        c = compiled(
            config,
            WorkloadShift(start_day=0.0, end_day=4.0, arrival_factor=2.0),
            WorkloadShift(
                start_day=2.0, end_day=6.0, arrival_factor=3.0, runtime_factor=1.5
            ),
        )
        assert c.arrival_factor(1.0 * DAY) == 2.0
        assert c.arrival_factor(3.0 * DAY) == 6.0
        assert c.arrival_factor(5.0 * DAY) == 3.0
        assert c.runtime_factor(1.0 * DAY) == 1.0
        assert c.runtime_factor(3.0 * DAY) == 1.5


class TestPresets:
    def test_names_are_sorted_and_stable(self):
        names = scenario_preset_names()
        assert names == tuple(sorted(names))
        assert "regime-change" in names and "cluster-life" in names

    def test_every_preset_compiles(self, config):
        for name in scenario_preset_names():
            assert compile_scenario(scenario_preset(name), config) is not None

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario preset"):
            scenario_preset("apocalypse")
