"""Fleet gateway tests."""
