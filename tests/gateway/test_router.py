"""Consistent-hash ring: determinism, balance, and resize stability."""

import pytest

from repro.gateway.router import ConsistentHashRing
from repro.utils.errors import ValidationError

NODES = range(1000)


class TestRouting:
    def test_route_is_deterministic_across_instances(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        assert a.assignment(NODES) == b.assignment(NODES)

    def test_every_shard_gets_a_reasonable_share(self):
        ring = ConsistentHashRing(range(4))
        assignment = ring.assignment(NODES)
        for shard in range(4):
            share = sum(1 for owner in assignment.values() if owner == shard)
            # Perfect balance is 250; virtual replicas keep skew bounded.
            assert 100 <= share <= 450

    def test_route_returns_known_shards_only(self):
        ring = ConsistentHashRing([3, 7, 11])
        assert set(ring.assignment(NODES).values()) <= {3, 7, 11}


class TestResizeStability:
    def test_adding_a_shard_moves_about_one_over_n_keys(self):
        ring = ConsistentHashRing(range(4))
        before = ring.assignment(NODES)
        ring.add_shard(4)
        after = ring.assignment(NODES)
        moved = [n for n in NODES if before[n] != after[n]]
        # Expectation is 1/5 of keys; allow generous hash-noise slack but
        # stay far below the ~4/5 a modulo router would move.
        assert 0.05 * len(before) <= len(moved) <= 0.40 * len(before)
        # Every moved key must have moved TO the new shard, never
        # between surviving shards.
        assert all(after[n] == 4 for n in moved)

    def test_removing_a_shard_only_moves_its_own_keys(self):
        ring = ConsistentHashRing(range(5))
        before = ring.assignment(NODES)
        ring.remove_shard(2)
        after = ring.assignment(NODES)
        for node in NODES:
            if before[node] != 2:
                assert after[node] == before[node]
            else:
                assert after[node] != 2

    def test_add_then_remove_restores_original_assignment(self):
        ring = ConsistentHashRing(range(4))
        before = ring.assignment(NODES)
        ring.add_shard(9)
        ring.remove_shard(9)
        assert ring.assignment(NODES) == before


class TestValidation:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValidationError):
            ConsistentHashRing([])

    def test_duplicate_shard_rejected(self):
        ring = ConsistentHashRing([0, 1])
        with pytest.raises(ValidationError):
            ring.add_shard(1)

    def test_cannot_remove_unknown_or_last_shard(self):
        ring = ConsistentHashRing([0])
        with pytest.raises(ValidationError):
            ring.remove_shard(5)
        with pytest.raises(ValidationError):
            ring.remove_shard(0)
