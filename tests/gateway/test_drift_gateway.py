"""Gateway-side drift: observational monitor, alarms, and /metrics.

The gateway never retrains — its model lifecycle is the registry
watcher — so drift here is purely observational: detector gauges, a
``kind="drift"`` alarm through the shared :class:`AlarmEngine` fold
machinery, and Prometheus exposition.  The detector config below is
deliberately hair-trigger (tiny windows, near-zero PSI thresholds): the
tiny trace has no regime change, and these tests assert the *wiring*
fires, not that the production thresholds would.
"""

import asyncio

import pytest

from repro.gateway import (
    GatewayConfig,
    GatewayHTTPServer,
    build_gateway,
    http_request,
    run_fleet,
)
from repro.obs import MetricsRegistry, set_registry
from repro.serve.drift import DriftConfig

SENSITIVE = DriftConfig(
    reference_rows=32,
    window_rows=32,
    bins=5,
    psi_top_k=3,
    psi_threshold=0.005,
    calibration_threshold=0.005,
    f1_window=40,
    min_labels=10,
    check_every_minutes=60.0,
    cooldown_minutes=720.0,
)


@pytest.fixture(scope="module")
def drift_session(tiny_trace, tiny_context, tmp_path_factory):
    """A 2-shard gateway with the hair-trigger monitor, plus a scrape.

    Runs against a private obs registry: the ``/metrics`` scrape below
    must not advance the process-global scrape counter other modules
    assert exact values on.
    """

    async def go():
        gateway = build_gateway(
            tiny_trace,
            tmp_path_factory.mktemp("gw-drift"),
            splits=tiny_context.preset_splits(),
            config=GatewayConfig(shards=2, batch_size=64, drift=SENSITIVE),
            fast=True,
        )
        await gateway.start()
        server = GatewayHTTPServer(gateway)
        await server.start()
        await run_fleet(gateway, tiny_trace, clients=1)
        await gateway.drain()
        _, metrics = await http_request(
            server.host, server.port, "GET", "/metrics"
        )
        _, stats = await http_request(server.host, server.port, "GET", "/stats")
        await gateway.close()
        await server.close()
        return gateway, metrics, stats

    previous = set_registry(MetricsRegistry())
    try:
        return asyncio.run(go())
    finally:
        set_registry(previous)


class TestGatewayDrift:
    def test_monitor_fed_and_alarm_raised(self, drift_session):
        gateway, _, _ = drift_session
        assert gateway.drift is not None
        state = gateway.drift.state()
        assert state["labels_observed"] > 0
        assert gateway.drift_alarms >= 1

    def test_drift_alarms_carry_kind_and_sentinel_node(self, drift_session):
        gateway, _, _ = drift_session
        drift_alarms = [
            a for a in gateway.alarm_engine.alarms if a.kind == "drift"
        ]
        assert drift_alarms
        assert all(a.node_id == -1 for a in drift_alarms)

    def test_snapshot_exposes_drift_section(self, drift_session):
        _, _, stats = drift_session
        drift = stats["drift"]
        assert drift is not None
        assert drift["alarms"] >= 1
        assert {"feature_psi", "score_psi", "rolling_f1"} <= set(drift)

    def test_metrics_expose_drift_gauges_and_model_version(self, drift_session):
        gateway, metrics, _ = drift_session
        assert 'repro_serve_drift_statistic{detector="feature_psi"}' in metrics
        assert 'repro_serve_drift_statistic{detector="score_psi"}' in metrics
        version = gateway.watcher.current_version
        assert f"repro_serve_active_model_version {version}" in metrics
        assert 'repro_gateway_alarms_total{kind="drift"}' in metrics


class TestGatewayDriftOff:
    def test_default_gateway_has_no_drift_surface(
        self, tiny_trace, tiny_context, tmp_path_factory
    ):
        async def go():
            gateway = build_gateway(
                tiny_trace,
                tmp_path_factory.mktemp("gw-plain"),
                splits=tiny_context.preset_splits(),
                config=GatewayConfig(batch_size=64),
                fast=True,
            )
            await gateway.start()
            await gateway.close()
            return gateway

        gateway = asyncio.run(go())
        assert gateway.drift is None
        assert gateway.snapshot()["drift"] is None
