"""GET /metrics: a live gateway serves valid Prometheus text."""

import asyncio

import pytest

from repro.gateway import (
    GatewayConfig,
    GatewayHTTPServer,
    build_gateway,
    http_request,
    run_fleet,
)
from repro.obs import CONTENT_TYPE


@pytest.fixture(scope="module")
def scrapes(tiny_trace, tiny_context, tmp_path_factory):
    """Run a small fleet, then scrape /metrics twice from the live server."""
    splits = tiny_context.preset_splits()

    async def go():
        gateway = build_gateway(
            tiny_trace,
            tmp_path_factory.mktemp("gw-metrics"),
            splits=splits,
            config=GatewayConfig(shards=2, batch_size=64),
            fast=True,
        )
        await gateway.start()
        server = GatewayHTTPServer(gateway)
        await server.start()
        await run_fleet(gateway, tiny_trace, clients=1, server=server)
        first = await http_request(
            server.host, server.port, "GET", "/metrics"
        )
        second = await http_request(
            server.host, server.port, "GET", "/metrics"
        )
        await server.close()
        await gateway.close()
        return first, second

    return asyncio.run(go())


def _scrape_value(body: str, name: str) -> float:
    for line in body.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"{name} not found in scrape")


class TestMetricsEndpoint:
    def test_serves_200_with_prometheus_text(self, scrapes):
        (status, body), _ = scrapes
        assert status == 200
        assert isinstance(body, str)  # not JSON-decoded
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_type_lines_cover_the_gateway_instruments(self, scrapes):
        (_, body), _ = scrapes
        assert "# TYPE repro_gateway_handle_seconds histogram" in body
        assert "# TYPE repro_gateway_events_total counter" in body
        assert "# TYPE repro_gateway_queue_depth gauge" in body

    def test_fleet_traffic_shows_up(self, scrapes):
        (_, body), _ = scrapes
        scored = _scrape_value(body, 'repro_gateway_events_total{outcome="scored"}')
        assert scored > 0
        assert _scrape_value(body, "repro_gateway_handle_seconds_count") > 0

    def test_counters_are_monotone_across_scrapes(self, scrapes):
        (_, first), (_, second) = scrapes
        assert _scrape_value(first, "repro_gateway_scrapes_total") == 1
        assert _scrape_value(second, "repro_gateway_scrapes_total") == 2
