"""JSON wire codec: lossless round trips and strict rejection."""

import json

import numpy as np
import pytest

from repro.gateway.codec import event_from_dict, event_to_dict
from repro.serve.events import (
    ROW_COLUMNS,
    JobResolved,
    RunCompleted,
    RunStarted,
    SbeObserved,
    iter_trace_events,
)
from repro.utils.errors import ValidationError


def sample_events():
    return [
        RunStarted(
            minute=10.0,
            run_idx=3,
            node_ids=np.asarray([1, 2], dtype=int),
            app_ids=np.asarray([7, 7], dtype=int),
            start_minutes=np.asarray([10.0, 10.5]),
        ),
        RunCompleted(
            minute=40.0,
            run_idx=3,
            rows={
                name: np.asarray(
                    [1.0, 2.0],
                    dtype=(
                        int
                        if name
                        in {
                            "run_idx",
                            "job_id",
                            "node_id",
                            "app_id",
                            "prev_app_id",
                            "n_nodes",
                        }
                        else float
                    ),
                )
                for name in ROW_COLUMNS
            },
        ),
        SbeObserved(minute=41.0, job_id=9, node_id=2, app_id=7, count=4),
        JobResolved(
            minute=42.0,
            job_id=9,
            node_ids=np.asarray([1, 2], dtype=int),
            counts=np.asarray([0, 4], dtype=np.int64),
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("event", sample_events(), ids=lambda e: type(e).__name__)
    def test_round_trip_preserves_every_field(self, event):
        encoded = event_to_dict(event)
        json.dumps(encoded)  # must be JSON-serializable as-is
        decoded = event_from_dict(json.loads(json.dumps(encoded)))
        assert type(decoded) is type(event)
        assert event_to_dict(decoded) == encoded

    def test_round_trip_on_a_real_stream_prefix(self, tiny_trace):
        for event, _ in zip(iter_trace_events(tiny_trace), range(50)):
            decoded = event_from_dict(event_to_dict(event))
            assert event_to_dict(decoded) == event_to_dict(event)

    def test_decoded_arrays_have_engine_dtypes(self):
        decoded = event_from_dict(event_to_dict(sample_events()[1]))
        assert decoded.rows["node_id"].dtype.kind == "i"
        assert decoded.rows["gpu_util"].dtype.kind == "f"


class TestRejection:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError, match="unknown event type"):
            event_from_dict({"type": "node_exploded", "minute": 1.0})

    def test_missing_field_rejected(self):
        payload = event_to_dict(sample_events()[2])
        del payload["node_id"]
        with pytest.raises(ValidationError, match="missing field"):
            event_from_dict(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValidationError):
            event_from_dict([1, 2, 3])

    def test_malformed_numeric_rejected(self):
        payload = event_to_dict(sample_events()[2])
        payload["count"] = "many"
        with pytest.raises(ValidationError, match="malformed"):
            event_from_dict(payload)

    def test_run_completed_missing_column_rejected(self):
        payload = event_to_dict(sample_events()[1])
        del payload["rows"]["gpu_util"]
        with pytest.raises(ValidationError, match="missing column"):
            event_from_dict(payload)
