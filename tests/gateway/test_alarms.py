"""Alarm engine semantics: dedup windows, acknowledgement, escalation."""

import pytest

from repro.gateway.alarms import AlarmConfig, AlarmEngine
from repro.serve.scorer import Alert
from repro.utils.errors import ValidationError


def alert(
    node_id: int, minute: float, *, predicted: int = 1, score: float = 1.0
) -> Alert:
    return Alert(
        run_idx=0,
        job_id=0,
        node_id=node_id,
        app_id=0,
        end_minute=minute,
        scored_minute=minute,
        score=score,
        predicted=predicted,
        model_version=1,
    )


@pytest.fixture
def engine() -> AlarmEngine:
    return AlarmEngine(AlarmConfig(dedup_window_minutes=100.0, escalate_after=3))


class TestDedupWindow:
    def test_positive_inside_window_folds_into_open_alarm(self, engine):
        first = engine.observe(alert(5, 0.0))
        second = engine.observe(alert(5, 99.9))
        assert second is first
        assert first.count == 2
        assert len(engine.alarms) == 1
        assert engine.deduplicated == 1

    def test_positive_exactly_at_window_edge_opens_a_new_alarm(self, engine):
        first = engine.observe(alert(5, 0.0))
        at_edge = engine.observe(alert(5, 100.0))
        assert at_edge is not first
        assert [a.alarm_id for a in engine.alarms] == [1, 2]

    def test_window_slides_with_the_latest_fold(self, engine):
        engine.observe(alert(5, 0.0))
        engine.observe(alert(5, 99.0))  # folds; window now ends at 199
        folded = engine.observe(alert(5, 150.0))
        assert folded.alarm_id == 1 and folded.count == 3

    def test_different_nodes_never_share_an_alarm(self, engine):
        a = engine.observe(alert(1, 0.0))
        b = engine.observe(alert(2, 0.0))
        assert a.alarm_id != b.alarm_id

    def test_negative_alerts_are_ignored(self, engine):
        assert engine.observe(alert(5, 0.0, predicted=0)) is None
        assert engine.alarms == []


class TestDirectSignals:
    def test_signal_opens_a_kinded_alarm(self, engine):
        alarm = engine.signal(node_id=-1, kind="drift", minute=10.0, score=0.4)
        assert alarm.kind == "drift"
        assert alarm.node_id == -1
        assert engine.positives_seen == 0  # not an alert positive

    def test_signal_folds_per_kind_not_across_kinds(self, engine):
        drift = engine.signal(node_id=-1, kind="drift", minute=0.0)
        again = engine.signal(node_id=-1, kind="drift", minute=50.0)
        other = engine.signal(node_id=-1, kind="latency", minute=50.0)
        assert again is drift and drift.count == 2
        assert other is not drift

    def test_signal_shares_dedup_with_alert_stream_on_same_key(self, engine):
        opened = engine.observe(alert(7, 0.0))
        folded = engine.signal(node_id=7, kind="sbe_risk", minute=10.0)
        assert folded is opened and opened.count == 2

    def test_signal_kind_is_part_of_the_digest(self, engine):
        other = AlarmEngine(
            AlarmConfig(dedup_window_minutes=100.0, escalate_after=3)
        )
        engine.signal(node_id=-1, kind="drift", minute=5.0, score=0.3)
        other.signal(node_id=-1, kind="latency", minute=5.0, score=0.3)
        assert engine.digest() != other.digest()

    def test_signal_alarms_are_acknowledgeable(self, engine):
        alarm = engine.signal(node_id=-1, kind="drift", minute=5.0)
        engine.acknowledge(alarm.alarm_id)
        fresh = engine.signal(node_id=-1, kind="drift", minute=6.0)
        assert fresh is not alarm


class TestAcknowledgement:
    def test_ack_clears_and_next_positive_opens_fresh(self, engine):
        first = engine.observe(alert(5, 0.0))
        engine.acknowledge(first.alarm_id)
        assert first.acknowledged and not first.open
        again = engine.observe(alert(5, 10.0))  # well inside the window
        assert again.alarm_id != first.alarm_id
        assert again.count == 1
        assert engine.active() == [again]

    def test_double_ack_is_an_error(self, engine):
        first = engine.observe(alert(5, 0.0))
        engine.acknowledge(first.alarm_id)
        with pytest.raises(ValidationError):
            engine.acknowledge(first.alarm_id)

    def test_unknown_alarm_id_is_an_error(self, engine):
        with pytest.raises(ValidationError):
            engine.acknowledge(42)


class TestEscalation:
    def test_escalates_to_critical_after_k_positives(self, engine):
        engine.observe(alert(5, 0.0))
        assert engine.alarms[0].severity == "warning"
        engine.observe(alert(5, 10.0))
        assert engine.alarms[0].severity == "warning"
        third = engine.observe(alert(5, 20.0))
        assert third.severity == "critical"
        assert third.escalated_minute == 20.0
        assert engine.escalations == 1

    def test_escalation_does_not_repeat_on_further_positives(self, engine):
        for minute in (0.0, 10.0, 20.0, 30.0):
            engine.observe(alert(5, minute))
        assert engine.escalations == 1
        assert engine.alarms[0].count == 4

    def test_critical_alarms_sort_first_in_active_view(self, engine):
        for minute in (0.0, 10.0, 20.0):
            engine.observe(alert(5, minute))  # critical
        engine.observe(alert(9, 500.0))  # fresh warning, more recent
        assert [a.node_id for a in engine.active()] == [5, 9]

    def test_peak_score_tracks_the_maximum(self, engine):
        engine.observe(alert(5, 0.0, score=0.4))
        folded = engine.observe(alert(5, 10.0, score=2.5))
        engine.observe(alert(5, 20.0, score=1.0))
        assert folded.peak_score == 2.5


class TestDeterminism:
    def test_digest_is_stable_for_a_fixed_stream(self):
        def run() -> str:
            engine = AlarmEngine(
                AlarmConfig(dedup_window_minutes=50.0, escalate_after=2)
            )
            for node in (1, 2, 1, 3, 1, 2):
                engine.observe(alert(node, float(node) * 7))
            engine.acknowledge(1)
            return engine.digest()

        assert run() == run()

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            AlarmConfig(dedup_window_minutes=0.0)
        with pytest.raises(ValidationError):
            AlarmConfig(escalate_after=1)
