"""Gateway integration: replay parity, zero-drop, rolling swaps, HTTP."""

import asyncio

import pytest

from repro.gateway import (
    GatewayConfig,
    GatewayHTTPServer,
    build_gateway,
    http_request,
    run_fleet,
)
from repro.serve import ChaosPlan, serve_replay
from repro.utils.errors import ValidationError

CHAOS = ChaosPlan(intensity=0.25, seed=7)


def drive(
    trace,
    splits,
    root,
    *,
    shards=1,
    clients=1,
    chaos=None,
    publish_v2_after=None,
):
    """Build a gateway, replay the fleet through it, close it."""

    async def go():
        gateway = build_gateway(
            trace,
            root,
            splits=splits,
            config=GatewayConfig(shards=shards, batch_size=64),
            fast=True,
            chaos=chaos,
        )
        await gateway.start()
        if publish_v2_after is None:
            report = await run_fleet(gateway, trace, clients=clients)
        else:
            # Manual fleet: republish the same weights as v2 mid-stream
            # to exercise the rolling hot-swap without changing scores.
            from repro.serve.events import iter_trace_events

            watcher = gateway.watcher
            predictor, _ = watcher.registry.load_model(
                watcher.name,
                watcher.current_version,
                expect_feature_names=watcher.expect_feature_names,
            )
            report = None
            for index, event in enumerate(iter_trace_events(trace)):
                if index == publish_v2_after:
                    watcher.registry.save_model(
                        predictor, name=watcher.name, metadata={"same": True}
                    )
                await gateway.ingest(event)
        await gateway.close()
        return gateway, report

    return asyncio.run(go())


@pytest.fixture(scope="module")
def splits(tiny_context):
    return tiny_context.preset_splits()


@pytest.fixture(scope="module")
def parity_runs(tiny_trace, splits, tmp_path_factory):
    """Single-shard single-client gateway + the replay oracle."""
    gateway, fleet = drive(
        tiny_trace, splits, tmp_path_factory.mktemp("gw-parity")
    )
    report = serve_replay(
        tiny_trace,
        tmp_path_factory.mktemp("replay"),
        splits=splits,
        batch_size=64,
        fast=True,
    )
    return gateway, fleet, report


@pytest.fixture(scope="module")
def chaos_runs(tiny_trace, splits, tmp_path_factory):
    """The same 2-shard 3-client chaos fleet, run twice."""
    return [
        drive(
            tiny_trace,
            splits,
            tmp_path_factory.mktemp(f"gw-chaos-{i}"),
            shards=2,
            clients=3,
            chaos=CHAOS,
        )[0]
        for i in range(2)
    ]


class TestReplayParity:
    def test_scored_alert_digest_bit_identical_to_replay(self, parity_runs):
        gateway, _, report = parity_runs
        assert gateway.scored_alert_digest() == report.scored_alert_digest()

    def test_gateway_saw_the_exact_replay_event_count(self, parity_runs):
        gateway, fleet, report = parity_runs
        assert gateway.stats.events_in == report.num_events
        assert fleet.events_sent == report.num_events
        assert gateway.workers[0].num_events == report.num_events

    def test_alert_volume_matches_replay(self, parity_runs):
        gateway, _, report = parity_runs
        assert len(gateway.scored_alerts) == len(report.alerts)

    def test_zero_drop_and_latency_populated(self, parity_runs):
        gateway, _, _ = parity_runs
        assert gateway.stats.zero_drop
        assert gateway.stats.events_rejected == 0
        latency = gateway.latency_percentiles()
        assert 0.0 < latency["p50"] <= latency["p99"]

    def test_trends_capped_and_scored(self, parity_runs):
        gateway, _, _ = parity_runs
        assert gateway.trends  # at least one node scored
        node_id = next(iter(gateway.trends))
        trend = gateway.node_trend(node_id)
        assert 0 < len(trend) <= gateway.config.trend_length
        assert {"end_minute", "score", "predicted", "model_version"} <= set(
            trend[0]
        )


class TestChaosFleet:
    def test_zero_drop_accounting_under_chaos(self, chaos_runs):
        gateway = chaos_runs[0]
        stats = gateway.stats
        assert stats.zero_drop
        assert stats.events_in == 1395  # tiny trace stream length
        assert stats.events_scored + stats.events_dead_lettered == stats.events_in
        # Broadcast replicas mean more deliveries than ingests.
        assert stats.deliveries > stats.events_in

    def test_no_rows_left_unresolved(self, chaos_runs):
        gateway = chaos_runs[0]
        assert all(
            w.scorer.resilience.unresolved_rows == 0 for w in gateway.workers
        )
        assert any(
            w.scorer.resilience.injected_events > 0 for w in gateway.workers
        )

    def test_chaos_fleet_is_deterministic(self, chaos_runs):
        first, second = chaos_runs
        assert first.scored_alert_digest() == second.scored_alert_digest()
        assert first.alarm_engine.digest() == second.alarm_engine.digest()
        assert first.stats.to_dict() == second.stats.to_dict()

    def test_alarms_fold_the_positive_stream(self, chaos_runs):
        engine = chaos_runs[0].alarm_engine
        assert engine.positives_seen > len(engine.alarms)
        assert engine.deduplicated > 0


class TestRollingSwap:
    def test_same_weights_v2_rolls_across_all_shards(
        self, tiny_trace, splits, parity_runs, tmp_path_factory
    ):
        gateway, _ = drive(
            tiny_trace,
            splits,
            tmp_path_factory.mktemp("gw-swap"),
            shards=2,
            publish_v2_after=300,
        )
        watcher = gateway.watcher
        assert watcher.swaps_completed == 1
        assert watcher.current_version == 2
        assert not watcher.swap_in_progress
        assert all(w.scorer.model_version == 2 for w in gateway.workers)
        # No events dropped during the roll, and — same weights — the
        # scored output is unchanged (single-shard parity digest holds
        # per shard count, so compare alert COUNT here, digest below).
        assert gateway.stats.zero_drop
        assert len(gateway.scored_alerts) == len(parity_runs[0].scored_alerts)

    def test_swap_preserves_single_shard_digest(
        self, tiny_trace, splits, parity_runs, tmp_path_factory
    ):
        gateway, _ = drive(
            tiny_trace,
            splits,
            tmp_path_factory.mktemp("gw-swap-1"),
            shards=1,
            publish_v2_after=300,
        )
        assert gateway.watcher.swaps_completed == 1
        # Alert digests exclude the model version, and v2 has identical
        # weights, so the swap must be invisible to the scored output.
        assert (
            gateway.scored_alert_digest()
            == parity_runs[0].scored_alert_digest()
        )


class TestHTTP:
    @pytest.fixture(scope="class")
    def http_session(self, tiny_trace, splits, tmp_path_factory):
        """Fleet over HTTP, plus scripted endpoint probes, one event loop."""

        async def go():
            gateway = build_gateway(
                tiny_trace,
                str(tmp_path_factory.mktemp("gw-http")),
                splits=splits,
                config=GatewayConfig(shards=2, batch_size=64),
                fast=True,
            )
            await gateway.start()
            server = GatewayHTTPServer(gateway)
            await server.start()
            fleet = await run_fleet(
                gateway, tiny_trace, clients=3, server=server
            )
            await gateway.drain()
            probes = {}
            probes["stats"] = await http_request(
                server.host, server.port, "GET", "/stats"
            )
            node_id = next(iter(gateway.trends))
            probes["trend"] = await http_request(
                server.host, server.port, "GET", f"/nodes/{node_id}/trend"
            )
            probes["alarms"] = await http_request(
                server.host, server.port, "GET", "/alarms?active=1"
            )
            first_alarm = gateway.alarm_engine.alarms[0].alarm_id
            probes["ack"] = await http_request(
                server.host, server.port, "POST", f"/alarms/{first_alarm}/ack"
            )
            probes["ack_again"] = await http_request(
                server.host, server.port, "POST", f"/alarms/{first_alarm}/ack"
            )
            probes["malformed"] = await http_request(
                server.host, server.port, "POST", "/events",
                {"type": "sbe_observed", "minute": "soon"},
            )
            probes["lost"] = await http_request(
                server.host, server.port, "GET", "/no/such/route"
            )
            await gateway.close()
            await server.close()
            return gateway, fleet, probes

        return asyncio.run(go())

    def test_fleet_posts_every_event_over_http(self, http_session):
        gateway, fleet, _ = http_session
        assert fleet.via_http
        assert fleet.events_sent == 1395
        assert sum(fleet.per_client.values()) == fleet.events_sent
        assert len([c for c in fleet.per_client.values() if c > 0]) == 3

    def test_stats_endpoint_reports_zero_drop(self, http_session):
        _, _, probes = http_session
        status, body = probes["stats"]
        assert status == 200
        assert body["stats"]["zero_drop"] is True
        assert body["shards"] == 2

    def test_trend_endpoint_serves_scored_points(self, http_session):
        _, _, probes = http_session
        status, body = probes["trend"]
        assert status == 200
        assert body["trend"] and "score" in body["trend"][0]

    def test_alarm_ack_flow_over_http(self, http_session):
        _, _, probes = http_session
        status, body = probes["alarms"]
        assert status == 200 and body["alarms"]
        status, body = probes["ack"]
        assert status == 200 and body["acknowledged"] is True
        status, body = probes["ack_again"]
        assert status == 409

    def test_malformed_event_rejected_and_counted(self, http_session):
        gateway, _, probes = http_session
        status, body = probes["malformed"]
        assert status == 400
        assert body["rejected"] == 1
        assert gateway.stats.events_rejected == 1
        assert gateway.stats.zero_drop  # rejection is accounted, not lost

    def test_unknown_route_is_404(self, http_session):
        _, _, probes = http_session
        status, _ = probes["lost"]
        assert status == 404


class TestLifecycle:
    def test_ingest_before_start_rejected_and_counted(
        self, tiny_trace, splits, tmp_path_factory
    ):
        async def go():
            gateway = build_gateway(
                tiny_trace,
                str(tmp_path_factory.mktemp("gw-life")),
                splits=splits,
                fast=True,
            )
            from repro.serve.events import iter_trace_events

            event = next(iter_trace_events(tiny_trace))
            with pytest.raises(ValidationError):
                await gateway.ingest(event)
            assert gateway.stats.events_rejected == 1
            assert gateway.stats.zero_drop

        asyncio.run(go())

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            GatewayConfig(shards=0)
        with pytest.raises(ValidationError):
            GatewayConfig(max_queue_depth=0)
