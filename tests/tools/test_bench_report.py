"""bench_report: extraction, trajectory table, regression gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import bench_report  # noqa: E402


@pytest.fixture()
def bench_dir(tmp_path):
    (tmp_path / "BENCH_scale.json").write_text(
        json.dumps(
            {
                "monolithic": {"rows_per_sec": 6000.0, "peak_rss_bytes": 2.0e8},
                "segmented": {"rows_per_sec": 1300.0, "peak_rss_bytes": 1.5e8},
            }
        )
    )
    (tmp_path / "BENCH_gateway.json").write_text(
        json.dumps(
            {
                "points": [
                    {"shards": 1, "events_per_sec": 30000.0, "p99_ms": 2.5},
                    {"shards": 2, "events_per_sec": 12000.0, "p99_ms": 2.0},
                ]
            }
        )
    )
    (tmp_path / "BENCH_hotpath.json").write_text(
        json.dumps({"entries": [{"label": "tick loop", "rows_per_sec": 5000.0}]})
    )
    return tmp_path


class TestExtraction:
    def test_collects_all_known_artifacts(self, bench_dir):
        metrics = bench_report.collect_metrics(bench_dir)
        assert metrics["scale.monolithic.rows_per_sec"] == 6000.0
        assert metrics["gateway.shards2.p99_ms"] == 2.0
        assert metrics["hotpath.tick_loop.rows_per_sec"] == 5000.0

    def test_missing_and_damaged_files_are_tolerated(self, tmp_path, capsys):
        assert bench_report.collect_metrics(tmp_path) == {}
        (tmp_path / "BENCH_scale.json").write_text("{not json")
        assert bench_report.collect_metrics(tmp_path) == {}
        assert "skipping BENCH_scale.json" in capsys.readouterr().err


class TestRegressionGate:
    def test_throughput_drop_past_threshold_fails(self):
        failures = bench_report.check_regressions(
            current={"hotpath.x.rows_per_sec": 700.0},
            baseline={"hotpath.x.rows_per_sec": 1000.0},
            threshold=0.2,
        )
        assert len(failures) == 1 and "below baseline" in failures[0]

    def test_latency_rise_past_threshold_fails(self):
        failures = bench_report.check_regressions(
            current={"gateway.shards1.p99_ms": 3.0},
            baseline={"gateway.shards1.p99_ms": 2.0},
        )
        assert len(failures) == 1 and "above baseline" in failures[0]

    def test_within_threshold_passes(self):
        assert (
            bench_report.check_regressions(
                current={"hotpath.x.rows_per_sec": 900.0},
                baseline={"hotpath.x.rows_per_sec": 1000.0},
            )
            == []
        )

    def test_metrics_missing_from_either_side_never_fail(self):
        assert (
            bench_report.check_regressions(
                current={"hotpath.new.rows_per_sec": 1.0},
                baseline={"hotpath.old.rows_per_sec": 1000.0},
            )
            == []
        )


class TestCli:
    def test_check_without_baseline_passes_vacuously(self, bench_dir, capsys):
        assert bench_report.main(["--dir", str(bench_dir), "--check"]) == 0
        out = capsys.readouterr().out
        assert "vacuously" in out
        assert "scale.monolithic.rows_per_sec" in out

    def test_check_against_baseline(self, bench_dir, capsys):
        baseline = bench_dir / "baseline.json"
        assert (
            bench_report.main(
                ["--dir", str(bench_dir), "--baseline", str(baseline), "--write-baseline"]
            )
            == 0
        )
        assert (
            bench_report.main(
                ["--dir", str(bench_dir), "--baseline", str(baseline), "--check"]
            )
            == 0
        )
        assert "regression gate ok" in capsys.readouterr().out

        # Regress the hot path past 20% and the gate must fail.
        (bench_dir / "BENCH_hotpath.json").write_text(
            json.dumps(
                {"entries": [{"label": "tick loop", "rows_per_sec": 3000.0}]}
            )
        )
        assert (
            bench_report.main(
                ["--dir", str(bench_dir), "--baseline", str(baseline), "--check"]
            )
            == 1
        )
        assert "FAIL hotpath.tick_loop.rows_per_sec" in capsys.readouterr().out
