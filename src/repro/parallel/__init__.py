"""Parallel execution layer: sharded simulation, experiment fan-out, caching.

Three pieces, all built on the determinism guarantees of the telemetry
substrate:

* :mod:`repro.parallel.simulate` — run the trace simulator as row-aligned
  shards across worker processes and merge the results bit-identically to
  the serial run;
* :mod:`repro.parallel.runner` — map experiment cells (experiment id,
  fault intensity, model/split/seed combinations) over a process pool
  with ordered result collection;
* :mod:`repro.parallel.cache` — a content-addressed store for traces and
  feature matrices keyed by config digest + code schema version, so
  concurrent workers and repeat runs share work safely.
"""

from repro.parallel.cache import CACHE_SCHEMA_VERSION, ContentCache, config_digest
from repro.parallel.runner import (
    ExperimentCell,
    ParallelRunner,
    experiment_cells,
    run_experiment_cell,
)
from repro.parallel.simulate import simulate_trace_sharded

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ContentCache",
    "config_digest",
    "ExperimentCell",
    "ParallelRunner",
    "experiment_cells",
    "run_experiment_cell",
    "simulate_trace_sharded",
]
