"""Ordered process-pool fan-out for experiment cells.

:class:`ParallelRunner` maps a picklable worker over a list of cells,
preserving input order in the results — so ``jobs=N`` must be
cell-for-cell identical to ``jobs=1``, which the parity tests enforce.
Workers are plain module-level functions (picklable under both fork and
spawn start methods); anything experiment-shaped is imported lazily
inside the worker to keep this module free of import cycles with the
experiment registry.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.utils.errors import ValidationError

__all__ = [
    "ExperimentCell",
    "ParallelRunner",
    "run_experiment_cell",
    "experiment_cells",
]


@dataclass(frozen=True)
class ExperimentCell:
    """One unit of experiment work: a kind plus frozen parameters.

    ``params`` is a tuple of ``(name, value)`` pairs (hashable, picklable,
    order-stable) — e.g. ``(("experiment_id", "faults"), ("preset",
    "tiny"))`` for a registry cell, or model/split/seed/intensity
    combinations for sweep cells.
    """

    kind: str
    label: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, label: str, **params: Any) -> "ExperimentCell":
        """Build a cell from keyword parameters (sorted for stability)."""
        return cls(kind=kind, label=label, params=tuple(sorted(params.items())))

    def as_dict(self) -> dict[str, Any]:
        """The cell's parameters as a plain dict."""
        return dict(self.params)


class ParallelRunner:
    """Maps a worker over cells, optionally on a process pool.

    Results come back in input order regardless of completion order
    (``ProcessPoolExecutor.map`` semantics), so parallelism never
    reorders an experiment sweep.  ``jobs=1`` runs inline in this
    process — the reference path for parity checks, and the only path
    that can reuse in-memory caches on the caller's context.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)

    @staticmethod
    def _pool_context() -> multiprocessing.context.BaseContext:
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def map(self, worker: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``worker`` to every item, preserving input order."""
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [worker(item) for item in items]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(items)), mp_context=self._pool_context()
        ) as pool:
            return list(pool.map(worker, items))


def run_experiment_cell(cell: ExperimentCell):
    """Worker: run one registry experiment in a fresh context.

    Module-level (picklable) and lazily importing the registry, so worker
    processes under spawn can resolve it without dragging experiment
    imports into this module at import time.  Each worker builds its own
    :class:`~repro.experiments.runner.ExperimentContext`; the shared disk
    cache (warmed by the caller) keeps workers from re-simulating.
    """
    from repro.experiments.registry import run_experiment
    from repro.experiments.runner import ExperimentContext

    if cell.kind != "experiment":
        raise ValidationError(f"unknown cell kind {cell.kind!r}")
    params = cell.as_dict()
    context = ExperimentContext(
        params.get("preset", "default"),
        cache_dir=params.get("cache_dir"),
        use_disk_cache=params.get("use_disk_cache", True),
    )
    return run_experiment(params["experiment_id"], context)


def experiment_cells(
    experiment_ids: Sequence[str],
    *,
    preset: str = "default",
    cache_dir=None,
    use_disk_cache: bool = True,
) -> list[ExperimentCell]:
    """Registry cells for ``experiment_ids`` under one preset."""
    return [
        ExperimentCell.make(
            "experiment",
            experiment_id,
            experiment_id=experiment_id,
            preset=preset,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
            use_disk_cache=use_disk_cache,
        )
        for experiment_id in experiment_ids
    ]
