"""Sharded trace simulation across worker processes.

:func:`simulate_trace_sharded` plans row-aligned shards
(:func:`~repro.topology.sharding.plan_shards`), simulates each shard —
in-process or on a process pool — and merges the per-shard results with
:func:`~repro.telemetry.simulator.merge_shard_results` into a trace that
is **bit-identical** to ``TraceSimulator(config).run()``.  The identity
holds because every random draw in the substrate is keyed by a stable
entity (cabinet row, run id, (run, node) pair) rather than by draw order;
see the simulator module docstring for the full argument, and
``tests/parallel/test_shard_parity.py`` for the property test that
enforces it.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.telemetry.config import TraceConfig
from repro.telemetry.simulator import ShardResult, TraceSimulator, merge_shard_results
from repro.telemetry.trace import Trace
from repro.topology.sharding import ShardSpan, plan_shards
from repro.utils.errors import ValidationError

__all__ = ["simulate_trace_sharded", "simulate_span", "iter_shard_results"]


def simulate_span(args: tuple[TraceConfig, ShardSpan]) -> ShardResult:
    """Worker entry point: simulate one shard (module-level so it pickles)."""
    config, span = args
    return TraceSimulator(config, span).run_span()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the config by COW), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def iter_shard_results(
    config: TraceConfig,
    spans: list[ShardSpan],
    *,
    jobs: int = 1,
):
    """Yield ``(span, ShardResult)`` pairs, span-order, one at a time.

    The streaming core shared by :func:`simulate_trace_sharded` (which
    collects and merges) and the segmented store pipeline (which writes
    each result to disk and drops it).  With ``jobs > 1`` spans run on a
    process pool but results are still yielded in span order, so a
    consumer that commits work as it arrives does so deterministically.
    """
    jobs = max(1, int(jobs))
    if len(spans) == 1 or jobs == 1:
        for span in spans:
            yield span, simulate_span((config, span))
        return
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(spans)), mp_context=_pool_context()
    ) as pool:
        for span, result in zip(
            spans, pool.map(simulate_span, [(config, s) for s in spans])
        ):
            yield span, result


def simulate_trace_sharded(
    config: TraceConfig | None = None,
    *,
    shards: int = 2,
    jobs: int | None = None,
) -> Trace:
    """Simulate ``config`` as ``shards`` row-shards and merge the results.

    ``jobs`` is the number of worker processes (default: one per shard,
    capped at the CPU count); ``jobs=1`` runs the shards sequentially
    in-process, which is the reference path the parity tests compare
    against.  The shard count is clamped to the machine's cabinet-row
    count by the planner, so asking for more shards than rows is safe.
    """
    config = config or TraceConfig()
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    spans = plan_shards(config.machine, shards)
    if jobs is None:
        jobs = min(len(spans), multiprocessing.cpu_count())
    jobs = max(1, int(jobs))
    results = [
        result for _, result in iter_shard_results(config, spans, jobs=jobs)
    ]
    return merge_shard_results(config, results)
