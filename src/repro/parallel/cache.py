"""Content-addressed cache for traces and feature matrices.

Cache keys are the SHA-256 digest of the *canonical configuration JSON*
plus a code schema version, so a cache hit means "this exact config under
this exact code generation" — changing any simulation knob, the seed, or
the feature-building parameters changes the key, and bumping
:data:`CACHE_SCHEMA_VERSION` after a content-affecting code change
invalidates every stale entry at once instead of serving wrong data.

Storage uses the hardened IO primitives of :mod:`repro.utils.io`: archives
are written atomically (temp + rename) and every entry carries a SHA-256
checksum in a JSON manifest, so concurrent writers (parallel experiment
workers racing to populate the same entry) and crashes can never leave a
half-written entry that a later read would accept.  A corrupt entry is
never fatal — it is reported as a :class:`DegradedDataWarning` and the
caller recomputes.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from repro.features.builder import FeatureMatrix
from repro.features.schema import FeatureSchema
from repro.telemetry.config import TraceConfig
from repro.telemetry.trace import Trace, config_to_dict
from repro.utils.errors import DegradedDataWarning, ReproError, TraceIOError
from repro.utils.io import atomic_write, atomic_write_text, sha256_bytes, sha256_file

__all__ = ["CACHE_SCHEMA_VERSION", "ContentCache", "config_digest"]

#: Bump whenever a code change alters trace or feature *content* for an
#: unchanged config (RNG restructuring, new feature columns, ...).
CACHE_SCHEMA_VERSION = 2


def config_digest(config: TraceConfig, *, extra: dict | None = None) -> str:
    """Hex digest identifying ``config`` (+ optional extra parameters).

    The digest covers the canonical JSON form of the full configuration,
    the cache schema version, and any ``extra`` dict (e.g. feature-builder
    parameters), serialized with sorted keys so dict ordering can never
    perturb the key.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_to_dict(config),
        "extra": extra or {},
    }
    return sha256_bytes(json.dumps(payload, sort_keys=True).encode())[:20]


class ContentCache:
    """Content-addressed trace/feature store rooted at one directory."""

    def __init__(self, root: Path | str) -> None:
        self._root = Path(root)

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def trace_path(self, config: TraceConfig) -> Path:
        """Entry path (no suffix) for ``config``'s trace."""
        return self._root / f"trace-{config_digest(config)}"

    def load_trace(self, config: TraceConfig) -> Trace | None:
        """The cached trace for ``config``, or ``None``.

        A missing entry returns ``None`` silently; a corrupt one warns
        :class:`DegradedDataWarning` and returns ``None`` so the caller
        re-simulates.
        """
        path = self.trace_path(config)
        if not path.with_suffix(".npz").exists():
            return None
        try:
            return Trace.load(path)
        except ReproError as exc:
            warnings.warn(
                f"trace cache is unreadable ({exc}); re-simulating",
                DegradedDataWarning,
                stacklevel=2,
            )
            return None

    def store_trace(self, config: TraceConfig, trace: Trace) -> Path:
        """Write ``trace`` under its content key; returns the entry path."""
        path = self.trace_path(config)
        trace.save(path)
        return path

    # ------------------------------------------------------------------
    # Segmented stores
    # ------------------------------------------------------------------
    def store_path(self, config: TraceConfig) -> Path:
        """Directory for ``config``'s segmented trace store.

        Keyed like :meth:`trace_path` so a monolithic entry and a
        segmented store for the same configuration sit side by side and
        invalidate together on schema bumps.
        """
        return self._root / f"store-{config_digest(config)}"

    # ------------------------------------------------------------------
    # Feature matrices
    # ------------------------------------------------------------------
    def features_path(self, config: TraceConfig, **params) -> Path:
        """Entry path (no suffix) for ``config``'s feature matrix."""
        return self._root / f"features-{config_digest(config, extra=params)}"

    def load_features(self, config: TraceConfig, **params) -> FeatureMatrix | None:
        """The cached feature matrix, or ``None`` (warns when corrupt)."""
        path = self.features_path(config, **params)
        manifest_path = path.with_suffix(".json")
        npz_path = path.with_suffix(".npz")
        if not manifest_path.exists() or not npz_path.exists():
            return None
        try:
            return self._read_features(manifest_path, npz_path)
        except (ReproError, OSError, ValueError, KeyError) as exc:
            warnings.warn(
                f"feature cache is unreadable ({exc}); recomputing",
                DegradedDataWarning,
                stacklevel=2,
            )
            return None

    def _read_features(self, manifest_path: Path, npz_path: Path) -> FeatureMatrix:
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise TraceIOError(manifest_path, f"bad manifest JSON: {exc}") from exc
        expected = manifest.get("checksum")
        if expected:
            actual = sha256_file(npz_path)
            if actual != expected:
                raise TraceIOError(
                    npz_path,
                    f"feature archive checksum mismatch: "
                    f"expected {expected}, actual {actual}",
                )
        schema = FeatureSchema()
        for name in manifest["schema"]["names"]:
            schema.add(name, *manifest["schema"]["tags"][name])
        with np.load(npz_path) as data:
            X = data["X"]
            y = data["y"]
            meta = {
                key.split("/", 1)[1]: data[key]
                for key in data.files
                if key.startswith("meta/")
            }
        return FeatureMatrix(X=X, y=y, schema=schema, meta=meta)

    def store_features(
        self, config: TraceConfig, features: FeatureMatrix, **params
    ) -> Path:
        """Write ``features`` under its content key; returns the entry path."""
        path = self.features_path(config, **params)
        npz_path = path.with_suffix(".npz")
        arrays: dict[str, np.ndarray] = {"X": features.X, "y": features.y}
        for name, col in features.meta.items():
            arrays[f"meta/{name}"] = col
        with atomic_write(npz_path) as tmp:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
        manifest = {
            "checksum": sha256_file(npz_path),
            "schema": {
                "names": list(features.schema.names),
                "tags": {
                    name: sorted(tags) for name, tags in features.schema.tags.items()
                },
            },
            "params": params,
        }
        atomic_write_text(path.with_suffix(".json"), json.dumps(manifest, indent=2))
        return path
