"""End-to-end prediction pipeline: features -> split -> train -> metrics.

:class:`PredictionPipeline` wraps a built feature matrix and the paper's
sliding splits; each :meth:`evaluate` call trains one predictor on one
split's training window and reports SBE-class precision/recall/F1 on the
test window, plus the training wall-clock (Table III's quantity).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import BasicA, BasicB, BasicC, RandomBaseline
from repro.core.twostage import TwoStagePredictor
from repro.features.builder import FeatureMatrix, build_features
from repro.features.splits import DatasetSplit, make_paper_splits
from repro.ml.metrics import classification_report
from repro.telemetry.trace import Trace
from repro.utils.errors import ValidationError

__all__ = ["SplitResult", "PredictionPipeline"]


@dataclass
class SplitResult:
    """Outcome of one (predictor, split) evaluation."""

    split: str
    predictor: str
    y_true: np.ndarray
    y_pred: np.ndarray
    train_seconds: float
    report: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Test-window rows of the feature matrix (metadata for downstream
    #: analyses such as per-cabinet or severity breakdowns).
    test_features: FeatureMatrix | None = None

    @property
    def precision(self) -> float:
        """SBE-class precision."""
        return self.report["sbe"]["precision"]

    @property
    def recall(self) -> float:
        """SBE-class recall."""
        return self.report["sbe"]["recall"]

    @property
    def f1(self) -> float:
        """SBE-class F1 score."""
        return self.report["sbe"]["f1"]


class PredictionPipeline:
    """Holds features and splits; trains and evaluates predictors."""

    BASIC_SCHEMES = ("random", "basic_a", "basic_b", "basic_c")

    def __init__(
        self,
        features: FeatureMatrix,
        splits: list[DatasetSplit] | None = None,
    ) -> None:
        self._features = features
        if splits is None:
            horizon = float(features.meta["start_minute"].max()) / 1440.0 + 1.0
            if horizon >= 84.0 + 14.0 + 28.0:
                splits = make_paper_splits(duration_days=horizon)
            else:
                # Short trace: scale the paper's protocol to the horizon
                # (same 3-window sliding structure, same test:train band).
                train = horizon * 0.6
                test = horizon * 0.12
                splits = make_paper_splits(
                    train_days=train,
                    test_days=test,
                    offsets_days=(0.0, test, 2 * test),
                    duration_days=horizon,
                )
        self._splits = {split.name: split for split in splits}

    @classmethod
    def from_trace(cls, trace: Trace, **kwargs) -> "PredictionPipeline":
        """Build features from ``trace`` and construct the pipeline."""
        return cls(build_features(trace), **kwargs)

    @property
    def features(self) -> FeatureMatrix:
        """The full feature matrix."""
        return self._features

    @property
    def splits(self) -> list[DatasetSplit]:
        """The configured dataset splits, in order."""
        return list(self._splits.values())

    def split(self, name: str) -> DatasetSplit:
        """Look up a split by name (e.g. ``"DS1"``)."""
        try:
            return self._splits[name]
        except KeyError:
            raise ValidationError(
                f"unknown split {name!r}; options: {sorted(self._splits)}"
            ) from None

    def train_test(self, name: str) -> tuple[FeatureMatrix, FeatureMatrix]:
        """Materialize the (train, test) row subsets of one split."""
        split = self.split(name)
        starts = self._features.meta["start_minute"]
        train = self._features.rows(split.train_mask(starts))
        test = self._features.rows(split.test_mask(starts))
        if train.num_samples == 0 or test.num_samples == 0:
            raise ValidationError(f"split {name} produced an empty window")
        return train, test

    # ------------------------------------------------------------------
    def evaluate_twostage(
        self,
        split_name: str,
        model: str = "gbdt",
        *,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
        random_state: int | None = 0,
        fast: bool = False,
    ) -> SplitResult:
        """Train a TwoStage predictor on one split and score its test set."""
        train, test = self.train_test(split_name)
        predictor = TwoStagePredictor(
            model,
            include=include,
            exclude=exclude,
            random_state=random_state,
            fast=fast,
        )
        started = time.perf_counter()
        predictor.fit(train)
        train_seconds = time.perf_counter() - started
        y_pred = predictor.predict(test)
        return SplitResult(
            split=split_name,
            predictor=f"twostage-{model}" if isinstance(model, str) else "twostage",
            y_true=test.y,
            y_pred=y_pred,
            train_seconds=train_seconds,
            report=classification_report(test.y, y_pred),
            test_features=test,
        )

    def evaluate_basic(
        self,
        split_name: str,
        scheme: str,
        *,
        random_state: int | None = 0,
    ) -> SplitResult:
        """Evaluate one of the non-ML baseline schemes on a split."""
        train, test = self.train_test(split_name)
        if scheme == "random":
            baseline = RandomBaseline(random_state=random_state)
        elif scheme == "basic_a":
            baseline = BasicA()
        elif scheme == "basic_b":
            baseline = BasicB()
        elif scheme == "basic_c":
            baseline = BasicC()
        else:
            raise ValidationError(
                f"unknown scheme {scheme!r}; options: {self.BASIC_SCHEMES}"
            )
        started = time.perf_counter()
        baseline.fit(train)
        train_seconds = time.perf_counter() - started
        y_pred = baseline.predict(test)
        return SplitResult(
            split=split_name,
            predictor=scheme,
            y_true=test.y,
            y_pred=y_pred,
            train_seconds=train_seconds,
            report=classification_report(test.y, y_pred),
            test_features=test,
        )
