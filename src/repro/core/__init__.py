"""The paper's prediction framework.

* :mod:`baselines` -- the Random and Basic A/B/C schemes of Table I;
* :mod:`twostage` -- the TwoStage method (Fig. 9): stage 1 passes only
  samples from nodes that have erred before, stage 2 classifies them with
  a machine-learning model;
* :mod:`registry` -- the four stage-2 models (LR, GBDT, SVM, NN) with the
  paper's roles and sensible defaults;
* :mod:`pipeline` -- trace -> features -> split -> train -> evaluate;
* :mod:`evaluation` -- the analysis helpers behind Figs. 10-13 and
  Tables II-VI;
* :mod:`ecc` -- the Discussion-section application: prediction-driven
  dynamic ECC protection.
"""

from repro.core.baselines import BasicA, BasicB, BasicC, RandomBaseline
from repro.core.ecc import EccPolicyReport, EccPolicySimulator
from repro.core.evaluation import (
    cabinet_prediction_error,
    runtime_class_report,
    severity_level_report,
)
from repro.core.pipeline import PredictionPipeline, SplitResult
from repro.core.registry import MODEL_NAMES, make_model
from repro.core.twostage import TwoStagePredictor

__all__ = [
    "BasicA",
    "BasicB",
    "BasicC",
    "RandomBaseline",
    "EccPolicyReport",
    "EccPolicySimulator",
    "cabinet_prediction_error",
    "runtime_class_report",
    "severity_level_report",
    "PredictionPipeline",
    "SplitResult",
    "MODEL_NAMES",
    "make_model",
    "TwoStagePredictor",
]
