"""Prediction-quality analyses behind the paper's Figs. 12-13, Tables V-VI.

All helpers consume a :class:`~repro.core.pipeline.SplitResult` (whose
``test_features`` carries sample metadata) so they compose with any
predictor the pipeline produced.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import SplitResult
from repro.ml.metrics import precision_recall_f1
from repro.topology.machine import Machine
from repro.utils.errors import ValidationError

__all__ = [
    "cabinet_prediction_error",
    "runtime_class_report",
    "severity_level_report",
    "prediction_cdfs",
    "oracle_model_analysis",
    "precision_recall_curve",
]


def _require_meta(result: SplitResult) -> dict[str, np.ndarray]:
    if result.test_features is None:
        raise ValidationError("SplitResult carries no test feature metadata")
    return result.test_features.meta


def cabinet_prediction_error(result: SplitResult, machine: Machine) -> np.ndarray:
    """Per-cabinet (ground truth - prediction) counts, shape (y, x).

    The paper's Fig. 13(b): for each cabinet, the difference between the
    number of SBE-affected samples and the number of predicted-positive
    samples over the test window.
    """
    meta = _require_meta(result)
    nodes = meta["node_id"].astype(int)
    cab = machine.cabinet_linear[nodes]
    truth = np.bincount(cab, weights=result.y_true, minlength=machine.num_cabinets)
    pred = np.bincount(cab, weights=result.y_pred, minlength=machine.num_cabinets)
    grid_shape = (machine.config.grid_y, machine.config.grid_x)
    return (truth - pred).reshape(grid_shape)


def prediction_cdfs(result: SplitResult, machine: Machine) -> dict[str, np.ndarray]:
    """Per-cabinet SBE occurrence counts for ground truth, prediction, and
    true positives (paper Fig. 13(a) plots their CDFs)."""
    meta = _require_meta(result)
    nodes = meta["node_id"].astype(int)
    cab = machine.cabinet_linear[nodes]
    n = machine.num_cabinets
    true_positive = (result.y_true == 1) & (result.y_pred == 1)
    return {
        "ground_truth": np.bincount(cab, weights=result.y_true, minlength=n),
        "prediction": np.bincount(cab, weights=result.y_pred, minlength=n),
        "true_positives": np.bincount(
            cab, weights=true_positive.astype(float), minlength=n
        ),
    }


def runtime_class_report(
    result: SplitResult, *, quantile: float = 0.25
) -> dict[str, dict[str, float]]:
    """Precision/recall/F1 for all, short-running, and long-running apps.

    Short-running samples fall in the bottom ``quantile`` of test-window
    run durations, long-running in the top ``quantile`` (paper Table V
    uses the 25th/75th percentiles).
    """
    meta = _require_meta(result)
    durations = meta["duration_minutes"].astype(float)
    lo = np.quantile(durations, quantile)
    hi = np.quantile(durations, 1.0 - quantile)
    masks = {
        "all": np.ones(durations.size, dtype=bool),
        "short": durations <= lo,
        "long": durations >= hi,
    }
    out = {}
    for name, mask in masks.items():
        if not mask.any():
            out[name] = {"precision": 0.0, "recall": 0.0, "f1": 0.0}
            continue
        p, r, f1 = precision_recall_f1(result.y_true[mask], result.y_pred[mask])
        out[name] = {"precision": p, "recall": r, "f1": f1}
    return out


def oracle_model_analysis(
    results: dict[str, SplitResult], machine: Machine
) -> dict[str, object]:
    """Per-cabinet oracle model choice vs one global model (paper §VII-D1).

    The paper checks whether TwoStage+GBDT is only good "in selected
    sections of the machine": it compares the global F1 of each model
    against an *oracle* that picks, per cabinet, whichever model scores
    best there.  The oracle's improvement over the best global model was
    only 0.01-0.02 on Titan.  ``results`` maps model name to its
    :class:`SplitResult` on one split (same split for all).

    Returns the global F1 per model, the oracle F1, the improvement over
    the best single model, and the per-cabinet winning model names.
    """
    if not results:
        raise ValidationError("results must contain at least one model")
    names = sorted(results)
    first = results[names[0]]
    meta = _require_meta(first)
    cab = machine.cabinet_linear[meta["node_id"].astype(int)]
    y_true = first.y_true
    for name in names[1:]:
        if not np.array_equal(results[name].y_true, y_true):
            raise ValidationError("all results must share one test window")

    global_f1 = {
        name: precision_recall_f1(result.y_true, result.y_pred)[2]
        for name, result in results.items()
    }
    best_global = max(global_f1, key=global_f1.get)

    oracle_pred = np.zeros_like(y_true)
    winners: dict[int, str] = {}
    for cabinet in np.unique(cab):
        rows = cab == cabinet
        if not rows.any():
            continue
        best_name, best_score = best_global, -1.0
        for name in names:
            pred = results[name].y_pred[rows]
            if y_true[rows].sum() == 0 and pred.sum() == 0:
                score = 1.0  # nothing to find, nothing claimed
            else:
                score = precision_recall_f1(y_true[rows], pred)[2]
            if score > best_score:
                best_name, best_score = name, score
        winners[int(cabinet)] = best_name
        oracle_pred[rows] = results[best_name].y_pred[rows]

    oracle_f1 = precision_recall_f1(y_true, oracle_pred)[2]
    return {
        "global_f1": global_f1,
        "best_global_model": best_global,
        "oracle_f1": oracle_f1,
        "oracle_gain": oracle_f1 - global_f1[best_global],
        "winning_model_per_cabinet": winners,
    }


def precision_recall_curve(
    y_true: np.ndarray, proba: np.ndarray, *, num_thresholds: int = 50
) -> dict[str, np.ndarray]:
    """Precision/recall/F1 across decision thresholds.

    The paper notes precision and recall "sometimes can be conflicting";
    this sweep exposes the trade-off the F1 metric condenses.
    """
    y_true = np.asarray(y_true).astype(int).ravel()
    proba = np.asarray(proba, dtype=float).ravel()
    if y_true.shape != proba.shape:
        raise ValidationError("y_true and proba must share one shape")
    thresholds = np.linspace(0.0, 1.0, int(num_thresholds), endpoint=False)
    precisions = np.empty(thresholds.size)
    recalls = np.empty(thresholds.size)
    f1s = np.empty(thresholds.size)
    for i, threshold in enumerate(thresholds):
        pred = (proba >= threshold).astype(int)
        precisions[i], recalls[i], f1s[i] = precision_recall_f1(y_true, pred)
    return {
        "thresholds": thresholds,
        "precision": precisions,
        "recall": recalls,
        "f1": f1s,
    }


def severity_level_report(result: SplitResult) -> dict[str, float]:
    """Fraction of SBE-affected samples correctly labelled, per severity.

    SBE-affected test samples are grouped into quartiles of their SBE
    count — Light, Moderate, Severe, Extreme — and each level reports its
    correctly-classified percentage (paper Table VI).
    """
    meta = _require_meta(result)
    counts = meta["sbe_count"].astype(float)
    affected = result.y_true == 1
    if not affected.any():
        raise ValidationError("test window has no SBE-affected samples")
    affected_counts = counts[affected]
    correct = (result.y_pred[affected] == 1).astype(float)
    # Quartile edges over SBE-affected samples only; severity rises with
    # count.  Ties are common for count == 1, so edges may coincide; rank
    # percentiles keep the buckets near-equal regardless.
    order = np.argsort(affected_counts, kind="mergesort")
    ranks = np.empty(order.size)
    ranks[order] = np.arange(order.size)
    quartile = np.minimum((ranks / order.size * 4).astype(int), 3)
    names = ("light", "moderate", "severe", "extreme")
    return {
        names[level]: float(correct[quartile == level].mean())
        if (quartile == level).any()
        else 0.0
        for level in range(4)
    }
