"""The TwoStage prediction method (paper Fig. 9 and Section VI-C).

Stage 1 asks, per sample, "has this node seen an SBE before?" — evaluated
on the training window.  Samples from never-erred nodes are predicted
SBE-free outright.  Stage 2 runs a machine-learning classifier, trained
*only* on offender-node samples, over the samples that pass stage 1.

The method's three advantages (paper): a much smaller training set, no
noise from error-free nodes, and a repaired class balance (roughly 2:1
instead of ~50:1).  Its known cost, which the paper accepts: SBEs on
previously error-free nodes are always missed, so the model is retrained
periodically.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import make_model, needs_scaling
from repro.features.builder import FeatureMatrix
from repro.ml.base import BaseClassifier
from repro.ml.preprocessing import StandardScaler
from repro.utils.errors import NotFittedError, ValidationError

__all__ = ["TwoStagePredictor"]


class TwoStagePredictor:
    """Offender-node filter (stage 1) + ML classifier (stage 2).

    Parameters
    ----------
    model:
        A model name from :data:`repro.core.registry.MODEL_NAMES` or an
        already-constructed classifier instance.
    include / exclude:
        Feature-tag selections forwarded to
        :meth:`repro.features.builder.FeatureMatrix.columns`; ``None``
        keeps every feature.  The paper's feature ablations are expressed
        through these.
    scale:
        Standardize features before the stage-2 model.  Defaults to the
        model's registry preference when ``model`` is a name, else True
        for safety.
    random_state:
        Seed for the stage-2 model when built from a name.
    fast:
        Use reduced-capacity models (unit tests).
    """

    def __init__(
        self,
        model: str | BaseClassifier = "gbdt",
        *,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
        scale: bool | None = None,
        random_state: int | np.random.Generator | None = None,
        fast: bool = False,
    ) -> None:
        if isinstance(model, str):
            self.model_name = model
            self._model = make_model(model, random_state=random_state, fast=fast)
            self._scale = needs_scaling(model) if scale is None else scale
        else:
            self.model_name = type(model).__name__
            self._model = model
            self._scale = True if scale is None else scale
        self.include = include
        self.exclude = exclude
        self._scaler: StandardScaler | None = None
        self._offenders: np.ndarray | None = None
        self._feature_names: list[str] | None = None

    # ------------------------------------------------------------------
    @property
    def model(self) -> BaseClassifier:
        """The stage-2 classifier."""
        return self._model

    @property
    def offender_nodes(self) -> np.ndarray:
        """Stage-1 offender node ids learned from the training window."""
        if self._offenders is None:
            raise NotFittedError("TwoStagePredictor is not fitted")
        return self._offenders.copy()

    @property
    def feature_names(self) -> list[str]:
        """Names of the stage-2 input columns."""
        if self._feature_names is None:
            raise NotFittedError("TwoStagePredictor is not fitted")
        return list(self._feature_names)

    # ------------------------------------------------------------------
    def fit(self, features: FeatureMatrix) -> "TwoStagePredictor":
        """Learn stage 1 and train stage 2 on offender-node samples only."""
        erred = features.meta["sbe_count"] > 0
        self._offenders = np.unique(features.meta["node_id"][erred])
        if self._offenders.size == 0:
            raise ValidationError(
                "no offender nodes in the training window; TwoStage cannot train"
            )
        stage2_mask = np.isin(features.meta["node_id"], self._offenders)
        stage2 = features.rows(stage2_mask)
        X, names = stage2.columns(include=self.include, exclude=self.exclude)
        self._feature_names = names
        if self._scale:
            self._scaler = StandardScaler()
            X = self._scaler.fit_transform(X)
        else:
            self._scaler = None
        self._model.fit(X, stage2.y)
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """Binary SBE predictions for every sample."""
        proba = self.predict_proba(features)
        return (proba >= self._model.threshold).astype(int)

    def predict_proba(self, features: FeatureMatrix) -> np.ndarray:
        """SBE probability per sample (0 for stage-1 rejected samples)."""
        if self._offenders is None:
            raise NotFittedError("TwoStagePredictor is not fitted")
        passed = np.isin(features.meta["node_id"], self._offenders)
        proba = np.zeros(features.num_samples)
        if passed.any():
            subset = features.rows(passed)
            X, _ = subset.columns(include=self.include, exclude=self.exclude)
            if self._scaler is not None:
                X = self._scaler.transform(X)
            proba[passed] = self._model.predict_proba(X)
        return proba

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Ranking scores per sample (stage-1 rejected samples score 0).

        Mirrors :meth:`repro.ml.base.BaseClassifier.decision_scores`: the
        serving layer ranks alerts by this value.
        """
        return self.predict_proba(features)

    def stage1_pass_mask(self, features: FeatureMatrix) -> np.ndarray:
        """Boolean mask of samples forwarded to stage 2."""
        if self._offenders is None:
            raise NotFittedError("TwoStagePredictor is not fitted")
        return np.isin(features.meta["node_id"], self._offenders)

    def kernel_stats(self) -> dict:
        """Scoring-kernel summary for the stage-2 model (observability).

        Reports the process-wide backend plus, when stage 2 is a
        flattened GBDT, the flat-forest shape the hot path traverses.
        Purely informational — never part of any digest.
        """
        from repro.ml.kernels import get_backend

        stats: dict = {
            "backend": get_backend(),
            "flattened": False,
            "n_trees": 0,
            "n_nodes": 0,
        }
        flat = getattr(self._model, "_flat", None)
        if flat is not None:
            stats.update(flattened=True, n_trees=flat.n_trees, n_nodes=flat.n_nodes)
        return stats
