"""Non-ML baseline prediction schemes (paper Table I).

* ``Random`` -- coin flip (p = 0.5) regardless of the sample.
* ``Basic A`` -- any run on a previously-SBE-affected *node* is predicted
  SBE-affected.
* ``Basic B`` -- any run of a previously-SBE-affected *application* is
  predicted SBE-affected.
* ``Basic C`` -- only runs of the *top 20%* SBE-affected applications (by
  training-period SBE count) are predicted SBE-affected.

All schemes consume the :class:`~repro.features.builder.FeatureMatrix`
metadata (node/app ids and observed SBE counts), never the feature matrix
itself.
"""

from __future__ import annotations

import numpy as np

from repro.features.builder import FeatureMatrix
from repro.utils.errors import NotFittedError
from repro.utils.rng import child_rng
from repro.utils.validation import check_fraction

__all__ = ["RandomBaseline", "BasicA", "BasicB", "BasicC"]


class RandomBaseline:
    """Predicts SBE with probability 0.5, independent of the sample."""

    def __init__(self, random_state: int | np.random.Generator | None = None) -> None:
        self._rng = child_rng(random_state)

    def fit(self, features: FeatureMatrix) -> "RandomBaseline":
        """No-op; present for interface symmetry."""
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """Coin-flip labels for each sample."""
        return (self._rng.random(features.num_samples) < 0.5).astype(int)

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Uninformative ranking scores: 0.5 for every sample."""
        return np.full(features.num_samples, 0.5)


class BasicA:
    """Offender-node scheme: erred-before nodes always predicted positive."""

    def __init__(self) -> None:
        self._offenders: set[int] | None = None

    @property
    def offender_nodes(self) -> set[int]:
        """Node ids observed to err during training."""
        if self._offenders is None:
            raise NotFittedError("BasicA is not fitted")
        return set(self._offenders)

    def fit(self, features: FeatureMatrix) -> "BasicA":
        """Record which nodes erred in the training window."""
        erred = features.meta["sbe_count"] > 0
        self._offenders = set(features.meta["node_id"][erred].tolist())
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """1 for samples on offender nodes, 0 elsewhere."""
        if self._offenders is None:
            raise NotFittedError("BasicA is not fitted")
        nodes = features.meta["node_id"]
        offenders = np.asarray(sorted(self._offenders), dtype=nodes.dtype)
        return np.isin(nodes, offenders).astype(int)

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Hard labels as ranking scores (the scheme has no margin)."""
        return self.predict(features).astype(float)


class BasicB:
    """Offender-application scheme: erred-before apps predicted positive."""

    def __init__(self) -> None:
        self._apps: set[int] | None = None

    def fit(self, features: FeatureMatrix) -> "BasicB":
        """Record which applications erred in the training window."""
        erred = features.meta["sbe_count"] > 0
        self._apps = set(features.meta["app_id"][erred].tolist())
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """1 for samples of offender applications, 0 elsewhere."""
        if self._apps is None:
            raise NotFittedError("BasicB is not fitted")
        apps = features.meta["app_id"]
        offender_apps = np.asarray(sorted(self._apps), dtype=apps.dtype)
        return np.isin(apps, offender_apps).astype(int)

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Hard labels as ranking scores (the scheme has no margin)."""
        return self.predict(features).astype(float)


class BasicC:
    """Top-offender-application scheme (top 20% by training SBE count)."""

    def __init__(self, *, top_fraction: float = 0.2) -> None:
        check_fraction(top_fraction, "top_fraction", inclusive=False)
        self.top_fraction = top_fraction
        self._apps: set[int] | None = None

    def fit(self, features: FeatureMatrix) -> "BasicC":
        """Rank SBE-affected applications and keep the top fraction."""
        apps = features.meta["app_id"]
        counts = np.zeros(int(apps.max()) + 1, dtype=np.int64)
        np.add.at(counts, apps, features.meta["sbe_count"])
        affected = np.nonzero(counts > 0)[0]
        if affected.size == 0:
            self._apps = set()
            return self
        k = max(1, int(np.ceil(self.top_fraction * affected.size)))
        ranked = affected[np.argsort(counts[affected])[::-1]]
        self._apps = set(ranked[:k].tolist())
        return self

    def predict(self, features: FeatureMatrix) -> np.ndarray:
        """1 for samples of top offender applications, 0 elsewhere."""
        if self._apps is None:
            raise NotFittedError("BasicC is not fitted")
        apps = features.meta["app_id"]
        if not self._apps:
            return np.zeros(features.num_samples, dtype=int)
        offender_apps = np.asarray(sorted(self._apps), dtype=apps.dtype)
        return np.isin(apps, offender_apps).astype(int)

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Hard labels as ranking scores (the scheme has no margin)."""
        return self.predict(features).astype(float)
