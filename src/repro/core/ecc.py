"""Prediction-driven dynamic ECC protection (paper Section VIII).

The Discussion section motivates the whole framework: ECC costs real
performance (up to ~10% on memory-bound GPU codes), so a good SBE
predictor lets the system keep ECC *off* for runs predicted safe and *on*
for runs predicted at risk.  :class:`EccPolicySimulator` replays a test
window's predictions and accounts for:

* core-hours saved by disabling ECC on predicted-safe runs;
* exposed SBEs — errors that occurred while ECC was off (the policy's
  risk, induced by false negatives);
* re-execution cost for exposed runs, if the operator's policy is to
  re-run them (the paper's first deployment mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import SplitResult
from repro.utils.errors import ValidationError
from repro.utils.validation import check_fraction

__all__ = ["EccPolicyReport", "EccPolicySimulator"]


@dataclass(frozen=True)
class EccPolicyReport:
    """Outcome of replaying one policy over a test window."""

    policy: str
    total_core_hours: float
    ecc_off_core_hours: float
    overhead_saved_core_hours: float
    exposed_sbe_samples: int
    reexecution_core_hours: float
    net_saved_core_hours: float

    @property
    def ecc_off_fraction(self) -> float:
        """Fraction of core-hours executed with ECC disabled."""
        if self.total_core_hours == 0:
            return 0.0
        return self.ecc_off_core_hours / self.total_core_hours

    def summary_rows(self) -> list[tuple[str, float]]:
        """Rows for tabular display."""
        return [
            ("total core-hours", self.total_core_hours),
            ("ECC-off core-hours", self.ecc_off_core_hours),
            ("overhead saved (core-hours)", self.overhead_saved_core_hours),
            ("exposed SBE samples", float(self.exposed_sbe_samples)),
            ("re-execution cost (core-hours)", self.reexecution_core_hours),
            ("net saved (core-hours)", self.net_saved_core_hours),
        ]


class EccPolicySimulator:
    """Replays ECC on/off policies against observed outcomes.

    Parameters
    ----------
    ecc_overhead:
        Fraction of performance lost with ECC enabled (paper cites up to
        ~10% for real GPU applications).
    reexecute_exposed:
        Whether runs that hit an SBE with ECC off are re-executed (with
        ECC on), charging their core-hours again times ``1 +
        ecc_overhead``.
    """

    def __init__(
        self,
        *,
        ecc_overhead: float = 0.10,
        reexecute_exposed: bool = True,
    ) -> None:
        check_fraction(ecc_overhead, "ecc_overhead")
        self.ecc_overhead = ecc_overhead
        self.reexecute_exposed = reexecute_exposed

    def replay(self, result: SplitResult, *, policy: str = "predictive") -> EccPolicyReport:
        """Account one policy over the test window of ``result``.

        Policies: ``"predictive"`` turns ECC off when the predictor says
        SBE-free; ``"always_on"`` and ``"always_off"`` are the static
        baselines the paper argues against.
        """
        if result.test_features is None:
            raise ValidationError("SplitResult carries no test feature metadata")
        meta = result.test_features.meta
        core_hours = meta["gpu_core_hours"].astype(float) / np.maximum(
            meta["n_nodes"].astype(float), 1.0
        )  # per-node share of the run
        total = float(core_hours.sum())

        if policy == "predictive":
            ecc_off = result.y_pred == 0
        elif policy == "always_on":
            ecc_off = np.zeros(core_hours.size, dtype=bool)
        elif policy == "always_off":
            ecc_off = np.ones(core_hours.size, dtype=bool)
        else:
            raise ValidationError(
                f"unknown policy {policy!r}; options: predictive, always_on, always_off"
            )

        off_hours = float(core_hours[ecc_off].sum())
        saved = self.ecc_overhead * off_hours
        exposed = ecc_off & (result.y_true == 1)
        reexec = 0.0
        if self.reexecute_exposed:
            reexec = float(core_hours[exposed].sum()) * (1.0 + self.ecc_overhead)
        return EccPolicyReport(
            policy=policy,
            total_core_hours=total,
            ecc_off_core_hours=off_hours,
            overhead_saved_core_hours=saved,
            exposed_sbe_samples=int(exposed.sum()),
            reexecution_core_hours=reexec,
            net_saved_core_hours=saved - reexec,
        )

    def compare_policies(self, result: SplitResult) -> list[EccPolicyReport]:
        """Replay all three policies for side-by-side comparison."""
        return [
            self.replay(result, policy=policy)
            for policy in ("always_on", "predictive", "always_off")
        ]
