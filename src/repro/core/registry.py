"""Factory for the paper's four stage-2 models.

The paper's characterization of each model (Section VI-D) drives the
defaults here: LR is the fast linear baseline; GBDT is the boosted-tree
ensemble that wins on quality; SVM uses the expensive RBF kernel (its
training cost is the point of Table III), and NN is a small MLP (the
paper explicitly avoids deep networks).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.nn import MLPClassifier
from repro.ml.svm import SVC
from repro.utils.errors import ValidationError

__all__ = ["MODEL_NAMES", "make_model", "needs_scaling"]

#: Canonical model names, in the paper's presentation order.
MODEL_NAMES = ("lr", "gbdt", "svm", "nn")

_SCALING = {"lr": True, "gbdt": False, "svm": True, "nn": True}


def needs_scaling(name: str) -> bool:
    """Whether the model expects standardized inputs."""
    if name not in _SCALING:
        raise ValidationError(f"unknown model: {name!r}; options: {MODEL_NAMES}")
    return _SCALING[name]


def make_model(
    name: str,
    *,
    random_state: int | np.random.Generator | None = None,
    fast: bool = False,
) -> BaseClassifier:
    """Instantiate a stage-2 model by name.

    ``fast=True`` shrinks capacity/iterations for unit tests; experiment
    code always uses the full configuration.
    """
    if name == "lr":
        return LogisticRegression(
            class_weight="balanced",
            epochs=20 if fast else 80,
            learning_rate=0.1,
            l2=1e-4,
            random_state=random_state,
        )
    if name == "gbdt":
        return GradientBoostingClassifier(
            n_estimators=40 if fast else 200,
            learning_rate=0.1,
            max_depth=3 if fast else 5,
            min_samples_leaf=20,
            subsample=0.8,
            class_weight="balanced",
            early_stopping_fraction=0.0 if fast else 0.1,
            random_state=random_state,
        )
    if name == "svm":
        return SVC(
            C=1.0,
            kernel="rbf",
            gamma="scale",
            class_weight="balanced",
            max_train_size=1000 if fast else 4000,
            max_iter=10 if fast else 60,
            random_state=random_state,
        )
    if name == "nn":
        return MLPClassifier(
            hidden_layers=(16,) if fast else (64, 32),
            epochs=15 if fast else 120,
            learning_rate=1e-3,
            class_weight="balanced",
            random_state=random_state,
        )
    raise ValidationError(f"unknown model: {name!r}; options: {MODEL_NAMES}")
