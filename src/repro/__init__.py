"""repro: reproduction of "Machine Learning Models for GPU Error Prediction
in a Large Scale HPC System" (Nie et al., DSN 2018).

Quickstart::

    from repro import ExperimentContext, run_experiment

    context = ExperimentContext(preset="small")
    print(run_experiment("fig10", context).text)

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.topology` -- the Titan-style machine hierarchy;
* :mod:`repro.telemetry` -- the synthetic trace substrate (scheduler,
  power/thermal physics, SBE injection, out-of-band sampler);
* :mod:`repro.features` -- the paper's temporal/spatial/history features;
* :mod:`repro.ml` -- from-scratch LR/GBDT/SVM/NN plus supporting tools;
* :mod:`repro.core` -- the TwoStage prediction framework and baselines;
* :mod:`repro.analysis` -- trace characterization (paper Section III);
* :mod:`repro.faults` -- telemetry fault injection + the sanitizer;
* :mod:`repro.experiments` -- one driver per paper table/figure.
"""

from repro.core import PredictionPipeline, TwoStagePredictor
from repro.experiments import ExperimentContext, run_experiment
from repro.faults import FaultSpec, inject_faults, sanitize_trace
from repro.features import build_features
from repro.telemetry import Trace, TraceConfig, simulate_trace
from repro.topology import Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "PredictionPipeline",
    "TwoStagePredictor",
    "ExperimentContext",
    "run_experiment",
    "build_features",
    "FaultSpec",
    "inject_faults",
    "sanitize_trace",
    "Trace",
    "TraceConfig",
    "simulate_trace",
    "Machine",
    "MachineConfig",
    "__version__",
]
