"""The out-of-band telemetry sampler.

On Titan, temperature and power are "approximately collected every minute
for every node" without instrumenting applications.  The simulator's
sampler mirrors that: one tick = one machine-wide snapshot.  Because months
of snapshots cannot be stored, the sampler keeps

* a fixed one-hour **history ring** per node (enough for the 5/15/30/60
  minute pre-execution windows of the paper's temporal features), and
* vectorized **online (Welford) statistics** per node for the currently
  running aprun: mean/std of the value and of its consecutive deltas, for
  each tracked quantity.

Both are plain numpy arrays indexed by node id, so a tick is a handful of
vector operations regardless of machine size.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["VectorWelford", "HistoryRing", "RUN_STAT_QUANTITIES"]

#: Quantities tracked per running aprun, in column order: the target GPU's
#: temperature and power, the CPU temperature on the same node, and the
#: mean temperature/power of the *other* GPU nodes in the same slot.
RUN_STAT_QUANTITIES = ("gpu_temp", "gpu_power", "cpu_temp", "nei_temp", "nei_power")


class VectorWelford:
    """Per-node online mean/std of a value and of its deltas.

    All state is ``(num_nodes,)`` float arrays; :meth:`update` folds one
    machine-wide snapshot in, :meth:`reset` re-arms a subset of nodes when
    a new aprun starts there, and :meth:`stats` reads the four summary
    statistics (mean, std, delta-mean, delta-std) at aprun completion.
    """

    def __init__(self, num_nodes: int) -> None:
        self._count = np.zeros(num_nodes)
        self._mean = np.zeros(num_nodes)
        self._m2 = np.zeros(num_nodes)
        self._prev = np.zeros(num_nodes)
        self._dcount = np.zeros(num_nodes)
        self._dmean = np.zeros(num_nodes)
        self._dm2 = np.zeros(num_nodes)

    def reset(self, node_ids: np.ndarray) -> None:
        """Clear statistics for ``node_ids`` (a new run starts there)."""
        for array in (
            self._count,
            self._mean,
            self._m2,
            self._dcount,
            self._dmean,
            self._dm2,
        ):
            array[node_ids] = 0.0

    def update(self, values: np.ndarray) -> None:
        """Fold one machine-wide snapshot into every node's statistics."""
        deltas = values - self._prev
        has_prev = self._count >= 1.0
        self._dcount += has_prev
        dc = np.maximum(self._dcount, 1.0)
        d_delta = np.where(has_prev, deltas - self._dmean, 0.0)
        self._dmean += d_delta / dc
        self._dm2 += d_delta * np.where(has_prev, deltas - self._dmean, 0.0)

        self._count += 1.0
        delta = values - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (values - self._mean)
        self._prev = values.copy()

    def stats(self, node_ids: np.ndarray) -> np.ndarray:
        """Return ``(len(node_ids), 4)``: mean, std, delta-mean, delta-std."""
        count = np.maximum(self._count[node_ids], 1.0)
        dcount = np.maximum(self._dcount[node_ids], 1.0)
        mean = self._mean[node_ids]
        std = np.sqrt(np.maximum(self._m2[node_ids] / count, 0.0))
        dmean = np.where(self._dcount[node_ids] > 0, self._dmean[node_ids], 0.0)
        dstd = np.sqrt(np.maximum(self._dm2[node_ids] / dcount, 0.0))
        return np.column_stack([mean, std, dmean, dstd])


class HistoryRing:
    """One-hour circular history of a per-node quantity.

    Columns advance with every tick; :meth:`window_stats` reads the last
    ``k`` snapshots (oldest first) and returns the same four statistics as
    :class:`VectorWelford`, for the requested nodes only.
    """

    def __init__(self, num_nodes: int, capacity_ticks: int) -> None:
        if capacity_ticks < 1:
            raise ValidationError("capacity_ticks must be >= 1")
        self._data = np.zeros((num_nodes, capacity_ticks))
        self._capacity = capacity_ticks
        self._filled = 0
        self._pos = 0

    @property
    def filled(self) -> int:
        """Number of valid snapshots currently held (<= capacity)."""
        return self._filled

    def push(self, values: np.ndarray) -> None:
        """Append one machine-wide snapshot."""
        self._data[:, self._pos] = values
        self._pos = (self._pos + 1) % self._capacity
        self._filled = min(self._filled + 1, self._capacity)

    def window_stats(self, node_ids: np.ndarray, k: int) -> np.ndarray:
        """Stats over the most recent ``min(k, filled)`` snapshots.

        Returns ``(len(node_ids), 4)``: mean, std, delta-mean, delta-std.
        Before any snapshot exists (trace start) all statistics are 0.
        """
        k = min(k, self._filled)
        if k <= 0:
            return np.zeros((node_ids.size, 4))
        cols = (self._pos - k + np.arange(k)) % self._capacity
        window = self._data[np.ix_(node_ids, cols)]
        mean = window.mean(axis=1)
        std = window.std(axis=1)
        if k >= 2:
            deltas = np.diff(window, axis=1)
            dmean = deltas.mean(axis=1)
            dstd = deltas.std(axis=1)
        else:
            dmean = np.zeros(node_ids.size)
            dstd = np.zeros(node_ids.size)
        return np.column_stack([mean, std, dmean, dstd])
