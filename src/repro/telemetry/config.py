"""Configuration objects for the trace simulator.

Every physical and statistical knob of the synthetic-Titan substrate lives
here, grouped by subsystem.  Defaults are calibrated so that the
characterization statistics of a simulated trace match the paper's
Section III (see DESIGN.md, "Calibration targets").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scenarios.events import Scenario
from repro.topology.machine import MachineConfig
from repro.utils.errors import ConfigurationError

__all__ = [
    "WorkloadConfig",
    "PowerConfig",
    "ThermalConfig",
    "ErrorModelConfig",
    "TraceConfig",
]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class WorkloadConfig:
    """Application catalog and batch-job arrival parameters."""

    #: Number of distinct applications (binary names) in the catalog.
    num_applications: int = 64
    #: Zipf exponent of application popularity (1.0 = classic Zipf).
    popularity_exponent: float = 1.1
    #: Target machine utilization (fraction of node-minutes busy).
    target_utilization: float = 0.85
    #: Mean aprun wall-clock minutes (lognormal across applications).
    mean_runtime_minutes: float = 420.0
    #: Dispersion (sigma of log-runtime) across runs of one application.
    runtime_sigma: float = 0.45
    #: Mean nodes per aprun (geometric-ish across applications).
    mean_nodes_per_run: float = 12.0
    #: Maximum nodes a single aprun may occupy.
    max_nodes_per_run: int = 128
    #: Probability that a batch job contains a second aprun.
    second_aprun_probability: float = 0.25
    #: Strength of application "home cabinet" locality (0 disables).
    locality_bias: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigurationError(
                f"target_utilization must be in (0, 1], got {self.target_utilization}"
            )
        if self.num_applications < 2:
            raise ConfigurationError("num_applications must be >= 2")
        if self.mean_runtime_minutes <= 0 or self.mean_nodes_per_run <= 0:
            raise ConfigurationError("runtime and node means must be positive")


@dataclass(frozen=True)
class PowerConfig:
    """Per-node GPU power model (K20X-like envelope)."""

    idle_watts: float = 20.0
    #: Additional watts at 100% GPU utilization.
    dynamic_watts: float = 160.0
    #: Std of multiplicative per-node efficiency variation.
    node_efficiency_sigma: float = 0.04
    #: Std of additive per-tick measurement/workload noise (watts).
    noise_watts: float = 4.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.dynamic_watts <= 0:
            raise ConfigurationError("power levels must be positive")


@dataclass(frozen=True)
class ThermalConfig:
    """RC thermal model for GPU and CPU temperatures."""

    ambient_celsius: float = 24.0
    #: Steady-state degrees per watt of GPU power.
    degrees_per_watt: float = 0.15
    #: Thermal time constant in minutes (larger = slower response).
    time_constant_minutes: float = 18.0
    #: Coupling toward the slot-mean temperature per minute (spatial term).
    neighbor_coupling: float = 0.04
    #: Amplitude of the cabinet cooling-efficiency pattern (degrees).
    cooling_pattern_celsius: float = 4.0
    #: Std of per-node static cooling offset (degrees).
    node_offset_sigma: float = 1.2
    #: Std of per-tick AR noise (degrees).
    noise_celsius: float = 0.35
    #: CPU steady-state degrees per unit CPU utilization.
    cpu_degrees_per_util: float = 22.0
    #: CPU thermal time constant in minutes.
    cpu_time_constant_minutes: float = 10.0

    def __post_init__(self) -> None:
        if self.time_constant_minutes <= 0 or self.cpu_time_constant_minutes <= 0:
            raise ConfigurationError("time constants must be positive")
        if not 0.0 <= self.neighbor_coupling < 1.0:
            raise ConfigurationError("neighbor_coupling must be in [0, 1)")


@dataclass(frozen=True)
class ErrorModelConfig:
    """Modulated-Poisson SBE injection model.

    The per-(run, node) SBE count is Poisson with rate::

        rate = base_rate_per_hour * hours
             * node_susceptibility * app_susceptibility
             * exp(temp_sensitivity * (T_mean - temp_ref))
             * (1 + memory_weight * mem_fraction)
             * (1 + interaction_boost  if T_mean > temp_knee and
                                          P_mean > power_knee else 0)

    Node susceptibility is near zero for ordinary nodes and lognormally
    elevated for a spatially clustered minority of *offender* nodes;
    application susceptibility is heavy-tailed.  A per-(node, day)
    episode modulation (rare multi-day degradation spells) clusters
    errors into bad days.  The
    ``interaction_boost`` term is the deliberate nonlinearity that
    separates GBDT from linear models.
    """

    #: Baseline SBE rate (per hour) for susceptibility 1 at temp_ref.
    base_rate_per_hour: float = 0.0017
    #: Susceptibility of ordinary (non-offender) nodes.
    ordinary_susceptibility: float = 0.000001
    #: Fraction of nodes drawn as elevated-susceptibility offenders.
    offender_node_fraction: float = 0.09
    #: Median susceptibility multiplier of offender nodes.
    offender_median_boost: float = 0.8
    #: Sigma of log-susceptibility among offender nodes.
    offender_sigma: float = 1.1
    #: Expected degradation episodes per node per 100 days.
    episode_rate_per_100_days: float = 1.8
    #: Median episode length in days.
    episode_median_days: float = 8.0
    #: Sigma of log episode length.
    episode_sigma: float = 0.6
    #: Rate multiplier during an episode (before jitter).
    episode_spike_factor: float = 2.0
    #: Rate factor outside episodes.
    quiet_day_factor: float = 0.0003
    #: Lognormal jitter sigma applied on top of episode spikes.
    daily_sigma: float = 0.8
    #: Number of spatial clusters offender nodes concentrate in.
    offender_clusters: int = 14
    #: Fraction of offender nodes placed inside clusters (rest uniform).
    offender_cluster_fraction: float = 0.7
    #: Sigma of log application susceptibility (heavy tail across apps).
    app_sigma: float = 1.4
    #: Reference temperature for the exponential term (deg C).
    temp_ref: float = 38.0
    #: Exponential temperature sensitivity (per deg C).
    temp_sensitivity: float = 0.50
    #: Weight of the memory-utilization multiplier.
    memory_weight: float = 2.0
    #: Temperature knee of the nonlinear interaction (deg C).
    temp_knee: float = 42.0
    #: Power knee of the nonlinear interaction (watts).
    power_knee: float = 120.0
    #: Rate multiplier applied above both knees.
    interaction_boost: float = 12.0
    #: Cap on the composed per-hour rate before the day factor; bounds the
    #: multiplicative stack so even extreme node/app/temperature
    #: combinations stay quiet outside episodes.
    max_rate_per_hour: float = 0.8
    #: Per-(run, node) Poisson rates below this resolve to zero without a
    #: draw.  Each pair has its own RNG substream (the sharded simulator
    #: relies on that), and skipping the quiet majority keeps substream
    #: setup off the hot path; the truncated probability mass per pair is
    #: bounded by the threshold itself.
    sbe_skip_lambda: float = 1e-7

    def __post_init__(self) -> None:
        if not 0.0 < self.offender_node_fraction < 1.0:
            raise ConfigurationError("offender_node_fraction must be in (0, 1)")
        if self.base_rate_per_hour <= 0:
            raise ConfigurationError("base_rate_per_hour must be positive")


@dataclass(frozen=True)
class TraceConfig:
    """Top-level simulation configuration."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    errors: ErrorModelConfig = field(default_factory=ErrorModelConfig)
    #: Simulated trace length in days.
    duration_days: float = 126.0
    #: Out-of-band sampling interval (minutes per tick).
    tick_minutes: float = 5.0
    #: Root seed for all random streams.
    seed: int = 2018
    #: Node ids whose full telemetry series are recorded (for Fig. 8).
    record_nodes: tuple[int, ...] = ()
    #: Optional cluster-lifecycle scenario (drift, storms, maintenance…).
    #: ``None`` and an empty :class:`~repro.scenarios.events.Scenario` are
    #: both exact no-ops: they compile to nothing, serialize to nothing,
    #: and leave every digest bit-identical.
    scenario: Scenario | None = None

    def __post_init__(self) -> None:
        if self.duration_days <= 0:
            raise ConfigurationError("duration_days must be positive")
        if self.scenario is not None and not isinstance(self.scenario, Scenario):
            raise ConfigurationError(
                f"scenario must be a repro.scenarios Scenario or None, "
                f"got {type(self.scenario).__name__}"
            )
        if self.tick_minutes <= 0:
            raise ConfigurationError("tick_minutes must be positive")
        if self.tick_minutes > 60:
            raise ConfigurationError(
                "tick_minutes must be <= 60 (pre-run windows span one hour)"
            )

    @property
    def duration_minutes(self) -> float:
        """Trace length in simulated minutes."""
        return self.duration_days * MINUTES_PER_DAY

    @property
    def num_ticks(self) -> int:
        """Number of sampler ticks in the trace."""
        return int(self.duration_minutes / self.tick_minutes)
