"""Synthetic Titan telemetry substrate.

The paper's dataset is six months of proprietary traces from the Titan
supercomputer: batch jobs and apruns, per-minute out-of-band GPU
temperature/power samples, and nvidia-smi SBE counter snapshots taken
before and after each batch job.  This package replaces that archive with
a calibrated simulator (see DESIGN.md, "Substitutions"):

* :mod:`applications` -- a synthetic application catalog with heavy-tailed
  popularity and SBE susceptibility;
* :mod:`scheduler` -- batch-job arrivals and locality-aware node allocation;
* :mod:`power` / :mod:`thermal` -- per-node power draw and RC thermal
  dynamics with slot-neighbour coupling and non-uniform cabinet cooling;
* :mod:`errors` -- modulated-Poisson SBE injection;
* :mod:`sampler` -- the out-of-band sampler (ring buffers + online stats);
* :mod:`nvidia_smi` -- snapshot-only SBE counters, as on the real system;
* :mod:`simulator` -- the tick loop tying it all together;
* :mod:`trace` -- the columnar result container with save/load.
"""

from repro.telemetry.applications import ApplicationCatalog, ApplicationSpec
from repro.telemetry.config import (
    ErrorModelConfig,
    PowerConfig,
    ThermalConfig,
    TraceConfig,
    WorkloadConfig,
)
from repro.telemetry.nvidia_smi import NvidiaSmiEmulator
from repro.telemetry.scheduler import ScheduledRun, WorkloadScheduler
from repro.telemetry.simulator import TraceSimulator, simulate_trace
from repro.telemetry.trace import Trace

__all__ = [
    "ApplicationCatalog",
    "ApplicationSpec",
    "ErrorModelConfig",
    "PowerConfig",
    "ThermalConfig",
    "TraceConfig",
    "WorkloadConfig",
    "NvidiaSmiEmulator",
    "ScheduledRun",
    "WorkloadScheduler",
    "TraceSimulator",
    "simulate_trace",
    "Trace",
]
