"""Partition-independent per-tick noise streams.

The physics models need one Gaussian draw per node per tick.  A single
machine-wide stream would make every node's noise depend on how many
nodes precede it in the draw — which is exactly what sharded simulation
cannot reproduce, because a shard never draws for nodes it does not own.
Instead each cabinet **row** owns an independent child stream (rows are
the shard-planning unit, see :mod:`repro.topology.sharding`): the serial
simulator draws row streams 0..grid_y-1 in order and concatenates, a
shard draws only the streams of its rows, and both see identical values
for every node.
"""

from __future__ import annotations

import numpy as np

from repro.topology.machine import MachineConfig
from repro.topology.sharding import ShardSpan, full_span
from repro.utils.rng import SeedSequenceFactory

__all__ = ["RowNoise"]


class RowNoise:
    """Per-cabinet-row Gaussian noise over a span of the machine.

    Each row's generator is the ``(name, row)`` child stream of the seed
    factory, so draws for one row never depend on any other row's — the
    property that makes a sharded run bit-identical to the serial one.
    """

    def __init__(
        self,
        seeds: SeedSequenceFactory,
        name: str,
        config: MachineConfig,
        span: ShardSpan | None = None,
    ) -> None:
        span = span or full_span(config)
        self._rngs = [
            seeds.generator(name, row) for row in range(span.row_lo, span.row_hi)
        ]
        self._row_nodes = config.grid_x * config.nodes_per_cabinet
        self._num_nodes = span.num_nodes

    def normal(self, scale: float) -> np.ndarray:
        """One centred Gaussian draw per node of the span, row by row."""
        if len(self._rngs) == 1:
            return self._rngs[0].normal(0.0, scale, self._num_nodes)
        return np.concatenate(
            [rng.normal(0.0, scale, self._row_nodes) for rng in self._rngs]
        )
