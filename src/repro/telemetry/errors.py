"""Modulated-Poisson SBE injection.

The paper cannot attribute SBEs to root causes; what it *measures* is that
SBEs concentrate on a small minority of offender nodes and applications,
that even offender nodes err on few days (80% of them on < 20% of days),
that SBE-affected periods are hotter and draw more power, and that
substantial randomness remains.  This module generates exactly that
structure.  The per-(run, node) SBE count is Poisson with a rate
multiplying

* a latent per-node susceptibility: near zero for ordinary nodes, heavy-
  tailed (lognormal) for a spatially clustered minority of offenders;
* the application's latent susceptibility (heavy-tailed across apps);
* an exponential temperature term and a linear memory-pressure term;
* a *nonlinear* boost when mean temperature and power both exceed knees —
  the feature interaction a linear model cannot represent;
* a per-(node, day) episode modulation — rare multi-day degradation
  spells with jittered intensity — which clusters errors into bad days
  and bounds how predictable any model can be.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios.compiler import CompiledScenario
from repro.telemetry.config import ErrorModelConfig
from repro.topology.machine import Machine
from repro.utils.rng import SeedSequenceFactory

__all__ = ["SbeErrorModel"]


class SbeErrorModel:
    """Draws SBE counts for completed (run, node) pairs."""

    def __init__(
        self,
        config: ErrorModelConfig,
        machine: Machine,
        seeds: SeedSequenceFactory,
        *,
        num_days: int,
        scenario: CompiledScenario | None = None,
    ) -> None:
        self._config = config
        self._machine = machine
        self._seeds = seeds
        self._node_susceptibility = self._draw_node_susceptibility(
            seeds.generator("node-susceptibility")
        )
        # Scenario hooks, both exact no-ops when off.  Maintenance events
        # turn susceptibility into piecewise-constant epochs (redraws come
        # from the "scenario-maintenance" stream, full-region draws, so
        # every shard reconstructs identical epochs); storms and aging
        # multiply the composed rate before the cap.
        self._scenario = scenario
        self._epoch_starts: np.ndarray | None = None
        self._sus_epochs: list[np.ndarray] | None = None
        if scenario is not None and scenario.has_maintenance:
            self._epoch_starts, self._sus_epochs = scenario.susceptibility_epochs(
                self._node_susceptibility, seeds, config
            )
        # Per-(node, day) episode modulation: each node suffers occasional
        # multi-day degradation *episodes* during which its rate spikes;
        # outside episodes the rate is strongly suppressed.  Episodes make
        # offender nodes err on a small fraction of distinct days (paper:
        # 80% of offenders err on < 20% of days) while keeping errors
        # temporally clustered — which is also what makes the paper's SBE
        # *history* features informative.  A lognormal jitter keeps
        # episode days unequal.  +2 days of slack covers runs straddling
        # the horizon.
        day_rng = seeds.generator("daily-modulation")
        total_days = int(num_days) + 2
        in_episode = np.zeros((machine.num_nodes, total_days), dtype=bool)
        expected_episodes = config.episode_rate_per_100_days * total_days / 100.0
        for node in range(machine.num_nodes):
            for _ in range(int(day_rng.poisson(expected_episodes))):
                start = int(day_rng.integers(0, total_days))
                length = max(
                    1,
                    int(
                        round(
                            config.episode_median_days
                            * day_rng.lognormal(0.0, config.episode_sigma)
                        )
                    ),
                )
                in_episode[node, start : start + length] = True
        jitter = np.exp(
            day_rng.normal(
                -0.5 * config.daily_sigma**2,
                config.daily_sigma,
                size=(machine.num_nodes, total_days),
            )
        )
        self._day_factors = np.where(
            in_episode,
            config.episode_spike_factor * jitter,
            config.quiet_day_factor,
        )

    @property
    def node_susceptibility(self) -> np.ndarray:
        """Latent per-node susceptibility (ground truth; diagnostics only)."""
        return self._node_susceptibility

    def _draw_node_susceptibility(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self._config
        machine = self._machine
        n = machine.num_nodes
        susceptibility = np.full(n, cfg.ordinary_susceptibility)

        n_offenders = max(1, int(round(cfg.offender_node_fraction * n)))
        n_clustered = int(round(cfg.offender_cluster_fraction * n_offenders))
        # Clustered offenders: pick cluster-center cabinets, then sample
        # offender nodes near them, giving the patchy grid of Fig. 1.
        n_clusters = min(cfg.offender_clusters, machine.num_cabinets)
        centers = rng.choice(machine.num_cabinets, size=n_clusters, replace=False)
        center_x = centers % machine.config.grid_x
        center_y = centers // machine.config.grid_x
        dist = np.min(
            np.abs(machine.cabinet_x[None, :] - center_x[:, None])
            + np.abs(machine.cabinet_y[None, :] - center_y[:, None]),
            axis=0,
        ).astype(float)
        weights = np.exp(-dist / 1.5)
        weights /= weights.sum()
        clustered = rng.choice(n, size=min(n_clustered, n), replace=False, p=weights)
        remaining = np.setdiff1d(np.arange(n), clustered)
        uniform = rng.choice(
            remaining,
            size=min(remaining.size, max(0, n_offenders - clustered.size)),
            replace=False,
        )
        offenders = np.concatenate([clustered, uniform])
        boost = cfg.offender_median_boost * np.exp(
            rng.normal(0.0, cfg.offender_sigma, offenders.size)
        )
        susceptibility[offenders] = boost
        return susceptibility

    def rate(
        self,
        node_ids: np.ndarray,
        app_susceptibility: float,
        start_minute: float,
        duration_minutes: float,
        temp_mean: np.ndarray,
        power_mean: np.ndarray,
        memory_fraction: float,
    ) -> np.ndarray:
        """Expected SBE count per node for one completed run."""
        cfg = self._config
        hours = duration_minutes / 60.0
        day = min(int(start_minute // 1440), self._day_factors.shape[1] - 1)
        thermal = np.exp(cfg.temp_sensitivity * (temp_mean - cfg.temp_ref))
        memory = 1.0 + cfg.memory_weight * memory_fraction
        interaction = np.where(
            (temp_mean > cfg.temp_knee) & (power_mean > cfg.power_knee),
            1.0 + cfg.interaction_boost,
            1.0,
        )
        if self._sus_epochs is None:
            susceptibility = self._node_susceptibility[node_ids]
        else:
            epoch = int(
                np.searchsorted(self._epoch_starts, start_minute, side="right") - 1
            )
            susceptibility = self._sus_epochs[epoch][node_ids]
        hourly = (
            cfg.base_rate_per_hour
            * susceptibility
            * app_susceptibility
            * thermal
            * memory
            * interaction
        )
        if self._scenario is not None and self._scenario.has_error_factors:
            hourly = hourly * self._scenario.error_rate_factor(node_ids, start_minute)
        hourly = np.minimum(hourly, cfg.max_rate_per_hour)
        return hourly * self._day_factors[node_ids, day] * hours

    def sample_counts(
        self,
        run_id: int,
        node_ids: np.ndarray,
        app_susceptibility: float,
        start_minute: float,
        duration_minutes: float,
        temp_mean: np.ndarray,
        power_mean: np.ndarray,
        memory_fraction: float,
    ) -> np.ndarray:
        """Poisson SBE counts per node for one completed run.

        Every ``(run, node)`` pair draws from its own named substream, so
        the count depends only on ``(root seed, run_id, node_id, rate)``
        — never on how many other pairs were drawn before it.  That is
        what lets a sharded simulation, which only ever sees the subset
        of a run's nodes it owns, reproduce the serial draw bit for bit.

        Rates below ``config.sbe_skip_lambda`` resolve to zero without a
        draw: the skipped probability mass is bounded by the threshold
        itself (default 1e-7 per pair, far below one expected error per
        trace) and skipping keeps the per-pair stream setup off the hot
        path for the overwhelmingly quiet majority of samples.
        """
        lam = np.minimum(
            self.rate(
                node_ids,
                app_susceptibility,
                start_minute,
                duration_minutes,
                temp_mean,
                power_mean,
                memory_fraction,
            ),
            1e6,
        )
        counts = np.zeros(node_ids.size, dtype=np.int64)
        for i in np.flatnonzero(lam >= self._config.sbe_skip_lambda):
            rng = self._seeds.generator("sbe-draws", int(run_id), int(node_ids[i]))
            counts[i] = rng.poisson(float(lam[i]))
        return counts
