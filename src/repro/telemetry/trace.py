"""Columnar trace container with save/load.

A :class:`Trace` is the output of one simulation: a **samples** table with
one row per ``(application run, node)`` pair — the paper's unit of
prediction — a **runs** table with one row per aprun, the application
catalog metadata, per-node cumulative telemetry aggregates (for the
cabinet-grid figures), and optional full telemetry series for a few
recorded nodes (for the run-profile figure).
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.telemetry.config import TraceConfig
from repro.topology.machine import Machine, MachineConfig
from repro.utils.errors import TraceIOError, ValidationError
from repro.utils.io import atomic_write, atomic_write_text, sha256_file

__all__ = [
    "Trace",
    "SAMPLE_TELEMETRY_COLUMNS",
    "PRE_WINDOWS_MINUTES",
    "config_to_dict",
    "config_from_dict",
]

#: Pre-execution window lengths (minutes) for temporal features (paper §V-A).
PRE_WINDOWS_MINUTES = (5, 15, 30, 60)

_STAT_SUFFIXES = ("mean", "std", "dmean", "dstd")

#: Names of the per-sample telemetry statistic columns, in storage order.
SAMPLE_TELEMETRY_COLUMNS: tuple[str, ...] = tuple(
    f"{quantity}_{suffix}"
    for quantity in ("gpu_temp", "gpu_power", "cpu_temp", "nei_temp", "nei_power")
    for suffix in _STAT_SUFFIXES
) + tuple(
    f"pre{window}_{quantity}_{suffix}"
    for window in PRE_WINDOWS_MINUTES
    for quantity in ("temp", "power")
    for suffix in _STAT_SUFFIXES
)


@dataclass
class Trace:
    """One simulated telemetry archive."""

    config: TraceConfig
    #: Columnar samples table; all arrays share the same length.
    samples: dict[str, np.ndarray]
    #: Columnar runs table; all arrays share the same length.
    runs: dict[str, np.ndarray]
    #: Application binary names indexed by app id.
    app_names: list[str]
    #: Per-node mean GPU temperature over the whole trace.
    node_mean_temp: np.ndarray
    #: Per-node mean GPU power over the whole trace.
    node_mean_power: np.ndarray
    #: Ground-truth latent node susceptibility (diagnostics only; the
    #: prediction pipeline must never read this).
    node_susceptibility: np.ndarray
    #: Optional full series for recorded nodes:
    #: node id -> {"minute", "gpu_temp", "gpu_power", "cpu_temp",
    #: "slot_avg_temp", "slot_avg_power", "cage_avg_temp"}.
    recorded_series: dict[int, dict[str, np.ndarray]] = field(default_factory=dict)
    #: Provenance and instrumentation (JSON-serializable values only):
    #: the simulator records per-stage wall-time counters under
    #: ``stage_seconds`` (simulate / sample / collate) and the shard
    #: count under ``shards``.  Deliberately excluded from every content
    #: digest — wall times vary run to run, content must not.
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {k: v.shape[0] for k, v in self.samples.items()}
        if len(set(lengths.values())) > 1:
            raise ValidationError(f"ragged samples table: {lengths}")
        run_lengths = {k: v.shape[0] for k, v in self.runs.items()}
        if len(set(run_lengths.values())) > 1:
            raise ValidationError(f"ragged runs table: {run_lengths}")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Rows in the samples table."""
        return next(iter(self.samples.values())).shape[0] if self.samples else 0

    @property
    def num_runs(self) -> int:
        """Rows in the runs table."""
        return next(iter(self.runs.values())).shape[0] if self.runs else 0

    @property
    def machine(self) -> Machine:
        """Topology object for this trace's machine."""
        return Machine(self.config.machine)

    def sample_labels(self) -> np.ndarray:
        """Binary labels: 1 when the (run, node) sample saw any SBE."""
        return (self.samples["sbe_count"] > 0).astype(int)

    def positive_rate(self) -> float:
        """Fraction of SBE-affected samples (paper: < 2%)."""
        if self.num_samples == 0:
            return 0.0
        return float(self.sample_labels().mean())

    def node_sbe_totals(self) -> np.ndarray:
        """Total SBE count per node over the whole trace."""
        totals = np.zeros(self.machine.num_nodes, dtype=np.int64)
        np.add.at(
            totals,
            self.samples["node_id"].astype(int),
            self.samples["sbe_count"].astype(np.int64),
        )
        return totals

    def select_samples(self, mask: np.ndarray) -> dict[str, np.ndarray]:
        """Row-subset of the samples table as a new column dict."""
        mask = np.asarray(mask)
        return {k: v[mask] for k, v in self.samples.items()}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace to ``<path>.npz`` plus a JSON config sidecar.

        Both files are written atomically (temp file + rename) and the
        sidecar records a SHA-256 checksum of the archive, so a crash or
        concurrent writer can never leave a half-written trace that a
        later :meth:`load` would silently accept.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        for name, col in self.samples.items():
            arrays[f"samples/{name}"] = col
        for name, col in self.runs.items():
            arrays[f"runs/{name}"] = col
        arrays["node_mean_temp"] = self.node_mean_temp
        arrays["node_mean_power"] = self.node_mean_power
        arrays["node_susceptibility"] = self.node_susceptibility
        for node_id, series in self.recorded_series.items():
            for name, col in series.items():
                arrays[f"recorded/{node_id}/{name}"] = col
        npz_path = path.with_suffix(".npz")
        with atomic_write(npz_path) as npz_tmp:
            with open(npz_tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
        meta = {
            "app_names": self.app_names,
            "config": config_to_dict(self.config),
            "checksum": sha256_file(npz_path),
            "meta": self.meta,
        }
        atomic_write_text(path.with_suffix(".json"), json.dumps(meta, indent=2))

    @classmethod
    def load(cls, path: str | Path, *, verify_checksum: bool = True) -> "Trace":
        """Load a trace previously written with :meth:`save`.

        A missing, truncated, or corrupt archive raises
        :class:`~repro.utils.errors.TraceIOError` carrying the offending
        path, never a raw ``zipfile``/``numpy``/``json`` exception.  When
        the sidecar records a checksum it is verified first (disable with
        ``verify_checksum=False``).
        """
        path = Path(path)
        json_path = path.with_suffix(".json")
        npz_path = path.with_suffix(".npz")
        try:
            meta = json.loads(json_path.read_text())
        except (OSError, ValueError) as exc:
            raise TraceIOError(json_path, f"unreadable trace metadata: {exc}") from exc
        if not isinstance(meta, dict) or "config" not in meta:
            raise TraceIOError(json_path, "trace metadata lacks a 'config' entry")
        expected = meta.get("checksum")
        if verify_checksum and expected:
            try:
                actual = sha256_file(npz_path)
            except OSError as exc:
                raise TraceIOError(npz_path, f"unreadable trace archive: {exc}") from exc
            if actual != expected:
                raise TraceIOError(
                    npz_path,
                    f"trace archive checksum mismatch: "
                    f"expected {expected}, actual {actual}",
                )
        try:
            with np.load(npz_path) as data:
                samples: dict[str, np.ndarray] = {}
                runs: dict[str, np.ndarray] = {}
                recorded: dict[int, dict[str, np.ndarray]] = {}
                extras: dict[str, np.ndarray] = {}
                for key in data.files:
                    if key.startswith("samples/"):
                        samples[key.split("/", 1)[1]] = data[key]
                    elif key.startswith("runs/"):
                        runs[key.split("/", 1)[1]] = data[key]
                    elif key.startswith("recorded/"):
                        _, node_str, name = key.split("/", 2)
                        recorded.setdefault(int(node_str), {})[name] = data[key]
                    else:
                        extras[key] = data[key]
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceIOError(
                npz_path, f"corrupt or truncated trace archive: {exc}"
            ) from exc
        try:
            return cls(
                config=config_from_dict(meta["config"]),
                samples=samples,
                runs=runs,
                app_names=list(meta["app_names"]),
                node_mean_temp=extras["node_mean_temp"],
                node_mean_power=extras["node_mean_power"],
                node_susceptibility=extras["node_susceptibility"],
                recorded_series=recorded,
                meta=dict(meta.get("meta") or {}),
            )
        except (KeyError, TypeError, ValidationError) as exc:
            raise TraceIOError(
                npz_path, f"trace archive has missing or invalid contents: {exc}"
            ) from exc


def config_to_dict(config: TraceConfig) -> dict:
    """JSON-serializable form of a :class:`TraceConfig`.

    Shared by the trace sidecar, the content-addressed cache, and the
    segmented store manifest, so every on-disk artifact describes its
    configuration the same way.
    """
    from dataclasses import asdict

    from repro.scenarios.events import scenario_to_dict

    raw = asdict(config)
    raw["record_nodes"] = list(config.record_nodes)
    # asdict() recurses into the scenario but loses the event types; emit
    # the kind-tagged form instead — and only when the scenario actually
    # scripts something, so scenario=None and an empty Scenario() produce
    # byte-identical sidecars and cache keys (the neutrality invariant).
    raw.pop("scenario", None)
    if config.scenario is not None and not config.scenario.empty:
        raw["scenario"] = scenario_to_dict(config.scenario)
    return raw


def config_from_dict(raw: dict) -> TraceConfig:
    from repro.scenarios.events import scenario_from_dict
    from repro.telemetry.config import (
        ErrorModelConfig,
        PowerConfig,
        ThermalConfig,
        WorkloadConfig,
    )

    scenario_raw = raw.get("scenario")
    return TraceConfig(
        machine=MachineConfig(**raw["machine"]),
        workload=WorkloadConfig(**raw["workload"]),
        power=PowerConfig(**raw["power"]),
        thermal=ThermalConfig(**raw["thermal"]),
        errors=ErrorModelConfig(**raw["errors"]),
        duration_days=raw["duration_days"],
        tick_minutes=raw["tick_minutes"],
        seed=raw["seed"],
        record_nodes=tuple(raw.get("record_nodes", ())),
        scenario=None if scenario_raw is None else scenario_from_dict(scenario_raw),
    )
