"""Synthetic application catalog.

The paper identifies applications by binary name and observes (Section
III-B) that fewer than 20% of applications carry more than 90% of all
SBEs, that SBE-heavy applications tend to use more GPU memory and core
hours (Spearman 0.89 / 0.70), and that popularity is highly skewed.  The
catalog reproduces those marginals: Zipf popularity, lognormal runtimes,
heavy-tailed susceptibility correlated with GPU utilization intensity,
and a "home cabinet" per application that induces the spatially
non-uniform aprun distribution of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.config import WorkloadConfig
from repro.topology.machine import MachineConfig
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ApplicationSpec", "ApplicationCatalog"]

_DOMAINS = (
    "chem",
    "astro",
    "climate",
    "lattice",
    "fusion",
    "bio",
    "materials",
    "cfd",
)


@dataclass(frozen=True)
class ApplicationSpec:
    """Static properties of one application (binary name)."""

    app_id: int
    name: str
    domain: str
    #: Relative submission probability (normalized across the catalog).
    popularity: float
    #: Median aprun wall-clock minutes.
    median_runtime_minutes: float
    #: Median nodes per aprun.
    median_nodes: float
    #: Mean GPU core utilization in [0.05, 1].
    gpu_utilization: float
    #: Mean fraction of GPU memory used in [0.02, 1].
    memory_fraction: float
    #: CPU utilization accompanying the GPU work, in [0.05, 1].
    cpu_utilization: float
    #: Latent SBE susceptibility multiplier (heavy-tailed across apps).
    susceptibility: float
    #: Preferred cabinet (linear index) for allocation locality.
    home_cabinet: int


class ApplicationCatalog:
    """Generates and holds the application population for one trace."""

    def __init__(
        self,
        workload: WorkloadConfig,
        machine: MachineConfig,
        seeds: SeedSequenceFactory,
        *,
        app_sigma: float = 1.4,
    ) -> None:
        rng = seeds.generator("application-catalog")
        n = workload.num_applications
        ranks = np.arange(1, n + 1, dtype=float)
        popularity = ranks**-workload.popularity_exponent
        popularity /= popularity.sum()

        # GPU intensity drives both utilization features and (softly) the
        # latent susceptibility; scale (core-hours per run) feeds in too.
        # Together these yield the paper's positive rank correlations of
        # per-core-hour SBE rate with core-hours (~0.89) and memory (~0.70)
        # without making the mapping deterministic.
        intensity = rng.beta(2.2, 2.2, size=n)
        gpu_util = 0.15 + 0.8 * intensity
        memory = np.clip(0.06 + 0.85 * intensity + rng.normal(0, 0.10, n), 0.02, 1.0)
        cpu_util = np.clip(0.1 + 0.5 * intensity + rng.normal(0, 0.12, n), 0.05, 1.0)

        runtimes = workload.mean_runtime_minutes * rng.lognormal(
            mean=-0.15, sigma=0.6, size=n
        )
        nodes = np.clip(
            workload.mean_nodes_per_run * rng.lognormal(-0.2, 0.8, size=n),
            1.0,
            float(workload.max_nodes_per_run),
        )
        # Total expected usage (popularity x per-run core-hours) feeds the
        # susceptibility, so heavy users are also the error-prone users --
        # which is what produces the paper's Fig. 4 rank correlations.
        log_usage = np.log(popularity * runtimes * nodes / 60.0)
        usage = (log_usage - log_usage.mean()) / max(log_usage.std(), 1e-9)
        log_susc = (
            0.35 * app_sigma * rng.standard_normal(n)
            + 1.4 * (intensity - 0.5)
            + 1.5 * app_sigma * usage
        )
        susceptibility = np.exp(log_susc)
        susceptibility /= np.median(susceptibility)
        home = rng.integers(0, machine.num_cabinets, size=n)

        self._specs = [
            ApplicationSpec(
                app_id=i,
                name=f"{_DOMAINS[i % len(_DOMAINS)]}_app{i:03d}.exe",
                domain=_DOMAINS[i % len(_DOMAINS)],
                popularity=float(popularity[i]),
                median_runtime_minutes=float(runtimes[i]),
                median_nodes=float(nodes[i]),
                gpu_utilization=float(gpu_util[i]),
                memory_fraction=float(memory[i]),
                cpu_utilization=float(cpu_util[i]),
                susceptibility=float(susceptibility[i]),
                home_cabinet=int(home[i]),
            )
            for i in range(n)
        ]

    def __len__(self) -> int:
        return len(self._specs)

    def __getitem__(self, app_id: int) -> ApplicationSpec:
        return self._specs[app_id]

    def __iter__(self):
        return iter(self._specs)

    @property
    def popularity(self) -> np.ndarray:
        """Normalized submission probabilities, indexed by app id."""
        return np.asarray([spec.popularity for spec in self._specs])

    @property
    def susceptibility(self) -> np.ndarray:
        """Latent susceptibility multipliers, indexed by app id."""
        return np.asarray([spec.susceptibility for spec in self._specs])

    @property
    def names(self) -> list[str]:
        """Application binary names, indexed by app id."""
        return [spec.name for spec in self._specs]

    def sample_app(self, rng: np.random.Generator) -> ApplicationSpec:
        """Draw an application according to popularity."""
        app_id = int(rng.choice(len(self._specs), p=self.popularity))
        return self._specs[app_id]
