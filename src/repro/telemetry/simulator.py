"""The trace simulator: replay the schedule, sample telemetry, inject SBEs.

One simulated tick = one out-of-band sampling interval.  Per tick the
simulator

1. completes apruns whose end time has passed: reads their online run
   statistics, draws SBE counts, and (at batch-job completion) resolves
   per-job nvidia-smi snapshot deltas into the sample rows of *all* the
   job's apruns — the paper's conservative "SBEs occur in all apruns of
   the job" attribution;
2. starts due apruns: computes their 5/15/30/60-minute pre-execution
   window statistics from the history rings and re-arms the online
   statistics for their nodes;
3. advances the power and thermal physics;
4. feeds the new machine-wide snapshot to the online statistics, the
   history rings, the cumulative aggregates, and any recorded node series.

Everything per-node is a flat numpy array, so cost per tick is independent
of how many runs are in flight.

**Sharding.**  The simulator can be restricted to a row-aligned
:class:`~repro.topology.sharding.ShardSpan`: :meth:`TraceSimulator.run_span`
replays the *full* schedule but keeps per-node state only for its span,
and returns a :class:`ShardResult`.  All randomness is keyed by stable
entities — per-cabinet-row noise streams, per-run utilization draws,
per-``(run, node)`` SBE draws, whole-machine static draws sliced to the
span — so a shard computes exactly the values the serial run would, and
:func:`merge_shard_results` reassembles shard outputs (in the schedule's
deterministic completion order) into a trace that is bit-identical to
``TraceSimulator(config).run()``.  The serial path itself goes through the
same merge, so there is a single ordering code path to keep in sync.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.obs import SpanTracer, get_registry
from repro.scenarios.compiler import compile_scenario
from repro.telemetry.applications import ApplicationCatalog
from repro.telemetry.config import TraceConfig
from repro.telemetry.errors import SbeErrorModel
from repro.telemetry.nvidia_smi import NvidiaSmiEmulator
from repro.telemetry.power import PowerModel
from repro.telemetry.sampler import RUN_STAT_QUANTITIES, HistoryRing, VectorWelford
from repro.telemetry.scheduler import ScheduledRun, WorkloadScheduler
from repro.telemetry.thermal import ThermalModel
from repro.telemetry.trace import PRE_WINDOWS_MINUTES, Trace
from repro.topology.machine import Machine
from repro.topology.sharding import ShardSpan, full_span, validate_span
from repro.utils.errors import SimulationError
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "TraceSimulator",
    "ShardResult",
    "simulate_trace",
    "merge_shard_results",
    "completion_order",
]


@dataclass
class _ActiveRun:
    """Bookkeeping for an aprun currently on the machine (span-local)."""

    run: ScheduledRun
    local_nodes: np.ndarray  # span-local indices of the owned subset
    global_nodes: np.ndarray  # global ids of the owned subset
    gpu_utilization: float
    memory_fraction: float
    prev_app_ids: np.ndarray
    pre_window_stats: np.ndarray  # (n_local, 8 * len(PRE_WINDOWS_MINUTES))
    start_tick: int


@dataclass
class _PendingJob:
    """A batch job whose apruns have not all completed yet."""

    local_nodes: np.ndarray
    global_nodes: np.ndarray
    runs_remaining: int
    sample_blocks: list[dict[str, np.ndarray]] = field(default_factory=list)
    run_indices: list[int] = field(default_factory=list)


@dataclass
class ShardResult:
    """Everything one shard contributes to the merged trace.

    ``blocks`` and ``run_rows`` cover only runs that intersect the span
    (with per-node columns restricted to owned nodes); ``sbe_total`` on a
    run row is the *local* contribution, summed across shards at merge.
    """

    lo: int
    hi: int
    completion_order: list[int]
    blocks: list[tuple[int, dict[str, np.ndarray]]]
    run_rows: list[dict[str, float]]
    temp_sum: np.ndarray
    power_sum: np.ndarray
    node_susceptibility: np.ndarray
    recorded: dict[int, dict[str, np.ndarray]]
    app_names: list[str]
    num_ticks: int
    stage_seconds: dict[str, float]


def completion_order(
    schedule: list[ScheduledRun], num_ticks: int, dt: float
) -> list[int]:
    """Run ids in the order the simulator completes them.

    Completions happen tick by tick; within a tick, runs complete in
    schedule order (the order their end tick was registered).  This is a
    pure function of the schedule, which is how the merge step recovers
    the serial block ordering without simulating anything.
    """
    ends_at: dict[int, list[int]] = defaultdict(list)
    for run in schedule:
        start_tick = int(math.ceil(run.start_minute / dt))
        end_tick = int(math.floor(run.end_minute / dt))
        if start_tick >= num_ticks or end_tick <= start_tick:
            continue
        ends_at[min(end_tick, num_ticks)].append(run.run_id)
    order: list[int] = []
    for tick in sorted(ends_at):
        order.extend(ends_at[tick])
    return order


class TraceSimulator:
    """Builds a :class:`~repro.telemetry.trace.Trace` from a configuration."""

    def __init__(self, config: TraceConfig, span: ShardSpan | None = None) -> None:
        self._config = config
        self._machine = Machine(config.machine)
        self._span = span or full_span(config.machine)
        validate_span(self._span, config.machine)
        self._seeds = SeedSequenceFactory(config.seed)
        # None when no scenario is attached (or it is empty): every hook
        # below gates on that, so the scenario-off path is the exact
        # pre-scenario code (golden digests unchanged).
        self._scenario = compile_scenario(config.scenario, config)
        self._catalog = ApplicationCatalog(
            config.workload,
            config.machine,
            self._seeds,
            app_sigma=config.errors.app_sigma,
        )
        self._scheduler = WorkloadScheduler(
            config, self._catalog, self._machine, self._seeds, self._scenario
        )
        self._power = PowerModel(config.power, self._machine, self._seeds, self._span)
        self._thermal = ThermalModel(
            config.thermal, self._machine, self._seeds, self._span
        )
        self._errors = SbeErrorModel(
            config.errors,
            self._machine,
            self._seeds,
            num_days=int(math.ceil(config.duration_days)),
            scenario=self._scenario,
        )
        self._smi = NvidiaSmiEmulator(self._span.num_nodes)

    @property
    def catalog(self) -> ApplicationCatalog:
        """The application population used by this simulator."""
        return self._catalog

    @property
    def machine(self) -> Machine:
        """Topology of the simulated machine."""
        return self._machine

    @property
    def span(self) -> ShardSpan:
        """The node span this simulator advances."""
        return self._span

    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Simulate the whole trace and return it (full span only)."""
        if self._span.lo != 0 or self._span.hi != self._machine.num_nodes:
            raise SimulationError(
                "run() needs the full machine; use run_span() + "
                "merge_shard_results() for partial spans"
            )
        return merge_shard_results(self._config, [self.run_span()])

    # ------------------------------------------------------------------
    def run_span(self) -> ShardResult:
        """Replay the schedule, keeping state only for this span."""
        cfg = self._config
        span = self._span
        lo, hi = span.lo, span.hi
        n = span.num_nodes
        dt = cfg.tick_minutes
        num_ticks = cfg.num_ticks
        # Wall-clock stage spans.  The tracer is local to the shard (it
        # may be running inside a process-pool worker); its totals ride
        # back on the ShardResult and are published at merge time.
        spans = SpanTracer()
        spans.start("simulate")
        schedule = self._scheduler.build_schedule()

        starts_at: dict[int, list[ScheduledRun]] = defaultdict(list)
        ends_at: dict[int, list[int]] = defaultdict(list)
        order: list[int] = []
        ends_order: dict[int, list[int]] = defaultdict(list)
        job_total_runs: dict[int, int] = defaultdict(int)
        local_subset: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for run in schedule:
            start_tick = int(math.ceil(run.start_minute / dt))
            end_tick = int(math.floor(run.end_minute / dt))
            if start_tick >= num_ticks or end_tick <= start_tick:
                continue
            ends_order[min(end_tick, num_ticks)].append(run.run_id)
            inside = run.node_ids[(run.node_ids >= lo) & (run.node_ids < hi)]
            if inside.size == 0:
                continue
            local_subset[run.run_id] = (inside - lo, inside)
            starts_at[start_tick].append(run)
            ends_at[min(end_tick, num_ticks)].append(run.run_id)
            job_total_runs[run.job_id] += 1
        for tick in sorted(ends_order):
            order.extend(ends_order[tick])

        welford = {q: VectorWelford(n) for q in RUN_STAT_QUANTITIES}
        ring_capacity = max(1, int(round(60.0 / dt)))
        temp_ring = HistoryRing(n, ring_capacity)
        power_ring = HistoryRing(n, ring_capacity)

        gpu_util = np.zeros(n)
        cpu_util = np.full(n, 0.05)
        prev_app = np.full(n, -1, dtype=np.int32)
        temp_sum = np.zeros(n)
        power_sum = np.zeros(n)

        active: dict[int, _ActiveRun] = {}
        jobs: dict[int, _PendingJob] = {}

        blocks: list[tuple[int, dict[str, np.ndarray]]] = []
        run_rows: list[dict[str, float]] = []
        recorded: dict[int, dict[str, list[float]]] = {
            int(node): defaultdict(list)
            for node in cfg.record_nodes
            if lo <= int(node) < hi
        }

        nodes_per_slot = self._machine.config.nodes_per_slot
        per_cage = (
            self._machine.config.slots_per_cage * self._machine.config.nodes_per_slot
        )

        for tick in range(num_ticks + 1):
            minute = tick * dt
            # --- 1. run completions -----------------------------------
            for run_id in ends_at.pop(tick, []):
                state = active.pop(run_id, None)
                if state is None:
                    raise SimulationError(f"run {run_id} ended but was never active")
                self._complete_run(state, jobs, blocks, run_rows, welford)
            if tick == num_ticks:
                break

            # --- 2. run starts ----------------------------------------
            for run in starts_at.pop(tick, []):
                app = self._catalog[run.app_id]
                # Per-run substream: every shard that sees this run draws
                # the same utilization/memory regardless of draw order.
                run_rng = self._seeds.generator("per-run-noise", run.run_id)
                base_util = app.gpu_utilization
                base_mem = app.memory_fraction
                if self._scenario is not None and self._scenario.has_workload:
                    base_util = base_util * self._scenario.gpu_util_factor(
                        run.start_minute
                    )
                    base_mem = base_mem * self._scenario.memory_factor(
                        run.start_minute
                    )
                util = float(
                    np.clip(base_util * run_rng.lognormal(0.0, 0.12), 0.03, 1.0)
                )
                mem = float(
                    np.clip(base_mem * run_rng.lognormal(0.0, 0.18), 0.02, 1.0)
                )
                local, global_ids = local_subset[run.run_id]
                pre_stats = np.hstack(
                    [
                        np.hstack(
                            [
                                temp_ring.window_stats(
                                    local, max(1, int(round(w / dt)))
                                ),
                                power_ring.window_stats(
                                    local, max(1, int(round(w / dt)))
                                ),
                            ]
                        )
                        for w in PRE_WINDOWS_MINUTES
                    ]
                )
                state = _ActiveRun(
                    run=run,
                    local_nodes=local,
                    global_nodes=global_ids,
                    gpu_utilization=util,
                    memory_fraction=mem,
                    prev_app_ids=prev_app[local].copy(),
                    pre_window_stats=pre_stats,
                    start_tick=tick,
                )
                active[run.run_id] = state
                job = jobs.get(run.job_id)
                if job is None:
                    jobs[run.job_id] = _PendingJob(
                        local_nodes=local,
                        global_nodes=global_ids,
                        runs_remaining=job_total_runs[run.job_id],
                    )
                    self._smi.snapshot_before(run.job_id, local)
                gpu_util[local] = util
                cpu_util[local] = app.cpu_utilization
                prev_app[local] = run.app_id
                for q in RUN_STAT_QUANTITIES:
                    welford[q].reset(local)

            # --- 3. physics --------------------------------------------
            watts = self._power.sample(gpu_util)
            if self._scenario is not None and self._scenario.has_thermal:
                self._thermal.extra_offset = self._scenario.ambient_offset(
                    minute, lo, hi
                )
            self._thermal.step(watts, cpu_util, dt)
            gpu_temp = self._thermal.gpu_temp
            cpu_temp = self._thermal.cpu_temp

            # --- 4. sampling -------------------------------------------
            spans.switch("sample")
            if nodes_per_slot > 1:
                slot_sum_t = gpu_temp.reshape(-1, nodes_per_slot).sum(axis=1)
                slot_sum_p = watts.reshape(-1, nodes_per_slot).sum(axis=1)
                nei_temp = (np.repeat(slot_sum_t, nodes_per_slot) - gpu_temp) / (
                    nodes_per_slot - 1
                )
                nei_power = (np.repeat(slot_sum_p, nodes_per_slot) - watts) / (
                    nodes_per_slot - 1
                )
            else:
                nei_temp = gpu_temp
                nei_power = watts
            welford["gpu_temp"].update(gpu_temp)
            welford["gpu_power"].update(watts)
            welford["cpu_temp"].update(cpu_temp)
            welford["nei_temp"].update(nei_temp)
            welford["nei_power"].update(nei_power)
            temp_ring.push(gpu_temp)
            power_ring.push(watts)
            temp_sum += gpu_temp
            power_sum += watts

            for node, series in recorded.items():
                local_node = node - lo
                series["minute"].append(minute)
                series["gpu_temp"].append(float(gpu_temp[local_node]))
                series["gpu_power"].append(float(watts[local_node]))
                series["cpu_temp"].append(float(cpu_temp[local_node]))
                series["slot_avg_temp"].append(float(nei_temp[local_node]))
                series["slot_avg_power"].append(float(nei_power[local_node]))
                cage_lo = (node // per_cage) * per_cage - lo
                cage_slice = slice(cage_lo, cage_lo + per_cage)
                series["cage_avg_temp"].append(float(gpu_temp[cage_slice].mean()))
            spans.switch("simulate")

        if jobs:
            raise SimulationError(f"{len(jobs)} jobs never completed")
        spans.stop()

        return ShardResult(
            lo=lo,
            hi=hi,
            completion_order=order,
            blocks=blocks,
            run_rows=run_rows,
            temp_sum=temp_sum,
            power_sum=power_sum,
            node_susceptibility=self._errors.node_susceptibility[lo:hi].copy(),
            recorded={
                node: {name: np.asarray(vals) for name, vals in cols.items()}
                for node, cols in recorded.items()
            },
            app_names=list(self._catalog.names),
            num_ticks=num_ticks,
            stage_seconds={
                "simulate": spans.get("simulate"),
                "sample": spans.get("sample"),
            },
        )

    # ------------------------------------------------------------------
    def _complete_run(
        self,
        state: _ActiveRun,
        jobs: dict[int, _PendingJob],
        blocks: list[tuple[int, dict[str, np.ndarray]]],
        run_rows: list[dict[str, float]],
        welford: dict[str, VectorWelford],
    ) -> None:
        run = state.run
        local = state.local_nodes
        app = self._catalog[run.app_id]
        stats = {q: welford[q].stats(local) for q in RUN_STAT_QUANTITIES}

        counts = self._errors.sample_counts(
            run.run_id,
            state.global_nodes,
            app.susceptibility,
            run.start_minute,
            run.duration_minutes,
            stats["gpu_temp"][:, 0],
            stats["gpu_power"][:, 0],
            state.memory_fraction,
        )
        self._smi.record_errors(local, counts)

        k = local.size
        k_full = run.node_ids.size
        max_mem_gb = state.memory_fraction * 6.0  # K20X has 6 GB per GPU
        block: dict[str, np.ndarray] = {
            "run_idx": np.full(k, run.run_id, dtype=np.int32),
            "job_id": np.full(k, run.job_id, dtype=np.int32),
            "app_id": np.full(k, run.app_id, dtype=np.int32),
            "user_id": np.full(k, run.user_id, dtype=np.int32),
            "node_id": state.global_nodes.astype(np.int32),
            "start_minute": np.full(k, run.start_minute),
            "end_minute": np.full(k, run.end_minute),
            "duration_minutes": np.full(k, run.duration_minutes),
            "n_nodes": np.full(k, k_full, dtype=np.int32),
            "gpu_core_hours": np.full(k, run.gpu_core_hours),
            "gpu_util": np.full(k, state.gpu_utilization),
            "max_mem_gb": np.full(k, max_mem_gb),
            "agg_mem_gb": np.full(k, max_mem_gb * k_full),
            "prev_app_id": state.prev_app_ids.astype(np.int32),
            "sbe_count": np.zeros(k, dtype=np.int64),  # resolved at job end
        }
        for q in RUN_STAT_QUANTITIES:
            for j, suffix in enumerate(("mean", "std", "dmean", "dstd")):
                block[f"{q}_{suffix}"] = stats[q][:, j]
        col = 0
        for w in PRE_WINDOWS_MINUTES:
            for quantity in ("temp", "power"):
                for suffix in ("mean", "std", "dmean", "dstd"):
                    block[f"pre{w}_{quantity}_{suffix}"] = state.pre_window_stats[:, col]
                    col += 1

        blocks.append((run.run_id, block))
        run_rows.append(
            {
                "run_id": run.run_id,
                "job_id": run.job_id,
                "app_id": run.app_id,
                "user_id": run.user_id,
                "start_minute": run.start_minute,
                "end_minute": run.end_minute,
                "n_nodes": k_full,
                "gpu_core_hours": run.gpu_core_hours,
                "gpu_util": state.gpu_utilization,
                "max_mem_gb": max_mem_gb,
                "agg_mem_gb": max_mem_gb * k_full,
                "sbe_total": 0.0,  # resolved at job end (local contribution)
            }
        )

        job = jobs[run.job_id]
        job.sample_blocks.append(block)
        job.run_indices.append(len(run_rows) - 1)
        job.runs_remaining -= 1
        if job.runs_remaining == 0:
            deltas = self._smi.snapshot_after(run.job_id, job.local_nodes)
            per_node = {
                int(node): int(delta)
                for node, delta in zip(job.global_nodes, deltas)
            }
            for job_block in job.sample_blocks:
                job_block["sbe_count"] = np.asarray(
                    [per_node[int(node)] for node in job_block["node_id"]],
                    dtype=np.int64,
                )
            for row_idx in job.run_indices:
                run_rows[row_idx]["sbe_total"] = float(deltas.sum())
            del jobs[run.job_id]


# ----------------------------------------------------------------------
def _shard_sample_rows(result: ShardResult) -> int:
    """Sample rows this shard produced (sum of its block lengths)."""
    return sum(
        len(next(iter(block.values()))) for _, block in result.blocks if block
    )


def _record_sim_metrics(
    registry,
    results: list[ShardResult],
    trace: Trace,
    stage_seconds: dict[str, float],
) -> None:
    """Publish simulator metrics after a merge.

    Runs in the parent process only — shard workers may live in a
    process pool whose registries vanish — so ``--jobs N`` records
    exactly what ``--jobs 1`` records.  Row/run counts are
    deterministic; stage wall times and rows/sec are ``wall=True`` and
    therefore excluded from snapshot digests.
    """
    if not registry.enabled:
        return
    registry.counter(
        "repro_sim_rows_total", "Sample rows produced by the simulator."
    ).inc(trace.num_samples)
    registry.counter(
        "repro_sim_runs_total", "Scheduled runs completed."
    ).inc(trace.num_runs)
    registry.counter(
        "repro_sim_merges_total", "Shard merges performed."
    ).inc()
    shard_rows = registry.counter(
        "repro_sim_shard_rows_total", "Sample rows produced per node span."
    )
    shard_rate = registry.gauge(
        "repro_sim_shard_rows_per_sec",
        "Sample rows per wall second, per node span (last merge).",
        wall=True,
    )
    for result in results:
        span_label = f"{result.lo}:{result.hi}"
        rows = _shard_sample_rows(result)
        shard_rows.inc(rows, shard=span_label)
        seconds = sum(result.stage_seconds.values())
        if seconds > 0:
            shard_rate.set(rows / seconds, shard=span_label)
    stage_counter = registry.counter(
        "repro_sim_stage_seconds_total",
        "Wall time spent per simulator stage.",
        wall=True,
    )
    for stage, seconds in stage_seconds.items():
        stage_counter.inc(seconds, stage=stage)


def merge_shard_results(
    config: TraceConfig,
    results: list[ShardResult],
    *,
    registry=None,
) -> Trace:
    """Deterministically merge shard outputs into one trace.

    Shards are sorted by node range (they must tile the machine without
    gaps), per-run sample blocks are concatenated shard-ascending — which
    restores ascending node id, the serial row order — and whole runs are
    laid out in the schedule's completion order, which every shard
    derived independently and must agree on.
    """
    spans = SpanTracer()
    spans.start("collate")
    if not results:
        raise SimulationError("no shard results to merge")
    results = sorted(results, key=lambda r: r.lo)
    machine_nodes = config.machine.num_nodes
    expected_lo = 0
    for result in results:
        if result.lo != expected_lo:
            raise SimulationError(
                f"shard results do not tile the machine: expected a shard "
                f"starting at node {expected_lo}, got {result.lo}"
            )
        expected_lo = result.hi
    if expected_lo != machine_nodes:
        raise SimulationError(
            f"shard results cover {expected_lo} of {machine_nodes} nodes"
        )
    order = results[0].completion_order
    for result in results[1:]:
        if result.completion_order != order:
            raise SimulationError(
                "shards disagree on the schedule's completion order; "
                "the workload scheduler is not deterministic"
            )

    blocks_by_run: dict[int, list[dict[str, np.ndarray]]] = defaultdict(list)
    rows_by_run: dict[int, list[dict[str, float]]] = defaultdict(list)
    for result in results:
        for run_id, block in result.blocks:
            blocks_by_run[run_id].append(block)
        for row in result.run_rows:
            rows_by_run[int(row["run_id"])].append(row)

    ordered_blocks: list[dict[str, np.ndarray]] = []
    run_rows: list[dict[str, float]] = []
    for run_id in order:
        parts = blocks_by_run.get(run_id)
        if not parts:
            raise SimulationError(f"run {run_id} completed in no shard")
        ordered_blocks.extend(parts)
        rows = rows_by_run[run_id]
        merged = dict(rows[0])
        for other in rows[1:]:
            if other["gpu_util"] != merged["gpu_util"] or (
                other["n_nodes"] != merged["n_nodes"]
            ):
                raise SimulationError(
                    f"shards disagree on run {run_id}'s per-run draws"
                )
            merged["sbe_total"] += other["sbe_total"]
        run_rows.append(merged)

    if not ordered_blocks:
        raise SimulationError(
            "simulation produced no samples; increase duration or utilization"
        )
    samples = {
        name: np.concatenate([block[name] for block in ordered_blocks])
        for name in ordered_blocks[0]
    }
    runs = {
        name: np.asarray([row[name] for row in run_rows]) for name in run_rows[0]
    }
    recorded: dict[int, dict[str, np.ndarray]] = {}
    for result in results:
        recorded.update(result.recorded)
    num_ticks = results[0].num_ticks
    stage_seconds = {
        "simulate": sum(r.stage_seconds.get("simulate", 0.0) for r in results),
        "sample": sum(r.stage_seconds.get("sample", 0.0) for r in results),
    }
    trace = Trace(
        config=config,
        samples=samples,
        runs=runs,
        app_names=results[0].app_names,
        node_mean_temp=np.concatenate([r.temp_sum for r in results])
        / max(1, num_ticks),
        node_mean_power=np.concatenate([r.power_sum for r in results])
        / max(1, num_ticks),
        node_susceptibility=np.concatenate(
            [r.node_susceptibility for r in results]
        ),
        recorded_series=recorded,
    )
    spans.stop()
    stage_seconds["collate"] = spans.get("collate")
    trace.meta["stage_seconds"] = stage_seconds
    trace.meta["shards"] = len(results)
    _record_sim_metrics(
        registry if registry is not None else get_registry(),
        results,
        trace,
        stage_seconds,
    )
    return trace


def simulate_trace(config: TraceConfig | None = None) -> Trace:
    """Convenience wrapper: simulate one trace from ``config`` (or defaults)."""
    return TraceSimulator(config or TraceConfig()).run()
