"""The trace simulator: replay the schedule, sample telemetry, inject SBEs.

One simulated tick = one out-of-band sampling interval.  Per tick the
simulator

1. completes apruns whose end time has passed: reads their online run
   statistics, draws SBE counts, and (at batch-job completion) resolves
   per-job nvidia-smi snapshot deltas into the sample rows of *all* the
   job's apruns — the paper's conservative "SBEs occur in all apruns of
   the job" attribution;
2. starts due apruns: computes their 5/15/30/60-minute pre-execution
   window statistics from the history rings and re-arms the online
   statistics for their nodes;
3. advances the power and thermal physics;
4. feeds the new machine-wide snapshot to the online statistics, the
   history rings, the cumulative aggregates, and any recorded node series.

Everything per-node is a flat numpy array, so cost per tick is independent
of how many runs are in flight.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.applications import ApplicationCatalog
from repro.telemetry.config import TraceConfig
from repro.telemetry.errors import SbeErrorModel
from repro.telemetry.nvidia_smi import NvidiaSmiEmulator
from repro.telemetry.power import PowerModel
from repro.telemetry.sampler import RUN_STAT_QUANTITIES, HistoryRing, VectorWelford
from repro.telemetry.scheduler import ScheduledRun, WorkloadScheduler
from repro.telemetry.thermal import ThermalModel
from repro.telemetry.trace import PRE_WINDOWS_MINUTES, Trace
from repro.topology.machine import Machine
from repro.utils.errors import SimulationError
from repro.utils.rng import SeedSequenceFactory

__all__ = ["TraceSimulator", "simulate_trace"]


@dataclass
class _ActiveRun:
    """Bookkeeping for an aprun currently on the machine."""

    run: ScheduledRun
    gpu_utilization: float
    memory_fraction: float
    prev_app_ids: np.ndarray
    pre_window_stats: np.ndarray  # (n_nodes, 8 * len(PRE_WINDOWS_MINUTES))
    start_tick: int


@dataclass
class _PendingJob:
    """A batch job whose apruns have not all completed yet."""

    node_ids: np.ndarray
    runs_remaining: int
    sample_blocks: list[dict[str, np.ndarray]] = field(default_factory=list)
    run_indices: list[int] = field(default_factory=list)


class TraceSimulator:
    """Builds a :class:`~repro.telemetry.trace.Trace` from a configuration."""

    def __init__(self, config: TraceConfig) -> None:
        self._config = config
        self._machine = Machine(config.machine)
        self._seeds = SeedSequenceFactory(config.seed)
        self._catalog = ApplicationCatalog(
            config.workload,
            config.machine,
            self._seeds,
            app_sigma=config.errors.app_sigma,
        )
        self._scheduler = WorkloadScheduler(
            config, self._catalog, self._machine, self._seeds
        )
        self._power = PowerModel(config.power, self._machine.num_nodes, self._seeds)
        self._thermal = ThermalModel(config.thermal, self._machine, self._seeds)
        self._errors = SbeErrorModel(
            config.errors,
            self._machine,
            self._seeds,
            num_days=int(math.ceil(config.duration_days)),
        )
        self._smi = NvidiaSmiEmulator(self._machine.num_nodes)
        self._run_rng = self._seeds.generator("per-run-noise")

    @property
    def catalog(self) -> ApplicationCatalog:
        """The application population used by this simulator."""
        return self._catalog

    @property
    def machine(self) -> Machine:
        """Topology of the simulated machine."""
        return self._machine

    # ------------------------------------------------------------------
    def run(self) -> Trace:
        """Simulate the whole trace and return it."""
        cfg = self._config
        machine = self._machine
        n = machine.num_nodes
        dt = cfg.tick_minutes
        num_ticks = cfg.num_ticks
        schedule = self._scheduler.build_schedule()

        starts_at: dict[int, list[ScheduledRun]] = defaultdict(list)
        ends_at: dict[int, list[int]] = defaultdict(list)
        for run in schedule:
            start_tick = int(math.ceil(run.start_minute / dt))
            end_tick = int(math.floor(run.end_minute / dt))
            if start_tick >= num_ticks or end_tick <= start_tick:
                continue
            starts_at[start_tick].append(run)
            ends_at[min(end_tick, num_ticks)].append(run.run_id)

        welford = {q: VectorWelford(n) for q in RUN_STAT_QUANTITIES}
        ring_capacity = max(1, int(round(60.0 / dt)))
        temp_ring = HistoryRing(n, ring_capacity)
        power_ring = HistoryRing(n, ring_capacity)

        gpu_util = np.zeros(n)
        cpu_util = np.full(n, 0.05)
        prev_app = np.full(n, -1, dtype=np.int32)
        temp_sum = np.zeros(n)
        power_sum = np.zeros(n)

        active: dict[int, _ActiveRun] = {}
        jobs: dict[int, _PendingJob] = {}
        job_total_runs: dict[int, int] = defaultdict(int)
        for run in schedule:
            start_tick = int(math.ceil(run.start_minute / dt))
            end_tick = int(math.floor(run.end_minute / dt))
            if start_tick >= num_ticks or end_tick <= start_tick:
                continue
            job_total_runs[run.job_id] += 1

        blocks: list[dict[str, np.ndarray]] = []
        run_rows: list[dict[str, float]] = []
        recorded: dict[int, dict[str, list[float]]] = {
            int(node): defaultdict(list) for node in cfg.record_nodes
        }

        nodes_per_slot = machine.config.nodes_per_slot
        per_cage = machine.config.slots_per_cage * nodes_per_slot

        for tick in range(num_ticks + 1):
            minute = tick * dt
            # --- 1. run completions -----------------------------------
            ended = ends_at.pop(tick, [])
            if tick == num_ticks:
                ended = list(ended) + [rid for rid in active if rid not in ended]
            for run_id in ended:
                state = active.pop(run_id, None)
                if state is None:
                    raise SimulationError(f"run {run_id} ended but was never active")
                self._complete_run(state, jobs, blocks, run_rows, welford)
            if tick == num_ticks:
                break

            # --- 2. run starts ----------------------------------------
            for run in starts_at.pop(tick, []):
                app = self._catalog[run.app_id]
                util = float(
                    np.clip(app.gpu_utilization * self._run_rng.lognormal(0.0, 0.12), 0.03, 1.0)
                )
                mem = float(
                    np.clip(app.memory_fraction * self._run_rng.lognormal(0.0, 0.18), 0.02, 1.0)
                )
                nodes = run.node_ids
                pre_stats = np.hstack(
                    [
                        np.hstack(
                            [
                                temp_ring.window_stats(nodes, max(1, int(round(w / dt)))),
                                power_ring.window_stats(nodes, max(1, int(round(w / dt)))),
                            ]
                        )
                        for w in PRE_WINDOWS_MINUTES
                    ]
                )
                state = _ActiveRun(
                    run=run,
                    gpu_utilization=util,
                    memory_fraction=mem,
                    prev_app_ids=prev_app[nodes].copy(),
                    pre_window_stats=pre_stats,
                    start_tick=tick,
                )
                active[run.run_id] = state
                job = jobs.get(run.job_id)
                if job is None:
                    jobs[run.job_id] = _PendingJob(
                        node_ids=nodes, runs_remaining=job_total_runs[run.job_id]
                    )
                    self._smi.snapshot_before(run.job_id, nodes)
                gpu_util[nodes] = util
                cpu_util[nodes] = app.cpu_utilization
                prev_app[nodes] = run.app_id
                for q in RUN_STAT_QUANTITIES:
                    welford[q].reset(nodes)

            # --- 3. physics --------------------------------------------
            watts = self._power.sample(gpu_util)
            self._thermal.step(watts, cpu_util, dt)
            gpu_temp = self._thermal.gpu_temp
            cpu_temp = self._thermal.cpu_temp

            # --- 4. sampling -------------------------------------------
            if nodes_per_slot > 1:
                slot_sum_t = gpu_temp.reshape(-1, nodes_per_slot).sum(axis=1)
                slot_sum_p = watts.reshape(-1, nodes_per_slot).sum(axis=1)
                nei_temp = (np.repeat(slot_sum_t, nodes_per_slot) - gpu_temp) / (
                    nodes_per_slot - 1
                )
                nei_power = (np.repeat(slot_sum_p, nodes_per_slot) - watts) / (
                    nodes_per_slot - 1
                )
            else:
                nei_temp = gpu_temp
                nei_power = watts
            welford["gpu_temp"].update(gpu_temp)
            welford["gpu_power"].update(watts)
            welford["cpu_temp"].update(cpu_temp)
            welford["nei_temp"].update(nei_temp)
            welford["nei_power"].update(nei_power)
            temp_ring.push(gpu_temp)
            power_ring.push(watts)
            temp_sum += gpu_temp
            power_sum += watts

            for node, series in recorded.items():
                series["minute"].append(minute)
                series["gpu_temp"].append(float(gpu_temp[node]))
                series["gpu_power"].append(float(watts[node]))
                series["cpu_temp"].append(float(cpu_temp[node]))
                series["slot_avg_temp"].append(float(nei_temp[node]))
                series["slot_avg_power"].append(float(nei_power[node]))
                cage = node // per_cage
                cage_slice = slice(cage * per_cage, (cage + 1) * per_cage)
                series["cage_avg_temp"].append(float(gpu_temp[cage_slice].mean()))

        if jobs:
            raise SimulationError(f"{len(jobs)} jobs never completed")

        return self._assemble_trace(blocks, run_rows, temp_sum, power_sum, recorded, num_ticks)

    # ------------------------------------------------------------------
    def _complete_run(
        self,
        state: _ActiveRun,
        jobs: dict[int, _PendingJob],
        blocks: list[dict[str, np.ndarray]],
        run_rows: list[dict[str, float]],
        welford: dict[str, VectorWelford],
    ) -> None:
        run = state.run
        nodes = run.node_ids
        app = self._catalog[run.app_id]
        stats = {q: welford[q].stats(nodes) for q in RUN_STAT_QUANTITIES}

        counts = self._errors.sample_counts(
            nodes,
            app.susceptibility,
            run.start_minute,
            run.duration_minutes,
            stats["gpu_temp"][:, 0],
            stats["gpu_power"][:, 0],
            state.memory_fraction,
        )
        self._smi.record_errors(nodes, counts)

        k = nodes.size
        max_mem_gb = state.memory_fraction * 6.0  # K20X has 6 GB per GPU
        block: dict[str, np.ndarray] = {
            "run_idx": np.full(k, run.run_id, dtype=np.int32),
            "job_id": np.full(k, run.job_id, dtype=np.int32),
            "app_id": np.full(k, run.app_id, dtype=np.int32),
            "user_id": np.full(k, run.user_id, dtype=np.int32),
            "node_id": nodes.astype(np.int32),
            "start_minute": np.full(k, run.start_minute),
            "end_minute": np.full(k, run.end_minute),
            "duration_minutes": np.full(k, run.duration_minutes),
            "n_nodes": np.full(k, k, dtype=np.int32),
            "gpu_core_hours": np.full(k, run.gpu_core_hours),
            "gpu_util": np.full(k, state.gpu_utilization),
            "max_mem_gb": np.full(k, max_mem_gb),
            "agg_mem_gb": np.full(k, max_mem_gb * k),
            "prev_app_id": state.prev_app_ids.astype(np.int32),
            "sbe_count": np.zeros(k, dtype=np.int64),  # resolved at job end
        }
        for q in RUN_STAT_QUANTITIES:
            for j, suffix in enumerate(("mean", "std", "dmean", "dstd")):
                block[f"{q}_{suffix}"] = stats[q][:, j]
        col = 0
        for w in PRE_WINDOWS_MINUTES:
            for quantity in ("temp", "power"):
                for suffix in ("mean", "std", "dmean", "dstd"):
                    block[f"pre{w}_{quantity}_{suffix}"] = state.pre_window_stats[:, col]
                    col += 1

        blocks.append(block)
        run_rows.append(
            {
                "run_id": run.run_id,
                "job_id": run.job_id,
                "app_id": run.app_id,
                "user_id": run.user_id,
                "start_minute": run.start_minute,
                "end_minute": run.end_minute,
                "n_nodes": k,
                "gpu_core_hours": run.gpu_core_hours,
                "gpu_util": state.gpu_utilization,
                "max_mem_gb": max_mem_gb,
                "agg_mem_gb": max_mem_gb * k,
                "sbe_total": 0.0,  # resolved at job end
            }
        )

        job = jobs[run.job_id]
        job.sample_blocks.append(block)
        job.run_indices.append(len(run_rows) - 1)
        job.runs_remaining -= 1
        if job.runs_remaining == 0:
            deltas = self._smi.snapshot_after(run.job_id, job.node_ids)
            per_node = {int(node): int(delta) for node, delta in zip(job.node_ids, deltas)}
            for job_block in job.sample_blocks:
                job_block["sbe_count"] = np.asarray(
                    [per_node[int(node)] for node in job_block["node_id"]],
                    dtype=np.int64,
                )
            for row_idx in job.run_indices:
                run_rows[row_idx]["sbe_total"] = float(deltas.sum())
            del jobs[run.job_id]

    # ------------------------------------------------------------------
    def _assemble_trace(
        self,
        blocks: list[dict[str, np.ndarray]],
        run_rows: list[dict[str, float]],
        temp_sum: np.ndarray,
        power_sum: np.ndarray,
        recorded: dict[int, dict[str, list[float]]],
        num_ticks: int,
    ) -> Trace:
        if not blocks:
            raise SimulationError(
                "simulation produced no samples; increase duration or utilization"
            )
        samples = {
            name: np.concatenate([block[name] for block in blocks])
            for name in blocks[0]
        }
        runs = {
            name: np.asarray([row[name] for row in run_rows])
            for name in run_rows[0]
        }
        series = {
            node: {name: np.asarray(vals) for name, vals in cols.items()}
            for node, cols in recorded.items()
        }
        return Trace(
            config=self._config,
            samples=samples,
            runs=runs,
            app_names=self._catalog.names,
            node_mean_temp=temp_sum / max(1, num_ticks),
            node_mean_power=power_sum / max(1, num_ticks),
            node_susceptibility=self._errors.node_susceptibility,
            recorded_series=series,
        )


def simulate_trace(config: TraceConfig | None = None) -> Trace:
    """Convenience wrapper: simulate one trace from ``config`` (or defaults)."""
    return TraceSimulator(config or TraceConfig()).run()
