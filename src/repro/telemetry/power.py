"""Per-node GPU power model.

Power draw follows the utilization of whatever aprun occupies the node:
``idle + dynamic * utilization`` scaled by a static per-node efficiency
factor (manufacturing variation), plus per-tick noise.  The envelope is
K20X-like (tens of watts idle, ~200 W busy), matching the scale of the
paper's Fig. 7.

Like the thermal model, the power model can be restricted to a
:class:`~repro.topology.sharding.ShardSpan`: the static efficiency draw
covers the whole machine and is sliced, while per-tick noise comes from
per-cabinet-row streams, so a shard's watts are bit-identical to the
corresponding slice of a serial run.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.config import PowerConfig
from repro.telemetry.noise import RowNoise
from repro.topology.machine import Machine, MachineConfig
from repro.topology.sharding import ShardSpan, full_span
from repro.utils.rng import SeedSequenceFactory

__all__ = ["PowerModel"]


class PowerModel:
    """Vectorized power draw for a span of nodes.

    ``machine`` may be a :class:`~repro.topology.machine.Machine` (or its
    config) for row-structured noise, or a plain node count for
    standalone use — the latter is treated as a single one-row machine.
    """

    def __init__(
        self,
        config: PowerConfig,
        machine: Machine | MachineConfig | int,
        seeds: SeedSequenceFactory,
        span: ShardSpan | None = None,
    ) -> None:
        self._config = config
        if isinstance(machine, Machine):
            machine_config = machine.config
        elif isinstance(machine, MachineConfig):
            machine_config = machine
        else:
            machine_config = MachineConfig(
                grid_x=1, grid_y=1, cages_per_cabinet=1, slots_per_cage=1,
                nodes_per_slot=int(machine),
            )
        span = span or full_span(machine_config)
        window = slice(span.lo, span.hi)
        rng = seeds.generator("power-efficiency")
        self._efficiency = np.exp(
            rng.normal(0.0, config.node_efficiency_sigma, size=machine_config.num_nodes)
        )[window]
        self._noise = RowNoise(seeds, "power-noise", machine_config, span)

    @property
    def efficiency(self) -> np.ndarray:
        """Static per-node efficiency multipliers."""
        return self._efficiency

    def sample(self, gpu_utilization: np.ndarray) -> np.ndarray:
        """Instantaneous per-node watts for the given utilization vector."""
        cfg = self._config
        base = cfg.idle_watts + cfg.dynamic_watts * gpu_utilization
        noise = self._noise.normal(cfg.noise_watts)
        return np.maximum(base * self._efficiency + noise, 1.0)
