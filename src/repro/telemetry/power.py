"""Per-node GPU power model.

Power draw follows the utilization of whatever aprun occupies the node:
``idle + dynamic * utilization`` scaled by a static per-node efficiency
factor (manufacturing variation), plus per-tick noise.  The envelope is
K20X-like (tens of watts idle, ~200 W busy), matching the scale of the
paper's Fig. 7.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.config import PowerConfig
from repro.utils.rng import SeedSequenceFactory

__all__ = ["PowerModel"]


class PowerModel:
    """Vectorized power draw for all nodes at once."""

    def __init__(
        self,
        config: PowerConfig,
        num_nodes: int,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._config = config
        rng = seeds.generator("power-efficiency")
        self._efficiency = np.exp(
            rng.normal(0.0, config.node_efficiency_sigma, size=num_nodes)
        )
        self._noise_rng = seeds.generator("power-noise")
        self._num_nodes = num_nodes

    @property
    def efficiency(self) -> np.ndarray:
        """Static per-node efficiency multipliers."""
        return self._efficiency

    def sample(self, gpu_utilization: np.ndarray) -> np.ndarray:
        """Instantaneous per-node watts for the given utilization vector."""
        cfg = self._config
        base = cfg.idle_watts + cfg.dynamic_watts * gpu_utilization
        noise = self._noise_rng.normal(0.0, cfg.noise_watts, size=self._num_nodes)
        return np.maximum(base * self._efficiency + noise, 1.0)
