"""Emulation of nvidia-smi's snapshot-only SBE accounting.

On Titan, "the nvidia-smi utility provides snapshot information, i.e., it
does not timestamp individual SBEs, but records SBEs before and after each
batch job" (paper, Section II).  The emulator enforces that limitation on
all downstream analytics: SBEs accumulate in per-node lifetime counters
which can only be *read*; the attributable unit is the difference between
the readings taken at a job's start and end.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["NvidiaSmiEmulator"]


class NvidiaSmiEmulator:
    """Per-node lifetime SBE counters with before/after job snapshots."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValidationError("num_nodes must be positive")
        self._counters = np.zeros(num_nodes, dtype=np.int64)
        self._open_snapshots: dict[int, np.ndarray] = {}

    def record_errors(self, node_ids: np.ndarray, counts: np.ndarray) -> None:
        """Hardware-side: accumulate detected SBEs into lifetime counters."""
        np.add.at(self._counters, np.asarray(node_ids, dtype=int), counts)

    def query(self, node_ids: np.ndarray) -> np.ndarray:
        """Read current counter values (what ``nvidia-smi -q`` reports)."""
        return self._counters[np.asarray(node_ids, dtype=int)].copy()

    def snapshot_before(self, job_id: int, node_ids: np.ndarray) -> None:
        """Tracing-framework hook: record counters at job start."""
        if job_id in self._open_snapshots:
            raise ValidationError(f"job {job_id} already has an open snapshot")
        self._open_snapshots[job_id] = self.query(node_ids)

    def snapshot_after(self, job_id: int, node_ids: np.ndarray) -> np.ndarray:
        """Tracing-framework hook: per-node SBE delta for the whole job.

        This is the only per-job error information the real system makes
        available — SBEs within the job cannot be split across apruns.
        """
        before = self._open_snapshots.pop(job_id, None)
        if before is None:
            raise ValidationError(f"job {job_id} has no open snapshot")
        after = self.query(node_ids)
        return after - before
