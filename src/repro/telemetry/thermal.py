"""RC thermal model with neighbour coupling and non-uniform cooling.

Each node's GPU temperature relaxes toward a steady state set by its own
power draw and its cabinet's cooling efficiency, while being pulled toward
the mean temperature of its slot (heat exchanged with neighbouring
blades).  The cabinet cooling-efficiency map is deliberately non-uniform —
warmer toward the upper-left and lower-right corners of the floor grid —
reproducing the spatial pattern of the paper's Fig. 5(a).  CPU temperature
follows its own (faster) RC dynamics driven by CPU utilization.

The neighbour coupling is what makes the temperature profile of the *same
application on the same node* differ across runs (paper Fig. 8): the
steady state depends on what happens to be running in the rest of the
slot.

The model can be restricted to a :class:`~repro.topology.sharding.ShardSpan`
for sharded simulation: static offsets are drawn for the whole machine and
sliced (so every shard sees the same values), per-tick noise comes from
per-row streams (:class:`~repro.telemetry.noise.RowNoise`), and the slot
coupling needs no halo because spans are slot-aligned.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.config import ThermalConfig
from repro.telemetry.noise import RowNoise
from repro.topology.machine import Machine
from repro.topology.sharding import ShardSpan, full_span, validate_span
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ThermalModel", "cooling_pattern"]


def cooling_pattern(grid_y: int, grid_x: int, amplitude: float) -> np.ndarray:
    """Cabinet-level static temperature offsets (deg C), shape (y, x).

    Positive values mean worse cooling (hotter cabinets).  The pattern is
    a saddle: hottest at the upper-left and lower-right corners.
    """
    ys = np.linspace(0.0, 1.0, grid_y)[:, None]
    xs = np.linspace(0.0, 1.0, grid_x)[None, :]
    corner_ul = (1.0 - xs) * ys
    corner_lr = xs * (1.0 - ys)
    pattern = corner_ul**2 + corner_lr**2
    pattern = pattern - pattern.mean()
    peak = np.abs(pattern).max()
    return amplitude * pattern / peak if peak > 0 else pattern


class ThermalModel:
    """Vectorized GPU + CPU temperature dynamics for a span of nodes."""

    def __init__(
        self,
        config: ThermalConfig,
        machine: Machine,
        seeds: SeedSequenceFactory,
        span: ShardSpan | None = None,
    ) -> None:
        self._config = config
        self._machine = machine
        self._span = span or full_span(machine.config)
        validate_span(self._span, machine.config)
        window = slice(self._span.lo, self._span.hi)
        rng = seeds.generator("thermal-offsets")
        pattern = cooling_pattern(
            machine.config.grid_y, machine.config.grid_x, config.cooling_pattern_celsius
        )
        # Static per-node draws cover the whole machine and are sliced, so
        # every shard sees the same offsets regardless of the partition.
        self._cabinet_offset = pattern[machine.cabinet_y, machine.cabinet_x][window]
        self._node_offset = rng.normal(
            0.0, config.node_offset_sigma, machine.num_nodes
        )[window]
        self._noise = RowNoise(seeds, "thermal-noise", machine.config, self._span)
        ambient = config.ambient_celsius + self._cabinet_offset + self._node_offset
        self.gpu_temp = ambient.copy()
        self.cpu_temp = ambient.copy()
        #: Scenario hook: extra ambient degrees (scalar or per-node array
        #: over the span) added to both GPU and CPU steady-state targets.
        #: ``None`` keeps the step math byte-identical to the pre-scenario
        #: model; the simulator refreshes it every tick from the compiled
        #: scenario.  Offsets act from the first step (initial temperatures
        #: stay at the unperturbed ambient).
        self.extra_offset: float | np.ndarray | None = None

    @property
    def cabinet_offset(self) -> np.ndarray:
        """Per-node static cooling offset from the cabinet pattern."""
        return self._cabinet_offset

    def steady_state(self, power_watts: np.ndarray) -> np.ndarray:
        """Equilibrium GPU temperature for a constant power draw."""
        cfg = self._config
        return (
            cfg.ambient_celsius
            + self._cabinet_offset
            + self._node_offset
            + cfg.degrees_per_watt * power_watts
        )

    def _slot_means(self, values: np.ndarray) -> np.ndarray:
        """Per-node slot mean over the span (spans are slot-aligned)."""
        nodes_per_slot = self._machine.config.nodes_per_slot
        per_slot = values.reshape(-1, nodes_per_slot)
        return np.repeat(per_slot.mean(axis=1), nodes_per_slot)

    def step(
        self,
        power_watts: np.ndarray,
        cpu_utilization: np.ndarray,
        dt_minutes: float,
    ) -> None:
        """Advance both temperature fields by ``dt_minutes``."""
        cfg = self._config
        target = self.steady_state(power_watts)
        if self.extra_offset is not None:
            target = target + self.extra_offset
        # First-order relaxation, exact for the step size (exp integrator),
        # so large sampler ticks stay stable.
        alpha = 1.0 - np.exp(-dt_minutes / cfg.time_constant_minutes)
        self.gpu_temp += alpha * (target - self.gpu_temp)
        # Exchange with slot neighbours.
        slot_mean = self._slot_means(self.gpu_temp)
        coupling = min(1.0, cfg.neighbor_coupling * dt_minutes)
        self.gpu_temp += coupling * (slot_mean - self.gpu_temp)
        self.gpu_temp += self._noise.normal(cfg.noise_celsius * np.sqrt(dt_minutes))

        cpu_target = (
            cfg.ambient_celsius
            + self._cabinet_offset
            + self._node_offset
            + cfg.cpu_degrees_per_util * cpu_utilization
        )
        if self.extra_offset is not None:
            cpu_target = cpu_target + self.extra_offset
        cpu_alpha = 1.0 - np.exp(-dt_minutes / cfg.cpu_time_constant_minutes)
        self.cpu_temp += cpu_alpha * (cpu_target - self.cpu_temp)
        self.cpu_temp += self._noise.normal(cfg.noise_celsius * np.sqrt(dt_minutes))
