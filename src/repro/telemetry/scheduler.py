"""Batch-job arrivals and node allocation.

Produces the schedule the simulator replays: batch jobs arrive as a
Poisson process whose rate is derived from the target machine
utilization; each job holds one or two apruns of a single application;
nodes are allocated earliest-available-first with a locality bias toward
the application's home cabinet (which makes repeated runs of an
application revisit the same machine region, as on the real system).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenarios.compiler import CompiledScenario
from repro.telemetry.applications import ApplicationCatalog, ApplicationSpec
from repro.telemetry.config import TraceConfig
from repro.topology.machine import Machine
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ScheduledRun", "WorkloadScheduler"]


@dataclass(frozen=True)
class ScheduledRun:
    """One aprun placed on the machine."""

    run_id: int
    job_id: int
    app_id: int
    user_id: int
    node_ids: np.ndarray
    start_minute: float
    end_minute: float

    @property
    def duration_minutes(self) -> float:
        """Wall-clock length of the run."""
        return self.end_minute - self.start_minute

    @property
    def gpu_core_hours(self) -> float:
        """Aggregate GPU core-hours (runtime x allocated nodes)."""
        return self.duration_minutes / 60.0 * self.node_ids.size


class WorkloadScheduler:
    """Generates the full run schedule for a trace."""

    def __init__(
        self,
        config: TraceConfig,
        catalog: ApplicationCatalog,
        machine: Machine,
        seeds: SeedSequenceFactory,
        scenario: CompiledScenario | None = None,
    ) -> None:
        self._config = config
        self._catalog = catalog
        self._machine = machine
        self._rng = seeds.generator("scheduler")
        # Workload-shift hooks scale interarrival gaps and durations as
        # pure functions of time — the draw sequence itself is untouched,
        # so the scheduler stays deterministic and shard-independent.
        self._scenario = scenario if scenario is not None and scenario.has_workload else None

    def build_schedule(self) -> list[ScheduledRun]:
        """Return all runs of the trace, sorted by start time."""
        cfg = self._config
        wl = cfg.workload
        rng = self._rng
        machine = self._machine

        # Arrival rate (jobs/minute) implied by the utilization target.
        apruns_per_job = 1.0 + wl.second_aprun_probability
        node_minutes_per_job = (
            wl.mean_runtime_minutes * wl.mean_nodes_per_run * apruns_per_job
        )
        jobs_per_minute = (
            machine.num_nodes * wl.target_utilization / node_minutes_per_job
        )

        free_at = np.zeros(machine.num_nodes)
        # Static locality cost of placing each node for each home cabinet is
        # derived on demand from cabinet coordinates.
        cab_x = machine.cabinet_x.astype(float)
        cab_y = machine.cabinet_y.astype(float)
        grid_x = machine.config.grid_x

        runs: list[ScheduledRun] = []
        run_id = 0
        job_id = 0
        t = self._next_arrival(0.0, jobs_per_minute, rng)
        horizon = cfg.duration_minutes
        while t < horizon:
            app = self._catalog.sample_app(rng)
            user_id = int(rng.integers(0, 400))
            n_apruns = 1 + int(rng.random() < wl.second_aprun_probability)
            node_ids = self._allocate(app, free_at, cab_x, cab_y, grid_x, rng)
            start = max(t, float(free_at[node_ids].max()))
            for _ in range(n_apruns):
                duration = self._sample_duration(app, rng, start)
                end = start + duration
                if start >= horizon:
                    break
                runs.append(
                    ScheduledRun(
                        run_id=run_id,
                        job_id=job_id,
                        app_id=app.app_id,
                        user_id=user_id,
                        node_ids=node_ids.copy(),
                        start_minute=start,
                        end_minute=min(end, horizon),
                    )
                )
                run_id += 1
                start = end
            free_at[node_ids] = start
            job_id += 1
            t = self._next_arrival(t, jobs_per_minute, rng)
        runs.sort(key=lambda r: r.start_minute)
        return runs

    # ------------------------------------------------------------------
    def _next_arrival(
        self, t: float, jobs_per_minute: float, rng: np.random.Generator
    ) -> float:
        gap = float(rng.exponential(1.0 / jobs_per_minute))
        if self._scenario is not None:
            gap /= self._scenario.arrival_factor(t)
        return t + gap

    def _sample_duration(
        self, app: ApplicationSpec, rng: np.random.Generator, start_minute: float
    ) -> float:
        sigma = self._config.workload.runtime_sigma
        duration = app.median_runtime_minutes * rng.lognormal(0.0, sigma)
        if self._scenario is not None:
            duration *= self._scenario.runtime_factor(start_minute)
        # At least two sampler ticks so every run has an in-run profile.
        return max(duration, 2.0 * self._config.tick_minutes)

    def _sample_node_count(
        self, app: ApplicationSpec, rng: np.random.Generator
    ) -> int:
        wl = self._config.workload
        count = int(round(app.median_nodes * rng.lognormal(0.0, 0.5)))
        return int(np.clip(count, 1, min(wl.max_nodes_per_run, self._machine.num_nodes)))

    def _allocate(
        self,
        app: ApplicationSpec,
        free_at: np.ndarray,
        cab_x: np.ndarray,
        cab_y: np.ndarray,
        grid_x: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Pick nodes for one job: earliest-free first, near the app's home.

        The score mixes availability time with grid distance from the
        application's home cabinet; the locality term is scaled so it only
        breaks ties among nodes freeing up within roughly the same hour.
        """
        n_nodes = self._sample_node_count(app, rng)
        home_x = app.home_cabinet % grid_x
        home_y = app.home_cabinet // grid_x
        distance = np.abs(cab_x - home_x) + np.abs(cab_y - home_y)
        bias = self._config.workload.locality_bias
        score = free_at + bias * 60.0 * distance / max(1.0, distance.max())
        score = score + rng.random(score.size) * 1e-3  # stable random tiebreak
        chosen = np.argpartition(score, n_nodes - 1)[:n_nodes]
        return np.sort(chosen)
