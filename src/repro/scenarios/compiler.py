"""Compile a :class:`~repro.scenarios.events.Scenario` into schedules.

:func:`compile_scenario` turns the declarative event list into a
:class:`CompiledScenario` — precomputed node-region masks plus cheap
pure functions of ``minute`` that the telemetry layer queries from its
hot loops.  A ``None`` or empty scenario compiles to ``None``, and every
consumer gates its hook on that, so the scenario-off code path is the
exact pre-scenario code path (bit-identical golden digests).

Determinism contract: every compiled quantity is either a pure function
of ``(config, scenario, minute)`` (thermal offsets, rate factors,
workload factors) or drawn from a scenario-keyed whole-machine stream
(maintenance susceptibility redraws, stream ``"scenario-maintenance"``)
— never from the base simulation's streams and never dependent on the
shard span — so attaching a scenario perturbs no existing draw and keeps
``--jobs N`` bit-identical to ``--jobs 1``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.scenarios.events import (
    Aging,
    CoolingDegradation,
    Maintenance,
    Scenario,
    SbeStorm,
    SeasonalDrift,
    WorkloadShift,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a config cycle
    from repro.telemetry.config import ErrorModelConfig, TraceConfig
    from repro.utils.rng import SeedSequenceFactory

__all__ = ["CompiledScenario", "compile_scenario"]

MINUTES_PER_DAY = 1440.0


def _region_mask(num_nodes: int, lo: int, hi: int | None) -> np.ndarray:
    """Whole-machine boolean mask for ``[lo, hi)`` (shard-independent)."""
    mask = np.zeros(num_nodes, dtype=bool)
    mask[lo : num_nodes if hi is None else min(hi, num_nodes)] = True
    return mask


class CompiledScenario:
    """Deterministic parameter schedules for one scenario on one machine.

    Only built through :func:`compile_scenario`; callers hold either a
    ``CompiledScenario`` (scenario on) or ``None`` (scenario off) and
    gate every hook on that distinction.
    """

    def __init__(self, scenario: Scenario, config: TraceConfig) -> None:
        num_nodes = config.machine.num_nodes
        self._seed = int(scenario.seed)
        self._seasonal: list[SeasonalDrift] = []
        self._cooling: list[tuple[CoolingDegradation, np.ndarray]] = []
        self._storms: list[tuple[SbeStorm, np.ndarray]] = []
        self._aging: list[tuple[Aging, np.ndarray]] = []
        self._shifts: list[WorkloadShift] = []
        maintenance: list[Maintenance] = []
        for event in scenario.events:
            if isinstance(event, SeasonalDrift):
                self._seasonal.append(event)
            elif isinstance(event, CoolingDegradation):
                self._cooling.append(
                    (event, _region_mask(num_nodes, event.node_lo, event.node_hi))
                )
            elif isinstance(event, SbeStorm):
                self._storms.append(
                    (event, _region_mask(num_nodes, event.node_lo, event.node_hi))
                )
            elif isinstance(event, Aging):
                self._aging.append(
                    (event, _region_mask(num_nodes, event.node_lo, event.node_hi))
                )
            elif isinstance(event, WorkloadShift):
                self._shifts.append(event)
            elif isinstance(event, Maintenance):
                maintenance.append(event)
        # Stable order for seed-stream indices: by day, ties by original
        # position (sorted() is stable over the enumerate order).
        self._maintenance = sorted(maintenance, key=lambda ev: ev.day)

    # -- gates ----------------------------------------------------------
    @property
    def has_thermal(self) -> bool:
        """Any ambient-offset event (seasonal drift / cooling loss)."""
        return bool(self._seasonal or self._cooling)

    @property
    def has_error_factors(self) -> bool:
        """Any multiplicative error-rate event (storm / aging)."""
        return bool(self._storms or self._aging)

    @property
    def has_maintenance(self) -> bool:
        """Any susceptibility-redraw event."""
        return bool(self._maintenance)

    @property
    def has_workload(self) -> bool:
        """Any workload-mix shift."""
        return bool(self._shifts)

    # -- thermal --------------------------------------------------------
    def ambient_offset(
        self, minute: float, lo: int, hi: int
    ) -> float | np.ndarray | None:
        """Extra ambient degrees for nodes ``[lo, hi)`` at ``minute``.

        Returns ``None`` when no thermal event is active (the thermal
        hook then stays entirely off for the tick).
        """
        total: float | np.ndarray | None = None
        day = minute / MINUTES_PER_DAY
        for event in self._seasonal:
            if event.start_day <= day < event.end_day:
                value = event.amplitude_celsius * math.sin(
                    2.0
                    * math.pi
                    * (day - event.start_day + event.phase_days)
                    / event.period_days
                )
                total = value if total is None else total + value
        for event, mask in self._cooling:
            if day >= event.start_day:
                ramp = min(
                    1.0,
                    (day - event.start_day) / (event.end_day - event.start_day),
                )
                value = mask[lo:hi] * (ramp * event.celsius_at_end)
                total = value if total is None else total + value
        return total

    # -- errors ---------------------------------------------------------
    def error_rate_factor(
        self, node_ids: np.ndarray, start_minute: float
    ) -> np.ndarray:
        """Multiplicative SBE-rate factor per node for a run starting at
        ``start_minute`` (applied before the ``max_rate_per_hour`` cap)."""
        day = start_minute / MINUTES_PER_DAY
        factor = np.ones(node_ids.size)
        for event, mask in self._storms:
            if event.start_day <= day < event.end_day:
                factor = factor * np.where(mask[node_ids], event.rate_factor, 1.0)
        for event, mask in self._aging:
            if day >= event.start_day:
                aged_days = min(day, event.end_day) - event.start_day
                growth = math.exp(event.growth_per_day * aged_days)
                factor = factor * np.where(mask[node_ids], growth, 1.0)
        return factor

    def susceptibility_epochs(
        self,
        base: np.ndarray,
        seeds: SeedSequenceFactory,
        config: ErrorModelConfig,
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Piecewise-constant susceptibility: ``(epoch_starts, arrays)``.

        Epoch 0 is the base draw; each maintenance event appends a copy
        with its region redrawn from the ``"scenario-maintenance"``
        stream (keyed by scenario seed + event index, full-region draws,
        so every shard reconstructs identical epochs).  ``epoch_starts``
        is sorted ascending; the epoch for minute ``m`` is
        ``searchsorted(starts, m, side="right") - 1``.
        """
        starts = [0.0]
        epochs = [base]
        for index, event in enumerate(self._maintenance):
            rng = seeds.generator("scenario-maintenance", self._seed, index)
            lo = event.node_lo
            hi = base.size if event.node_hi is None else min(event.node_hi, base.size)
            size = hi - lo
            offender = rng.random(size) < config.offender_node_fraction
            boost = config.offender_median_boost * np.exp(
                rng.normal(0.0, config.offender_sigma, size)
            )
            redrawn = np.where(
                offender,
                boost * event.susceptibility_scale,
                config.ordinary_susceptibility,
            )
            fresh = epochs[-1].copy()
            fresh[lo:hi] = redrawn
            starts.append(event.day * MINUTES_PER_DAY)
            epochs.append(fresh)
        return np.asarray(starts), epochs

    # -- workload -------------------------------------------------------
    def _shift_product(self, minute: float, attr: str) -> float:
        value = 1.0
        day = minute / MINUTES_PER_DAY
        for event in self._shifts:
            if event.start_day <= day < event.end_day:
                value *= getattr(event, attr)
        return value

    def arrival_factor(self, minute: float) -> float:
        """Job-arrival rate multiplier at ``minute``."""
        return self._shift_product(minute, "arrival_factor")

    def runtime_factor(self, minute: float) -> float:
        """Run-duration multiplier for runs starting at ``minute``."""
        return self._shift_product(minute, "runtime_factor")

    def gpu_util_factor(self, minute: float) -> float:
        """GPU-utilization multiplier for runs starting at ``minute``."""
        return self._shift_product(minute, "gpu_util_factor")

    def memory_factor(self, minute: float) -> float:
        """Memory-pressure multiplier for runs starting at ``minute``."""
        return self._shift_product(minute, "memory_factor")


def compile_scenario(
    scenario: Scenario | None, config: TraceConfig
) -> CompiledScenario | None:
    """Compile ``scenario`` against ``config``; ``None``/empty -> ``None``.

    Returning ``None`` (rather than an inert object) is the neutrality
    mechanism: every telemetry hook is gated on ``compiled is not None``,
    so a scenario-off simulation executes exactly the pre-scenario code.
    """
    if scenario is None or scenario.empty:
        return None
    return CompiledScenario(scenario, config)
