"""Named preset scenarios for experiments, smokes, and the CLI.

Each preset is a small, composable :class:`~repro.scenarios.events.Scenario`
expressed in *relative* terms (whole-machine or fractional regions, days
from trace start) so it attaches meaningfully to any preset config.  The
`regime-change` preset is the canonical drift driver: a whole-machine
maintenance reinstall mid-trace moves the offender-node set, which is
precisely the concept drift a frozen stage-1 offender filter cannot
survive.
"""

from __future__ import annotations

from repro.scenarios.events import (
    Aging,
    CoolingDegradation,
    Maintenance,
    SbeStorm,
    Scenario,
    SeasonalDrift,
    WorkloadShift,
)
from repro.utils.errors import ConfigurationError

__all__ = ["scenario_preset", "scenario_preset_names"]


def _regime_change(day: float) -> Scenario:
    return Scenario(events=(Maintenance(day=day),))


_PRESETS = {
    # Whole-machine reinstall at day 13: the offender set is redrawn, so
    # models trained on days [0, 13) go stale at once.
    "regime-change": lambda: _regime_change(13.0),
    # Same regime change plus a burst storm shortly after the reinstall —
    # the stress case for the drift detectors (distribution moves twice).
    "regime-change-storm": lambda: Scenario(
        events=(
            Maintenance(day=13.0),
            SbeStorm(start_day=14.0, end_day=16.0, rate_factor=6.0),
        )
    ),
    # A short SBE burst storm on the lower half of the machine.
    "storm": lambda: Scenario(
        events=(SbeStorm(start_day=5.0, end_day=7.0, rate_factor=8.0, node_hi=48),)
    ),
    # Slow seasonal ambient swing across the whole trace.
    "season": lambda: Scenario(
        events=(
            SeasonalDrift(
                start_day=0.0,
                end_day=3650.0,
                amplitude_celsius=2.5,
                period_days=28.0,
            ),
        )
    ),
    # Everything at once: seasonal swing, a cooling-degraded region, a
    # mid-trace reinstall, a DL-training-style workload shift, a storm,
    # and machine-wide aging.
    "cluster-life": lambda: Scenario(
        events=(
            SeasonalDrift(
                start_day=0.0,
                end_day=3650.0,
                amplitude_celsius=2.0,
                period_days=21.0,
            ),
            CoolingDegradation(
                start_day=2.0, end_day=12.0, celsius_at_end=4.0, node_lo=0, node_hi=32
            ),
            Maintenance(day=13.0),
            WorkloadShift(
                start_day=13.0,
                end_day=3650.0,
                runtime_factor=1.6,
                gpu_util_factor=1.15,
                memory_factor=1.1,
            ),
            SbeStorm(start_day=15.0, end_day=17.0, rate_factor=5.0),
            Aging(start_day=0.0, end_day=3650.0, growth_per_day=0.01),
        )
    ),
}


def scenario_preset_names() -> tuple[str, ...]:
    """Sorted names of the built-in scenarios."""
    return tuple(sorted(_PRESETS))


def scenario_preset(name: str) -> Scenario:
    """Look up a built-in scenario by name."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; "
            f"choose from {', '.join(scenario_preset_names())}"
        ) from None
    return factory()
