"""Declarative, seeded cluster-lifecycle scenarios (concept drift).

Public surface: the event dataclasses and :class:`Scenario` container
(:mod:`repro.scenarios.events`), the deterministic compiler
(:mod:`repro.scenarios.compiler`), and a few named preset scenarios for
experiments and smokes (:mod:`repro.scenarios.presets`).
"""

from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.events import (
    EVENT_KINDS,
    Aging,
    CoolingDegradation,
    Maintenance,
    SbeStorm,
    Scenario,
    ScenarioEvent,
    SeasonalDrift,
    WorkloadShift,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenarios.presets import scenario_preset, scenario_preset_names

__all__ = [
    "Aging",
    "CompiledScenario",
    "CoolingDegradation",
    "EVENT_KINDS",
    "Maintenance",
    "SbeStorm",
    "Scenario",
    "ScenarioEvent",
    "SeasonalDrift",
    "WorkloadShift",
    "compile_scenario",
    "scenario_from_dict",
    "scenario_preset",
    "scenario_preset_names",
    "scenario_to_dict",
]
