"""Declarative cluster-lifecycle scenario events.

A :class:`Scenario` is an ordered tuple of time-windowed
:class:`ScenarioEvent` s scripting how the simulated machine *changes*
over a trace: seasonal ambient drift, cooling degradation of cabinet
regions, maintenance reinstalls that redraw node susceptibility,
workload-mix shifts, SBE burst storms, and aging.  Events are plain
frozen dataclasses — declarative parameters only, no state — and the
whole scenario is attached to a :class:`~repro.telemetry.config.TraceConfig`
(``scenario=``), serialized into trace sidecars and cache keys, and
compiled into deterministic parameter schedules by
:mod:`repro.scenarios.compiler`.

Two hard rules keep the engine digest-safe:

* **Neutrality** — an absent (``None``) or empty scenario compiles to
  ``None`` and every telemetry hook is gated on that, so a scenario-off
  simulation runs byte-for-byte the code it ran before this module
  existed (the golden digests prove it).
* **Shard determinism** — every event's effect is either a pure
  function of ``(config, scenario, minute)`` or drawn from a
  whole-machine seeded stream and sliced to the span, so ``--jobs N``
  stays bit-identical to ``--jobs 1`` with any scenario attached.

All times are in trace days (``day * 1440`` minutes); node regions are
half-open global node-id ranges ``[node_lo, node_hi)`` with
``node_hi=None`` meaning "to the end of the machine".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

from repro.utils.errors import ConfigurationError

__all__ = [
    "ScenarioEvent",
    "SeasonalDrift",
    "CoolingDegradation",
    "Maintenance",
    "WorkloadShift",
    "SbeStorm",
    "Aging",
    "Scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "EVENT_KINDS",
]


def _check_window(start_day: float, end_day: float) -> None:
    if end_day <= start_day:
        raise ConfigurationError(
            f"scenario event window must satisfy start_day < end_day, "
            f"got [{start_day}, {end_day})"
        )


def _check_region(node_lo: int, node_hi: int | None) -> None:
    if node_lo < 0:
        raise ConfigurationError(f"node_lo must be >= 0, got {node_lo}")
    if node_hi is not None and node_hi <= node_lo:
        raise ConfigurationError(
            f"node region must satisfy node_lo < node_hi, "
            f"got [{node_lo}, {node_hi})"
        )


@dataclass(frozen=True)
class SeasonalDrift:
    """Sinusoidal machine-wide ambient-temperature drift (season/diurnal).

    Inside ``[start_day, end_day)`` the ambient target of every node is
    offset by ``amplitude_celsius * sin(2*pi*(day - start_day + phase_days)
    / period_days)``.
    """

    start_day: float
    end_day: float
    amplitude_celsius: float
    period_days: float = 365.0
    phase_days: float = 0.0

    kind = "seasonal_drift"

    def __post_init__(self) -> None:
        _check_window(self.start_day, self.end_day)
        if self.period_days <= 0:
            raise ConfigurationError("period_days must be positive")


@dataclass(frozen=True)
class CoolingDegradation:
    """Progressive cooling-efficiency loss of one machine region.

    The ambient target of nodes in ``[node_lo, node_hi)`` ramps linearly
    from ``0`` at ``start_day`` to ``+celsius_at_end`` at ``end_day``
    and stays there for the rest of the trace (a failing blower is not
    repaired by the calendar).
    """

    start_day: float
    end_day: float
    celsius_at_end: float
    node_lo: int = 0
    node_hi: int | None = None

    kind = "cooling_degradation"

    def __post_init__(self) -> None:
        _check_window(self.start_day, self.end_day)
        _check_region(self.node_lo, self.node_hi)


@dataclass(frozen=True)
class Maintenance:
    """A drain + reinstall completing at ``day``: susceptibility resets.

    From ``day * 1440`` minutes onward, the latent SBE susceptibility of
    every node in ``[node_lo, node_hi)`` is *redrawn* from the offender
    population of the error-model config (same offender fraction and
    lognormal boost, scaled by ``susceptibility_scale``) using a
    scenario-keyed seed stream — board swaps and reseats move the
    offender set, which is exactly the concept drift a model trained on
    the old offender set cannot see.
    """

    day: float
    node_lo: int = 0
    node_hi: int | None = None
    #: Multiplier on the redrawn offender susceptibility.
    susceptibility_scale: float = 1.0

    kind = "maintenance"

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ConfigurationError(f"maintenance day must be >= 0, got {self.day}")
        _check_region(self.node_lo, self.node_hi)
        if self.susceptibility_scale <= 0:
            raise ConfigurationError("susceptibility_scale must be positive")


@dataclass(frozen=True)
class WorkloadShift:
    """A workload-mix change inside ``[start_day, end_day)``.

    ``arrival_factor`` scales the batch-job arrival rate,
    ``runtime_factor`` scales sampled run durations (DL-training-style
    long jobs), and ``gpu_util_factor`` / ``memory_factor`` scale the
    per-run utilization and memory-pressure draws (clipped to their
    usual ranges).  Factors of exactly ``1.0`` are identities.
    """

    start_day: float
    end_day: float
    arrival_factor: float = 1.0
    runtime_factor: float = 1.0
    gpu_util_factor: float = 1.0
    memory_factor: float = 1.0

    kind = "workload_shift"

    def __post_init__(self) -> None:
        _check_window(self.start_day, self.end_day)
        for name in ("arrival_factor", "runtime_factor", "gpu_util_factor", "memory_factor"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class SbeStorm:
    """An SBE burst storm: the composed error rate is multiplied by
    ``rate_factor`` for runs starting inside ``[start_day, end_day)``
    on nodes in ``[node_lo, node_hi)``."""

    start_day: float
    end_day: float
    rate_factor: float
    node_lo: int = 0
    node_hi: int | None = None

    kind = "sbe_storm"

    def __post_init__(self) -> None:
        _check_window(self.start_day, self.end_day)
        _check_region(self.node_lo, self.node_hi)
        if self.rate_factor <= 0:
            raise ConfigurationError("rate_factor must be positive")


@dataclass(frozen=True)
class Aging:
    """Aging-driven susceptibility growth.

    For runs starting inside ``[start_day, end_day)`` on nodes in
    ``[node_lo, node_hi)``, the error rate grows as
    ``exp(growth_per_day * (day - start_day))``; past ``end_day`` the
    factor freezes at its end-of-window value (hardware does not
    un-age).
    """

    start_day: float
    end_day: float
    growth_per_day: float
    node_lo: int = 0
    node_hi: int | None = None

    kind = "aging"

    def __post_init__(self) -> None:
        _check_window(self.start_day, self.end_day)
        _check_region(self.node_lo, self.node_hi)


#: kind tag -> event class (the serialization registry).
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        SeasonalDrift,
        CoolingDegradation,
        Maintenance,
        WorkloadShift,
        SbeStorm,
        Aging,
    )
}

#: Union alias for type hints.
ScenarioEvent = (
    SeasonalDrift | CoolingDegradation | Maintenance | WorkloadShift | SbeStorm | Aging
)


@dataclass(frozen=True)
class Scenario:
    """An ordered, composable script of cluster-lifecycle events.

    The event order is cosmetic — effects compose commutatively
    (offsets add, factors multiply, maintenance epochs sort by day) —
    but serialization preserves it so round-trips are exact.
    """

    events: tuple = ()
    #: Extra seed entropy for scenario-keyed draws (maintenance redraws),
    #: mixed with the trace's root seed.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in EVENT_KINDS.values():
                raise ConfigurationError(
                    f"not a scenario event: {event!r} "
                    f"(expected one of {sorted(EVENT_KINDS)})"
                )

    @property
    def empty(self) -> bool:
        """True when the scenario scripts nothing (compiles to ``None``)."""
        return not self.events

    def __len__(self) -> int:
        return len(self.events)


def scenario_to_dict(scenario: Scenario) -> dict:
    """JSON-serializable form with per-event ``kind`` tags."""
    return {
        "seed": int(scenario.seed),
        "events": [
            {"kind": event.kind, **asdict(event)} for event in scenario.events
        ],
    }


def scenario_from_dict(raw: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict` (unknown kinds are errors)."""
    events = []
    for item in raw.get("events", ()):
        payload = dict(item)
        kind = payload.pop("kind", None)
        cls = EVENT_KINDS.get(kind)
        if cls is None:
            raise ConfigurationError(
                f"unknown scenario event kind {kind!r}; "
                f"known: {sorted(EVENT_KINDS)}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"scenario event {kind!r} has unknown fields {sorted(unknown)}"
            )
        events.append(cls(**payload))
    return Scenario(events=tuple(events), seed=int(raw.get("seed", 0)))
