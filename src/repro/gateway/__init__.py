"""Fleet serving gateway: async multi-tenant scoring for the whole machine.

Layers (bottom up):

* :mod:`repro.gateway.clock` — counted virtual clock (tests never sleep)
* :mod:`repro.gateway.router` — consistent-hash ring, node -> shard
* :mod:`repro.gateway.alarms` — dedup / ack / escalation alarm engine
* :mod:`repro.gateway.codec` — JSON wire codec for telemetry events
* :mod:`repro.gateway.watcher` — registry watcher, rolling hot-swaps
* :mod:`repro.gateway.core` — the gateway itself (shards, accounting)
* :mod:`repro.gateway.http` — stdlib-asyncio HTTP front end
* :mod:`repro.gateway.fleet` — synthetic multi-tenant replay clients

Every shard runs the same :class:`~repro.serve.worker.ScorerWorker` loop
as ``serve_replay``; with one shard and one client the gateway's scored-
alert digest is bit-identical to the replay's (the parity gate in
``tools/check_determinism.py`` enforces it).
"""

from repro.gateway.alarms import Alarm, AlarmConfig, AlarmEngine
from repro.gateway.clock import VirtualClock
from repro.gateway.codec import event_from_dict, event_to_dict
from repro.gateway.core import Gateway, GatewayConfig, GatewayStats, build_gateway
from repro.gateway.fleet import FleetReport, SyntheticClient, build_fleet, run_fleet
from repro.gateway.http import GatewayHTTPServer, http_request
from repro.gateway.router import ConsistentHashRing
from repro.gateway.watcher import RegistryWatcher

__all__ = [
    "Alarm",
    "AlarmConfig",
    "AlarmEngine",
    "VirtualClock",
    "event_from_dict",
    "event_to_dict",
    "Gateway",
    "GatewayConfig",
    "GatewayStats",
    "build_gateway",
    "FleetReport",
    "SyntheticClient",
    "build_fleet",
    "run_fleet",
    "GatewayHTTPServer",
    "http_request",
    "ConsistentHashRing",
    "RegistryWatcher",
]
