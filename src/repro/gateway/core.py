"""The fleet serving gateway: sharded async scoring with alarms.

This is the operational front end ROADMAP item 2 asks for: instead of
replaying one trace through one scorer (:func:`repro.serve.serve_replay`),
the gateway accepts a fleet's event stream, routes it across N scorer
shards by consistent-hashing the node id, folds the resulting alerts
into operator alarms and per-node score trends, and keeps strict
zero-drop accounting: every accepted event is either scored, dead-
lettered, or rejected — never silently lost.

Sharding model
--------------
Each shard is one :class:`~repro.serve.worker.ScorerWorker` — the exact
loop body ``serve_replay`` runs — behind an ``asyncio.Queue``:

* ``RunStarted`` / ``RunCompleted`` split **row-wise by node owner**:
  each shard receives only the rows whose node it owns (rows keep their
  original order, so per-row features are unchanged by the split);
* ``SbeObserved`` / ``JobResolved`` **broadcast to every shard**: the
  feature engine's SBE history is machine-global (neighbourhood error
  pressure), so every shard must observe every error event to compute
  the same per-row features the single-scorer replay computes.

This makes per-row features bit-identical at any shard count, and with
one shard the delivered stream is exactly the replay stream — the basis
for the gateway-vs-replay digest parity gate.  Chaos plans shift their
seed per shard (``seed + shard_id``) so shard 0 of a 1-shard gateway
reproduces the replay's chaos draws bit-for-bit.

Accounting
----------
``events_in`` counts accepted ingests.  Each event has exactly one
*primary* delivery (the shard owning its first node); broadcast replicas
update history only.  After :meth:`Gateway.close`::

    events_in == events_scored + events_dead_lettered + events_rejected

holds or :meth:`GatewayStats.zero_drop` is ``False`` — the load
experiment and the CI smoke assert it under chaos.
"""

from __future__ import annotations

import asyncio
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.baselines import BasicB
from repro.core.pipeline import PredictionPipeline
from repro.core.twostage import TwoStagePredictor
from repro.features.builder import build_features, compute_top_apps
from repro.features.splits import DatasetSplit
from repro.gateway.alarms import AlarmConfig, AlarmEngine
from repro.obs import MetricsRegistry, get_registry
from repro.gateway.clock import VirtualClock
from repro.gateway.router import ConsistentHashRing
from repro.gateway.watcher import RegistryWatcher
from repro.ml.kernels import set_backend
from repro.serve.engine import StreamingFeatureEngine
from repro.serve.events import JobResolved, RunCompleted, RunStarted, SbeObserved
from repro.serve.drift import DriftConfig, DriftMonitor
from repro.serve.registry import ModelRegistry
from repro.serve.resilience import (
    AllNegativeFallback,
    ChaosInjector,
    ChaosPlan,
    SupervisedScorer,
)
from repro.serve.scorer import Alert, ScorerConfig
from repro.serve.worker import ScorerWorker, scored_alert_digest
from repro.telemetry.trace import Trace
from repro.utils.errors import ValidationError

__all__ = ["GatewayConfig", "GatewayStats", "Gateway", "build_gateway"]

MINUTES_PER_DAY = 1440.0

#: Queue sentinel telling a shard loop to exit.
_STOP = object()


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway shape and service knobs."""

    shards: int = 1
    ring_replicas: int = 64
    #: Micro-batch size per shard scorer.
    batch_size: int = 256
    flush_deadline_minutes: float = 30.0
    #: Per-shard ingest queue bound (backpressure past this depth).
    max_queue_depth: int = 4096
    #: Scored points retained per node for the /trend endpoint.
    trend_length: int = 64
    alarms: AlarmConfig = field(default_factory=AlarmConfig)
    #: Registry poll cadence on the virtual clock.
    watch_interval_minutes: float = 1440.0
    #: Streaming drift detection over the scored stream.  ``None``
    #: (the default) disables it entirely — the monitor, its gauges,
    #: and its ``kind="drift"`` alarms all vanish, which is what keeps
    #: the gateway-vs-replay parity digest and the alarm counts of
    #: drift-off runs byte-identical to before this knob existed.
    drift: DriftConfig | None = None
    #: Scoring-kernel backend for the shard scorers ("numpy"/"numba").
    #: ``None`` (the default) keeps the process-wide selection.
    #: Backends are bit-identical, so the parity digest is
    #: backend-invariant.
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValidationError("a gateway needs at least one shard")
        if self.max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")


@dataclass
class GatewayStats:
    """Zero-drop event accounting plus delivery telemetry."""

    #: Events accepted for ingestion (well-formed POSTs + direct ingests).
    events_in: int = 0
    #: Events fully applied at their primary shard.
    events_scored: int = 0
    #: Events the primary shard's engine refused (quarantined to DLQ).
    events_dead_lettered: int = 0
    #: Events turned away at the door (malformed payload / closed gateway).
    events_rejected: int = 0
    #: Shard deliveries, counting broadcast replicas.
    deliveries: int = 0

    @property
    def zero_drop(self) -> bool:
        """The gateway's accounting invariant: nothing silently lost."""
        return self.events_in == (
            self.events_scored + self.events_dead_lettered + self.events_rejected
        )

    def to_dict(self) -> dict:
        return {
            "events_in": self.events_in,
            "events_scored": self.events_scored,
            "events_dead_lettered": self.events_dead_lettered,
            "events_rejected": self.events_rejected,
            "deliveries": self.deliveries,
            "zero_drop": self.zero_drop,
        }


class Gateway:
    """Routes fleet events across scorer shards; folds alerts to alarms.

    Lifecycle: construct (usually via :func:`build_gateway`), ``await
    start()``, ``await ingest(event)`` any number of times, ``await
    close()``.  All coroutines run on one event loop; shard workers are
    plain synchronous code inside shard tasks, so the whole gateway is
    single-threaded and deterministic for a fixed ingest order.
    """

    def __init__(
        self,
        workers: list[ScorerWorker],
        *,
        config: GatewayConfig | None = None,
        clock: VirtualClock | None = None,
        watcher: RegistryWatcher | None = None,
    ) -> None:
        if not workers:
            raise ValidationError("a gateway needs at least one shard worker")
        self.config = config or GatewayConfig(shards=len(workers))
        if self.config.shards != len(workers):
            raise ValidationError(
                f"config says {self.config.shards} shard(s) but "
                f"{len(workers)} worker(s) given"
            )
        self.workers = workers
        self.clock = clock or VirtualClock()
        self.watcher = watcher
        self.ring = ConsistentHashRing(
            range(len(workers)), replicas=self.config.ring_replicas
        )
        self.stats = GatewayStats()
        self.alarm_engine = AlarmEngine(self.config.alarms)
        #: node_id -> recent (end_minute, score, predicted, model_version).
        self.trends: dict[int, deque] = defaultdict(
            lambda: deque(maxlen=self.config.trend_length)
        )
        self.scored_alerts: list[Alert] = []
        # The process obs registry — or a private always-on one when obs
        # is globally disabled, so /stats latency never silently zeroes.
        process_registry = get_registry()
        self.registry = (
            process_registry if process_registry.enabled else MetricsRegistry()
        )
        #: The one shared wall-latency histogram: GET /stats, the
        #: `gateway` experiment table, and bench_gateway.py all compute
        #: p50/p99 from this instrument, so they cannot disagree.
        self.handle_latency = self.registry.histogram(
            "repro_gateway_handle_seconds",
            "Wall seconds handling one primary event.",
            wall=True,
        )
        self._queue_depth = self.registry.gauge(
            "repro_gateway_queue_depth",
            "Events waiting in each shard queue.",
            wall=True,
        )
        self._events_counter = self.registry.counter(
            "repro_gateway_events_total", "Events by terminal outcome."
        )
        self._alarms_counter = self.registry.counter(
            "repro_gateway_alarms_total", "Alarms raised by the alarm engine."
        )
        self._model_version_gauge = self.registry.gauge(
            "repro_serve_active_model_version",
            "Registry version of the model currently serving.",
        )
        #: Observational drift monitor over the scored stream (no
        #: governor: the gateway swaps models via the registry watcher,
        #: so drift here raises alarms and gauges, it never retrains).
        self.drift = (
            None if self.config.drift is None else DriftMonitor(self.config.drift)
        )
        self.drift_alarms = 0
        self._drift_cursors = [0] * len(workers)
        self._drift_last_check: float | None = None
        self._drift_last_alarm: float | None = None
        self._drift_gauge = (
            None
            if self.drift is None
            else self.registry.gauge(
                "repro_serve_drift_statistic",
                "Current drift-detector statistics, by detector.",
            )
        )
        self._queues: list[asyncio.Queue] = []
        self._tasks: list[asyncio.Task] = []
        self._started = False
        self._closed = False

    # ----------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self._started:
            raise ValidationError("gateway already started")
        self._started = True
        self._queues = [
            asyncio.Queue(maxsize=self.config.max_queue_depth)
            for _ in self.workers
        ]
        self._tasks = [
            asyncio.create_task(self._shard_loop(shard_id))
            for shard_id in range(len(self.workers))
        ]

    async def drain(self) -> None:
        """Wait until every shard queue is empty and fully processed."""
        for queue in self._queues:
            await queue.join()

    async def close(self) -> None:
        """Drain, stop shard tasks, flush scorers, finalize accounting."""
        if not self._started or self._closed:
            return
        await self.drain()
        self._closed = True
        for queue in self._queues:
            queue.put_nowait(_STOP)
        await asyncio.gather(*self._tasks)
        # End-of-stream flush in shard order: drains micro-batch queues
        # and replays dead-lettered batches, exactly like replay's finish.
        for worker in self.workers:
            self._absorb(worker.finish())

    # ------------------------------------------------------------- ingest
    async def ingest(self, event) -> None:
        """Accept one event; blocks (backpressure) when queues are full."""
        if not self._started or self._closed:
            self.stats.events_in += 1
            self.stats.events_rejected += 1
            self._events_counter.inc(outcome="rejected")
            raise ValidationError("gateway is not accepting events")
        self.clock.advance_to(event.minute)
        if self.watcher is not None:
            self.watcher.check(self.clock.now)
        self.stats.events_in += 1
        for shard_id, sub_event, primary in self._route(event):
            await self._queues[shard_id].put((sub_event, primary))
            self.stats.deliveries += 1

    def reject(self, reason: str) -> str:
        """Count one door rejection (malformed payload); returns reason."""
        self.stats.events_in += 1
        self.stats.events_rejected += 1
        return reason

    # ------------------------------------------------------------ routing
    def _route(self, event):
        """Yield (shard_id, sub_event, is_primary) deliveries for an event.

        Run events split row-wise by node owner; SBE/label events
        broadcast (machine-global feature history).  With one shard the
        original event object passes through untouched.
        """
        n = len(self.workers)
        if isinstance(event, (SbeObserved, JobResolved)):
            if isinstance(event, SbeObserved):
                primary = self.ring.route(event.node_id)
            else:
                primary = (
                    self.ring.route(int(event.node_ids[0]))
                    if len(event.node_ids)
                    else 0
                )
            for shard_id in range(n):
                yield shard_id, event, shard_id == primary
            return
        if isinstance(event, RunStarted):
            owners = np.asarray(
                [self.ring.route(int(node)) for node in event.node_ids], dtype=int
            )
            for shard_id in _owner_order(owners):
                mask = owners == shard_id
                if mask.all():
                    sub = event
                else:
                    sub = RunStarted(
                        minute=event.minute,
                        run_idx=event.run_idx,
                        node_ids=event.node_ids[mask],
                        app_ids=event.app_ids[mask],
                        start_minutes=event.start_minutes[mask],
                    )
                yield shard_id, sub, shard_id == owners[0]
            return
        if isinstance(event, RunCompleted):
            nodes = np.asarray(event.rows["node_id"], dtype=int)
            owners = np.asarray(
                [self.ring.route(int(node)) for node in nodes], dtype=int
            )
            for shard_id in _owner_order(owners):
                mask = owners == shard_id
                if mask.all():
                    sub = event
                else:
                    sub = RunCompleted(
                        minute=event.minute,
                        run_idx=event.run_idx,
                        rows={k: v[mask] for k, v in event.rows.items()},
                    )
                yield shard_id, sub, shard_id == owners[0]
            return
        raise ValidationError(
            f"cannot route event of type {type(event).__name__}"
        )

    # -------------------------------------------------------- shard loop
    async def _shard_loop(self, shard_id: int) -> None:
        queue = self._queues[shard_id]
        worker = self.workers[shard_id]

        def between(minute: float) -> None:
            if self.watcher is not None:
                self.watcher.maybe_swap(shard_id, worker.scorer)

        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                return
            event, primary = item
            self._queue_depth.set(queue.qsize(), shard=shard_id)
            started = time.perf_counter()
            quarantined_before = worker.events_quarantined
            alerts = worker.handle_event(event, between=between)
            if primary:
                self.handle_latency.observe(time.perf_counter() - started)
                if worker.events_quarantined > quarantined_before:
                    self.stats.events_dead_lettered += 1
                    self._events_counter.inc(outcome="dead_lettered")
                else:
                    self.stats.events_scored += 1
                    self._events_counter.inc(outcome="scored")
            self._absorb(alerts)
            queue.task_done()

    def _absorb(self, alerts: list[Alert]) -> None:
        for alert in alerts:
            self.scored_alerts.append(alert)
            self.trends[int(alert.node_id)].append(
                (
                    float(alert.end_minute),
                    float(alert.score),
                    int(alert.predicted),
                    int(alert.model_version),
                )
            )
            self._model_version_gauge.set(int(alert.model_version))
            alarms_before = len(self.alarm_engine.alarms)
            self.alarm_engine.observe(alert)
            raised = len(self.alarm_engine.alarms) - alarms_before
            if raised:
                self._alarms_counter.inc(raised)
            if self.drift is not None:
                self.drift.observe_alert(alert)
        if self.drift is not None and alerts:
            self._feed_drift()
            self._check_drift(max(float(a.scored_minute) for a in alerts))

    # -------------------------------------------------------------- drift
    def _feed_drift(self) -> None:
        """Advance per-shard cursors over emitted rows into the monitor.

        Only rows inside the scoring window feed the feature-PSI
        reference/current histograms — the same stream the model
        actually scores.  Labels broadcast to every shard, so shard 0's
        map is the machine-global ground truth.
        """
        for shard_id, worker in enumerate(self.workers):
            rows = worker.history_rows
            lo = None if worker.window is None else worker.window[0]
            for row in rows[self._drift_cursors[shard_id] :]:
                if lo is None or row.start_minute >= lo:
                    self.drift.observe_row(row)
            self._drift_cursors[shard_id] = len(rows)
        self.drift.match_labels(self.workers[0].labels)

    def _check_drift(self, now: float) -> None:
        """Publish detector gauges; raise a ``drift`` alarm on trigger.

        ``now`` is the event time of the newest absorbed alert, not the
        ingest clock: a flooding client can push ``clock.now`` to the
        end of the trace before the first batch even scores, which
        would pin the check throttle (and the cooldown) at a single
        instant.  Scored-stream time interleaves correctly no matter
        how far ingestion runs ahead of scoring.
        """
        cfg = self.config.drift
        if (
            self._drift_last_check is not None
            and now - self._drift_last_check < cfg.check_every_minutes
        ):
            return
        self._drift_last_check = now
        state = self.drift.state()
        for detector in ("feature_psi", "score_psi", "f1_decay", "rolling_f1"):
            self._drift_gauge.set(state[detector], detector=detector)
        reason = self.drift.drift_reason()
        if reason is None:
            return
        if (
            self._drift_last_alarm is not None
            and now - self._drift_last_alarm < cfg.cooldown_minutes
        ):
            return
        self._drift_last_alarm = now
        self.drift_alarms += 1
        alarms_before = len(self.alarm_engine.alarms)
        self.alarm_engine.signal(
            node_id=-1,
            kind="drift",
            minute=now,
            score=state.get(reason, 0.0),
        )
        raised = len(self.alarm_engine.alarms) - alarms_before
        if raised:
            self._alarms_counter.inc(raised, kind="drift")

    # ------------------------------------------------------------ queries
    def scored_alert_digest(self) -> str:
        """Canonical digest of every scored alert (parity with replay)."""
        return scored_alert_digest(self.scored_alerts)

    def node_trend(self, node_id: int) -> list[dict]:
        return [
            {
                "end_minute": minute,
                "score": score,
                "predicted": predicted,
                "model_version": version,
            }
            for minute, score, predicted, version in self.trends.get(
                int(node_id), ()
            )
        ]

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p99 wall seconds per primary event, 0.0 before any event.

        Estimated from the shared ``repro_gateway_handle_seconds``
        histogram (Prometheus-style linear interpolation inside fixed
        buckets) — the same series every scrape of ``/metrics`` exports.
        """
        return {
            "p50": self.handle_latency.quantile(0.5),
            "p99": self.handle_latency.quantile(0.99),
        }

    def snapshot(self) -> dict:
        """Service state for the /stats endpoint and the experiment row."""
        unresolved = sum(
            w.scorer.resilience.unresolved_rows for w in self.workers
        )
        return {
            "shards": len(self.workers),
            "clock_minute": self.clock.now,
            "stats": self.stats.to_dict(),
            "alarms": {
                "total": len(self.alarm_engine.alarms),
                "active": len(self.alarm_engine.active()),
                "escalations": self.alarm_engine.escalations,
                "deduplicated": self.alarm_engine.deduplicated,
            },
            "alerts_scored": len(self.scored_alerts),
            "unresolved_rows": unresolved,
            "latency": self.latency_percentiles(),
            "model_version": (
                None if self.watcher is None else self.watcher.current_version
            ),
            "drift": (
                None
                if self.drift is None
                else {**self.drift.state(), "alarms": self.drift_alarms}
            ),
        }


def _owner_order(owners: np.ndarray):
    """Distinct owners in first-appearance order (deterministic fan-out)."""
    seen: list[int] = []
    for owner in owners:
        owner = int(owner)
        if owner not in seen:
            seen.append(owner)
    return seen


# ---------------------------------------------------------------- builder
def build_gateway(
    trace: Trace,
    registry_root: str | Path,
    *,
    splits: list[DatasetSplit],
    split: str = "DS1",
    model: str = "gbdt",
    config: GatewayConfig | None = None,
    registry_name: str = "gateway",
    top_k_apps: int = 16,
    random_state: int | None = 0,
    fast: bool = False,
    chaos: ChaosPlan | None = None,
    clock: VirtualClock | None = None,
) -> Gateway:
    """Train, publish, and wire a gateway exactly like ``serve_replay``.

    The model pipeline is byte-for-byte the replay preamble: batch
    features -> split -> :class:`TwoStagePredictor` fit on the training
    window -> registry save -> checksum-verified load -> per-shard
    :class:`SupervisedScorer` with the Basic-B / all-negative fallback
    chain.  That shared preamble (plus the routing rules above) is what
    makes the single-shard gateway digest bit-identical to replay.
    """
    config = config or GatewayConfig()
    if config.backend is not None:
        set_backend(config.backend)
    features = build_features(trace, top_k_apps=top_k_apps)
    pipeline = PredictionPipeline(features, splits)
    split_obj = pipeline.split(split)
    train, _ = pipeline.train_test(split)
    predictor = TwoStagePredictor(model, random_state=random_state, fast=fast)
    predictor.fit(train)

    registry = ModelRegistry(registry_root)
    entry = registry.save_model(
        predictor,
        name=registry_name,
        metadata={
            "split": split,
            "model": model,
            "shards": config.shards,
            "random_state": random_state,
            "fast": fast,
            "top_k_apps": top_k_apps,
        },
    )
    serving, entry = registry.load_model(
        registry_name, entry.version, expect_feature_names=predictor.feature_names
    )

    top_apps = compute_top_apps(
        np.asarray(trace.samples["app_id"], dtype=int), top_k_apps
    )
    span = (0.0, trace.config.duration_days * MINUTES_PER_DAY)
    basic_b = BasicB().fit(train)
    workers: list[ScorerWorker] = []
    for shard_id in range(config.shards):
        injector = (
            None
            if chaos is None
            # Shift the seed per shard so shards draw independent chaos;
            # shard 0 keeps the plan's own seed, so a 1-shard gateway
            # reproduces the replay's chaos draws bit-for-bit.
            else ChaosInjector(
                replace(chaos, seed=chaos.seed + shard_id), span=span
            )
        )
        engine = StreamingFeatureEngine(trace.machine, top_apps)
        scorer = SupervisedScorer(
            serving,
            engine.schema,
            ScorerConfig(
                max_batch_size=config.batch_size,
                flush_deadline_minutes=config.flush_deadline_minutes,
            ),
            model_version=entry.version,
            chaos=injector,
            fallbacks=[
                ("basic_b", basic_b),
                ("all_negative", AllNegativeFallback()),
            ],
        )
        workers.append(
            ScorerWorker(
                engine,
                scorer,
                window=(split_obj.train_end, split_obj.test_end),
                injector=injector,
            )
        )

    watcher = RegistryWatcher(
        registry,
        registry_name,
        num_shards=config.shards,
        current_version=entry.version,
        expect_feature_names=predictor.feature_names,
        poll_interval_minutes=config.watch_interval_minutes,
    )
    return Gateway(workers, config=config, clock=clock, watcher=watcher)
