"""JSON wire codec for telemetry events (HTTP ingest boundary).

The in-process gateway consumes the dataclass events from
:mod:`repro.serve.events` directly; the HTTP front end needs those same
events as JSON.  The codec is strict both ways: unknown event types,
missing fields, or malformed numerics raise
:class:`~repro.utils.errors.ValidationError` (the HTTP layer maps that
to 400 + a ``rejected`` count — malformed input is *rejected at the
door*, never silently dropped and never allowed to poison a shard's
feature history).

Arrays round-trip as plain lists; dtypes are re-imposed on decode so a
decoded event is processed by the feature engine exactly like its
in-process twin.
"""

from __future__ import annotations

import numpy as np

from repro.serve.events import (
    ROW_COLUMNS,
    JobResolved,
    RunCompleted,
    RunStarted,
    SbeObserved,
)
from repro.utils.errors import ValidationError

__all__ = ["event_to_dict", "event_from_dict"]

_INT_ROW_COLUMNS = {
    "run_idx",
    "job_id",
    "node_id",
    "app_id",
    "prev_app_id",
    "n_nodes",
}


def event_to_dict(event) -> dict:
    """Encode one stream event as a JSON-safe dict with a ``type`` tag."""
    if isinstance(event, RunStarted):
        return {
            "type": "run_started",
            "minute": float(event.minute),
            "run_idx": int(event.run_idx),
            "node_ids": [int(v) for v in event.node_ids],
            "app_ids": [int(v) for v in event.app_ids],
            "start_minutes": [float(v) for v in event.start_minutes],
        }
    if isinstance(event, RunCompleted):
        return {
            "type": "run_completed",
            "minute": float(event.minute),
            "run_idx": int(event.run_idx),
            "rows": {
                name: [float(v) for v in event.rows[name]]
                for name in ROW_COLUMNS
            },
        }
    if isinstance(event, SbeObserved):
        return {
            "type": "sbe_observed",
            "minute": float(event.minute),
            "job_id": int(event.job_id),
            "node_id": int(event.node_id),
            "app_id": int(event.app_id),
            "count": int(event.count),
        }
    if isinstance(event, JobResolved):
        return {
            "type": "job_resolved",
            "minute": float(event.minute),
            "job_id": int(event.job_id),
            "node_ids": [int(v) for v in event.node_ids],
            "counts": [int(v) for v in event.counts],
        }
    raise ValidationError(f"cannot encode event of type {type(event).__name__}")


def _require(payload: dict, *names: str) -> list:
    missing = [name for name in names if name not in payload]
    if missing:
        raise ValidationError(
            f"event payload missing field(s): {', '.join(missing)}"
        )
    return [payload[name] for name in names]


def event_from_dict(payload) -> object:
    """Decode one JSON event dict back into its dataclass form."""
    if not isinstance(payload, dict):
        raise ValidationError("event payload must be a JSON object")
    kind = payload.get("type")
    try:
        if kind == "run_started":
            minute, run_idx, nodes, apps, starts = _require(
                payload, "minute", "run_idx", "node_ids", "app_ids",
                "start_minutes",
            )
            return RunStarted(
                minute=float(minute),
                run_idx=int(run_idx),
                node_ids=np.asarray(nodes, dtype=int),
                app_ids=np.asarray(apps, dtype=int),
                start_minutes=np.asarray(starts, dtype=float),
            )
        if kind == "run_completed":
            minute, run_idx, rows = _require(payload, "minute", "run_idx", "rows")
            if not isinstance(rows, dict):
                raise ValidationError("run_completed rows must be an object")
            missing = [name for name in ROW_COLUMNS if name not in rows]
            if missing:
                raise ValidationError(
                    f"run_completed rows missing column(s): {', '.join(missing)}"
                )
            decoded = {
                name: np.asarray(
                    rows[name],
                    dtype=int if name in _INT_ROW_COLUMNS else float,
                )
                for name in ROW_COLUMNS
            }
            return RunCompleted(
                minute=float(minute), run_idx=int(run_idx), rows=decoded
            )
        if kind == "sbe_observed":
            minute, job_id, node_id, app_id, count = _require(
                payload, "minute", "job_id", "node_id", "app_id", "count"
            )
            return SbeObserved(
                minute=float(minute),
                job_id=int(job_id),
                node_id=int(node_id),
                app_id=int(app_id),
                count=int(count),
            )
        if kind == "job_resolved":
            minute, job_id, nodes, counts = _require(
                payload, "minute", "job_id", "node_ids", "counts"
            )
            return JobResolved(
                minute=float(minute),
                job_id=int(job_id),
                node_ids=np.asarray(nodes, dtype=int),
                counts=np.asarray(counts, dtype=np.int64),
            )
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"malformed {kind} event: {exc}") from exc
    raise ValidationError(f"unknown event type: {kind!r}")
