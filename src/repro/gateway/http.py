"""Minimal stdlib-asyncio HTTP front end for the gateway.

No web framework ships in the container, and the gateway's API surface
is four JSON routes — a hand-rolled HTTP/1.1 server over
``asyncio.start_server`` keeps the dependency budget at zero:

* ``POST /events``            — ingest one event or a JSON list of them
* ``GET  /nodes/{id}/trend``  — recent scored points for one node
* ``GET  /alarms``            — alarm log (``?active=1`` for open only)
* ``POST /alarms/{id}/ack``   — operator acknowledgement
* ``GET  /stats``             — zero-drop accounting + latency snapshot
* ``GET  /metrics``           — Prometheus text exposition (format 0.0.4)

Each connection serves one request (``Connection: close``): the
synthetic fleet posts thousands of small events per run, and one-shot
connections keep the parser trivially correct, which matters more here
than keep-alive throughput.  Malformed event payloads are *rejected at
the door* — counted in ``events_rejected`` and answered with 400 — so
the zero-drop ledger covers bad input too.

:func:`http_request` is the matching one-shot client used by the
synthetic fleet and the tests.
"""

from __future__ import annotations

import asyncio
import json
import re

from repro.gateway.codec import event_from_dict
from repro.gateway.core import Gateway
from repro.obs import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.obs import render_prometheus
from repro.utils.errors import ValidationError

__all__ = ["GatewayHTTPServer", "http_request"]


class _TextResponse(str):
    """A plain-text payload (everything else on this server is JSON)."""

    content_type = _METRICS_CONTENT_TYPE

_TREND_RE = re.compile(r"^/nodes/(\d+)/trend$")
_ACK_RE = re.compile(r"^/alarms/(\d+)/ack$")
_MAX_BODY_BYTES = 8 * 1024 * 1024


class GatewayHTTPServer:
    """Serves one :class:`Gateway` over loopback HTTP."""

    def __init__(
        self, gateway: Gateway, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - must answer, not crash
            status, payload = 500, {"error": f"internal error: {exc}"}
        if isinstance(payload, _TextResponse):
            body = str(payload).encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        self.requests_served += 1
        try:
            await writer.drain()
        finally:
            writer.close()
            await writer.wait_closed()

    async def _respond(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line: {request_line!r}"}
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > _MAX_BODY_BYTES:
            return 413, {"error": "request body too large"}
        raw = await reader.readexactly(content_length) if content_length else b""
        return await self._dispatch(method, path, raw)

    async def _dispatch(self, method: str, path: str, raw: bytes):
        gateway = self.gateway
        path, _, query = path.partition("?")

        if method == "POST" and path == "/events":
            try:
                decoded = json.loads(raw.decode() or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"error": gateway.reject(f"bad JSON: {exc}")}
            batch = decoded if isinstance(decoded, list) else [decoded]
            accepted, rejected, errors = 0, 0, []
            for payload in batch:
                try:
                    event = event_from_dict(payload)
                except ValidationError as exc:
                    rejected += 1
                    errors.append(gateway.reject(str(exc)))
                    continue
                await gateway.ingest(event)
                accepted += 1
            result = {"accepted": accepted, "rejected": rejected}
            if errors:
                result["errors"] = errors[:8]
            return (200 if rejected == 0 else 400), result

        if method == "GET":
            match = _TREND_RE.match(path)
            if match:
                node_id = int(match.group(1))
                return 200, {
                    "node_id": node_id,
                    "trend": gateway.node_trend(node_id),
                }
            if path == "/alarms":
                active_only = "active=1" in query
                alarms = (
                    gateway.alarm_engine.active()
                    if active_only
                    else gateway.alarm_engine.alarms
                )
                return 200, {"alarms": [a.to_dict() for a in alarms]}
            if path == "/stats":
                return 200, gateway.snapshot()
            if path == "/metrics":
                gateway.registry.counter(
                    "repro_gateway_scrapes_total",
                    "GET /metrics scrapes served.",
                    wall=True,
                ).inc()
                return 200, _TextResponse(render_prometheus(gateway.registry))

        if method == "POST":
            match = _ACK_RE.match(path)
            if match:
                try:
                    alarm = gateway.alarm_engine.acknowledge(int(match.group(1)))
                except ValidationError as exc:
                    return 409, {"error": str(exc)}
                return 200, alarm.to_dict()

        return 404, {"error": f"no route for {method} {path}"}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


async def http_request(
    host: str, port: int, method: str, path: str, payload=None
) -> tuple[int, dict]:
    """One-shot HTTP client (the fleet's posting primitive).

    JSON responses decode to Python objects; any other content type
    (e.g. the Prometheus text of ``GET /metrics``) returns the raw
    body as a string.
    """
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    status_line = (await reader.readline()).decode("latin-1").strip()
    status = int(status_line.split()[1])
    content_length = None
    content_type = "application/json"
    while True:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        header = name.strip().lower()
        if header == "content-length":
            content_length = int(value.strip())
        elif header == "content-type":
            content_type = value.strip()
    raw = (
        await reader.read()
        if content_length is None
        else await reader.readexactly(content_length)
    )
    writer.close()
    await writer.wait_closed()
    if "application/json" in content_type:
        return status, json.loads(raw.decode() or "null")
    return status, raw.decode("utf-8")
