"""Registry watcher: rolling model hot-swaps across scorer shards.

One watcher serves the whole gateway.  On a virtual-clock cadence it
lists the model registry, and when a newer committed version appears it
stages a *rolling* swap: the candidate is checksum-verified and loaded
once, then applied to one shard at a time through each shard's
between-events hook — the same slot the replay path uses for periodic
retraining, so a swap can never split a single event's rows across two
model versions, and no shard ever pauses its queue to swap.

A version that fails verification (torn manifest, checksum mismatch,
schema drift) is remembered as bad and never retried; the previous
model keeps serving on every shard — identical policy to the replay
path's hot-swap supervision.
"""

from __future__ import annotations

from collections import deque

from repro.serve.registry import ModelRegistry
from repro.utils.errors import ModelRegistryError

__all__ = ["RegistryWatcher"]


class RegistryWatcher:
    """Polls a registry name and rolls new versions across shards."""

    def __init__(
        self,
        registry: ModelRegistry,
        name: str,
        *,
        num_shards: int,
        current_version: int,
        expect_feature_names,
        poll_interval_minutes: float = 1440.0,
    ) -> None:
        self.registry = registry
        self.name = name
        self.num_shards = int(num_shards)
        self.current_version = int(current_version)
        self.expect_feature_names = list(expect_feature_names)
        self.poll_interval_minutes = float(poll_interval_minutes)
        self._last_poll = float("-inf")
        #: Staged rolling swap: (version, predictor, shards still waiting).
        self._pending: tuple[int, object, deque[int]] | None = None
        self._bad_versions: set[int] = set()
        self.polls = 0
        self.swaps_completed = 0
        self.swaps_rejected = 0
        self.notes: list[str] = []

    # ------------------------------------------------------------------
    @property
    def swap_in_progress(self) -> bool:
        return self._pending is not None

    def check(self, now_minute: float) -> None:
        """Virtual-clock poll: stage a rolling swap if a new version landed."""
        if now_minute - self._last_poll < self.poll_interval_minutes:
            return
        self._last_poll = float(now_minute)
        self.polls += 1
        if self._pending is not None:
            return  # one rolling swap at a time
        newest = None
        for version in self.registry.list_versions(self.name):
            if (
                version.version > self.current_version
                and version.version not in self._bad_versions
            ):
                newest = version.version
        if newest is None:
            return
        try:
            predictor, entry = self.registry.load_model(
                self.name, newest, expect_feature_names=self.expect_feature_names
            )
        except ModelRegistryError as exc:
            self._bad_versions.add(newest)
            self.swaps_rejected += 1
            self.notes.append(
                f"rejected v{newest:04d} (previous model kept): {exc}"
            )
            return
        self._pending = (entry.version, predictor, deque(range(self.num_shards)))
        self.notes.append(
            f"staged rolling swap to v{entry.version:04d} "
            f"across {self.num_shards} shard(s)"
        )

    def maybe_swap(self, shard_id: int, scorer) -> bool:
        """Between-events hook: swap this shard if it is next in line.

        Shards swap in ring order, one per call, so at any instant at
        most one shard differs from its neighbours by a single version —
        the rolling-deploy invariant.
        """
        if self._pending is None:
            return False
        version, predictor, remaining = self._pending
        if not remaining or remaining[0] != int(shard_id):
            return False
        scorer.swap_model(predictor, version)
        remaining.popleft()
        if not remaining:
            self.current_version = version
            self._pending = None
            self.swaps_completed += 1
            self.notes.append(f"rolling swap to v{version:04d} complete")
        return True
