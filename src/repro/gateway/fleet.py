"""Synthetic client fleet: paced multi-tenant replay into the gateway.

Models the operational shape the paper implies — many collectors, each
owning a slice of the machine, all posting telemetry to one scoring
service.  Nodes are partitioned across ``clients`` synthetic tenants by
a seed-independent hash; each client replays its own events in trace
order, and the fleet scheduler interleaves clients by each event's
global delivery key ``(minute, phase, seq)`` — the virtual-clock stand-
in for wall-clock pacing, so the merged arrival order is time-ordered,
fully deterministic, and tests never sleep.

With ``clients=1`` the interleave is the identity: the gateway receives
exactly the ``iter_trace_events`` stream, which is what the gateway-vs-
replay digest parity gate runs on.  Clients can post in-process
(``server=None``) or over the loopback HTTP front end.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field

from repro.gateway.codec import event_to_dict
from repro.gateway.core import Gateway
from repro.gateway.http import GatewayHTTPServer, http_request
from repro.serve.events import (
    JobResolved,
    RunCompleted,
    RunStarted,
    SbeObserved,
    event_phase,
    iter_trace_events,
)
from repro.telemetry.trace import Trace
from repro.utils.errors import ValidationError

__all__ = ["SyntheticClient", "FleetReport", "build_fleet", "run_fleet"]


def _client_of(node_id: int, clients: int) -> int:
    """Stable node -> tenant assignment (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(f"client:{int(node_id)}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % clients


def _owner_node(event) -> int:
    """The node whose tenant posts this event (first row wins for runs)."""
    if isinstance(event, SbeObserved):
        return int(event.node_id)
    if isinstance(event, (RunStarted, JobResolved)):
        return int(event.node_ids[0]) if len(event.node_ids) else 0
    if isinstance(event, RunCompleted):
        nodes = event.rows["node_id"]
        return int(nodes[0]) if len(nodes) else 0
    raise ValidationError(f"unknown event type: {type(event).__name__}")


@dataclass
class SyntheticClient:
    """One tenant: an ordered queue of (delivery_key, event) pairs."""

    client_id: int
    queue: deque = field(default_factory=deque)
    sent: int = 0

    @property
    def head_key(self):
        return self.queue[0][0] if self.queue else None


@dataclass
class FleetReport:
    """One fleet run's delivery accounting."""

    clients: int
    events_sent: int
    per_client: dict[int, int]
    via_http: bool
    wall_seconds: float

    def __str__(self) -> str:
        shares = ", ".join(
            f"client {cid}: {n}" for cid, n in sorted(self.per_client.items())
        )
        transport = "http" if self.via_http else "in-process"
        return (
            f"fleet: {self.events_sent} events from {self.clients} "
            f"client(s) via {transport} in {self.wall_seconds:.2f}s ({shares})"
        )


def build_fleet(trace: Trace, *, clients: int = 3) -> list[SyntheticClient]:
    """Partition the trace's event stream across ``clients`` tenants."""
    if clients < 1:
        raise ValidationError("a fleet needs at least one client")
    fleet = [SyntheticClient(client_id=i) for i in range(clients)]
    for seq, event in enumerate(iter_trace_events(trace)):
        key = (event.minute, event_phase(event), seq)
        owner = _client_of(_owner_node(event), clients)
        fleet[owner].queue.append((key, event))
    return fleet


async def run_fleet(
    gateway: Gateway,
    trace: Trace,
    *,
    clients: int = 3,
    server: GatewayHTTPServer | None = None,
) -> FleetReport:
    """Replay the trace through the gateway as ``clients`` tenants.

    The scheduler repeatedly lets the client with the earliest pending
    delivery key send its next event — deterministic time-ordered
    arrival.  The caller owns the gateway lifecycle (``start``/``close``).
    """
    fleet = build_fleet(trace, clients=clients)
    started = time.perf_counter()
    events_sent = 0
    while True:
        ready = [c for c in fleet if c.queue]
        if not ready:
            break
        client = min(ready, key=lambda c: c.head_key)
        _, event = client.queue.popleft()
        if server is None:
            await gateway.ingest(event)
        else:
            status, body = await http_request(
                server.host, server.port, "POST", "/events",
                event_to_dict(event),
            )
            if status != 200:
                raise ValidationError(
                    f"gateway rejected a well-formed event: {status} {body}"
                )
        client.sent += 1
        events_sent += 1
    return FleetReport(
        clients=clients,
        events_sent=events_sent,
        per_client={c.client_id: c.sent for c in fleet},
        via_http=server is not None,
        wall_seconds=time.perf_counter() - started,
    )
