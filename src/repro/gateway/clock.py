"""Counted virtual clock: deterministic pacing without wall-clock sleeps.

The synthetic client fleet and the gateway's watcher both need a notion
of "time passing" — clients pace their event streams, the watcher polls
the registry at an interval — but tests must never sleep.  The
:class:`VirtualClock` is a logical clock: it only moves when someone
*advances* it, and every advance is counted, so a fixed seed plus a
fixed event stream yields exactly one clock trajectory.

Event time (trace minutes) and virtual time are the same axis here:
clients advance the clock to each event's minute before posting it, so
"every N minutes" hooks (registry polls, alarm expiry sweeps) fire at
deterministic points in the stream.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonic, manually advanced event-time clock.

    ``now`` is the current virtual minute; :meth:`advance_to` moves it
    forward (never backward — out-of-order advances clamp), and
    ``ticks`` counts advances so periodic hooks can key off either axis.
    """

    def __init__(self, start_minute: float = 0.0) -> None:
        self.now = float(start_minute)
        self.ticks = 0

    def advance_to(self, minute: float) -> float:
        """Move the clock to ``minute`` (clamped to monotonicity)."""
        self.now = max(self.now, float(minute))
        self.ticks += 1
        return self.now

    def every(self, interval_minutes: float, *, last: float) -> bool:
        """True when at least ``interval_minutes`` passed since ``last``."""
        return self.now - float(last) >= float(interval_minutes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self.now:g}, ticks={self.ticks})"
