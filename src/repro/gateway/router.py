"""Consistent-hash router: node id -> scorer shard, stable under resize.

The gateway partitions the fleet across N scorer shards by node id.  A
naive ``node % N`` remaps nearly every node when N changes; a consistent
hash ring moves only ~1/N of the keys when a shard joins or leaves,
which is what lets an operator scale the scoring tier without a
fleet-wide feature-history rebuild.

The ring hashes with SHA-256 (not Python's ``hash``) so placement is
independent of ``PYTHONHASHSEED`` and identical across processes — ring
placement participates in the gateway's determinism contract.  Each
shard owns ``replicas`` virtual points on the ring to even out the
partition sizes (classic Karger-style consistent hashing).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.utils.errors import ValidationError

__all__ = ["ConsistentHashRing"]


def _point(label: str) -> int:
    """Ring coordinate for a label: first 8 bytes of SHA-256, big-endian."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class ConsistentHashRing:
    """Maps integer node ids onto shard ids via a virtual-node hash ring."""

    def __init__(self, shard_ids, *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValidationError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: list[int] = []
        self._owners: list[int] = []
        self._shards: set[int] = set()
        for shard_id in shard_ids:
            self.add_shard(int(shard_id))
        if not self._shards:
            raise ValidationError("a hash ring needs at least one shard")

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[int]:
        return sorted(self._shards)

    def add_shard(self, shard_id: int) -> None:
        shard_id = int(shard_id)
        if shard_id in self._shards:
            raise ValidationError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for replica in range(self.replicas):
            point = _point(f"shard:{shard_id}:{replica}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, shard_id)

    def remove_shard(self, shard_id: int) -> None:
        shard_id = int(shard_id)
        if shard_id not in self._shards:
            raise ValidationError(f"shard {shard_id} not on the ring")
        if len(self._shards) == 1:
            raise ValidationError("cannot remove the last shard")
        self._shards.discard(shard_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != shard_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def route(self, node_id: int) -> int:
        """Shard owning ``node_id``: first ring point clockwise of its hash."""
        point = _point(f"node:{int(node_id)}")
        at = bisect.bisect_right(self._points, point)
        if at == len(self._points):
            at = 0
        return self._owners[at]

    def assignment(self, node_ids) -> dict[int, int]:
        """Bulk route: ``{node_id: shard_id}`` for every given node."""
        return {int(n): self.route(int(n)) for n in node_ids}
