"""Operator-facing alarm engine: dedup, acknowledgement, escalation.

Raw scorer output is one :class:`~repro.serve.scorer.Alert` per scored
(run, node) sample — far too chatty for an operator console.  GPUAlert
(PAPERS.md) makes the operational argument this module implements: an
at-risk node keeps scoring positive run after run, and paging on every
positive trains operators to ignore the pager.  The alarm engine folds
the positive stream into per-(node, kind) alarms:

* **dedup** — a positive for a node with an open alarm inside the dedup
  window folds into that alarm (count += 1) instead of opening another;
  a positive at or past the window edge opens a fresh alarm;
* **escalation** — once an open alarm has absorbed ``escalate_after``
  positives it flips severity ``warning`` -> ``critical`` (repeated
  positives are the paper's strongest signal that a node needs draining);
* **acknowledgement** — an operator ack freezes the alarm; the next
  positive for that node opens a *new* alarm rather than resurrecting
  the acknowledged one, so an ack can never permanently mute a node.

All state transitions key off event-time minutes from the alerts
themselves, never wall clock, so alarm ids and severities are
deterministic for a fixed stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.serve.scorer import Alert
from repro.utils.errors import ValidationError

__all__ = ["AlarmConfig", "Alarm", "AlarmEngine"]

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"


@dataclass(frozen=True)
class AlarmConfig:
    """Alarm folding knobs."""

    #: Positives for an open (node, kind) inside this window fold in.
    dedup_window_minutes: float = 1440.0
    #: Open alarms escalate to critical at this many absorbed positives.
    escalate_after: int = 3

    def __post_init__(self) -> None:
        if self.dedup_window_minutes <= 0:
            raise ValidationError("dedup_window_minutes must be > 0")
        if self.escalate_after < 2:
            raise ValidationError("escalate_after must be >= 2")


@dataclass
class Alarm:
    """One folded operator alarm for a (node, kind) pair."""

    alarm_id: int
    node_id: int
    kind: str
    severity: str
    first_minute: float
    last_minute: float
    #: Positives absorbed (1 = the opening positive).
    count: int = 1
    #: Highest decision score seen across absorbed positives.
    peak_score: float = 0.0
    acknowledged: bool = False
    #: Minute at which the alarm escalated to critical, if it did.
    escalated_minute: float | None = None

    @property
    def open(self) -> bool:
        return not self.acknowledged

    def to_dict(self) -> dict:
        return {
            "alarm_id": self.alarm_id,
            "node_id": self.node_id,
            "kind": self.kind,
            "severity": self.severity,
            "first_minute": self.first_minute,
            "last_minute": self.last_minute,
            "count": self.count,
            "peak_score": self.peak_score,
            "acknowledged": self.acknowledged,
            "escalated_minute": self.escalated_minute,
        }


class AlarmEngine:
    """Folds positive alerts into deduplicated, escalating alarms."""

    def __init__(self, config: AlarmConfig | None = None) -> None:
        self.config = config or AlarmConfig()
        self.alarms: list[Alarm] = []
        #: (node_id, kind) -> index into ``alarms`` of the newest alarm.
        self._latest: dict[tuple[int, str], int] = {}
        self.positives_seen = 0
        self.deduplicated = 0
        self.escalations = 0

    # ------------------------------------------------------------------
    def observe(self, alert: Alert, *, kind: str = "sbe_risk") -> Alarm | None:
        """Fold one alert in; returns the alarm it opened or touched.

        Negative alerts (``predicted == 0``) are trend data, not alarm
        material — they return ``None`` and touch nothing.
        """
        if not alert.predicted:
            return None
        self.positives_seen += 1
        return self._fold(
            int(alert.node_id), kind, float(alert.scored_minute), float(alert.score)
        )

    def signal(
        self, *, node_id: int, kind: str, minute: float, score: float = 0.0
    ) -> Alarm:
        """Raise (or fold) a non-alert alarm directly — e.g. ``drift``.

        Machine-level conditions like drift have no originating alert;
        they signal with a synthetic node id (conventionally ``-1``) and
        the detector statistic as the score, then dedup/escalate/ack
        exactly like alert-born alarms.
        """
        return self._fold(int(node_id), kind, float(minute), float(score))

    def _fold(self, node_id: int, kind: str, minute: float, score: float) -> Alarm:
        key = (node_id, kind)
        at = self._latest.get(key)
        current = None if at is None else self.alarms[at]
        if (
            current is not None
            and current.open
            and minute - current.last_minute < self.config.dedup_window_minutes
        ):
            # Inside the dedup window: fold into the open alarm.
            current.count += 1
            current.last_minute = max(current.last_minute, minute)
            current.peak_score = max(current.peak_score, score)
            self.deduplicated += 1
            if (
                current.severity == SEVERITY_WARNING
                and current.count >= self.config.escalate_after
            ):
                current.severity = SEVERITY_CRITICAL
                current.escalated_minute = minute
                self.escalations += 1
            return current
        # Acked, expired, or first-ever: open a fresh alarm.
        alarm = Alarm(
            alarm_id=len(self.alarms) + 1,
            node_id=node_id,
            kind=kind,
            severity=SEVERITY_WARNING,
            first_minute=minute,
            last_minute=minute,
            peak_score=score,
        )
        self.alarms.append(alarm)
        self._latest[key] = len(self.alarms) - 1
        return alarm

    def acknowledge(self, alarm_id: int) -> Alarm:
        """Operator ack: freezes the alarm (idempotent acks are errors)."""
        for alarm in self.alarms:
            if alarm.alarm_id == int(alarm_id):
                if alarm.acknowledged:
                    raise ValidationError(
                        f"alarm {alarm_id} is already acknowledged"
                    )
                alarm.acknowledged = True
                return alarm
        raise ValidationError(f"no such alarm: {alarm_id}")

    # ------------------------------------------------------------------
    def active(self) -> list[Alarm]:
        """Open alarms, most severe first, then most recent."""
        return sorted(
            (a for a in self.alarms if a.open),
            key=lambda a: (a.severity != SEVERITY_CRITICAL, -a.last_minute),
        )

    def digest(self) -> str:
        """Content hash over the full alarm log (determinism gate)."""
        h = hashlib.sha256()
        for a in self.alarms:
            h.update(
                f"{a.alarm_id},{a.node_id},{a.kind},{a.severity},"
                f"{a.first_minute:.12g},{a.last_minute:.12g},{a.count},"
                f"{a.peak_score:.12g},{int(a.acknowledged)};".encode()
            )
        return h.hexdigest()
