"""Online serving: model registry, streaming features, micro-batch scoring.

The paper's TwoStage framework is meant to run *online*: stage 1 filters
live samples down to known offender nodes, stage 2 scores what passes,
and the model is retrained periodically as new offenders appear.  This
package turns the repo's offline pipeline into that service, in three
layers:

* :mod:`repro.serve.registry` -- versioned, checksummed on-disk artifacts
  for fitted :class:`~repro.core.twostage.TwoStagePredictor` models;
* :mod:`repro.serve.events` / :mod:`repro.serve.engine` -- an event-driven
  feature engine whose rows are bit-identical to the batch
  :func:`~repro.features.builder.build_features` output;
* :mod:`repro.serve.scorer` -- a micro-batching scorer with latency /
  throughput / queue-depth counters and hot model swap.

:func:`repro.serve.replay.serve_replay` wires the three together to
replay a trace through the full online path and compare against the
batch oracle (the CLI's ``serve-replay`` subcommand).

Two robustness layers harden the service (both exact no-ops when off):

* :mod:`repro.serve.resilience` -- serve-layer chaos injection plus the
  supervised scorer: retry/backoff, per-batch timeouts, a circuit
  breaker over Basic-B / all-negative fallbacks, and a dead-letter
  queue with recovery replay;
* :mod:`repro.serve.checkpoint` -- atomic, checksummed checkpoints so a
  killed replay resumes bit-identically (``serve-replay --resume``).

:mod:`repro.serve.drift` adds drift resilience on top: streaming PSI /
calibration / rolling-F1 detectors, and a retrain governor that
triggers holdout-validated refits and rolls back a post-swap F1
collapse to the last-good registry version.
"""

from repro.serve.checkpoint import CheckpointManager
from repro.serve.drift import (
    DriftConfig,
    DriftMonitor,
    HoldoutReport,
    RetrainGovernor,
    RollingF1Monitor,
    WindowedPSI,
    fit_validated_candidate,
)
from repro.serve.engine import StreamedRow, StreamingFeatureEngine, rows_to_matrix
from repro.serve.events import (
    JobResolved,
    RunCompleted,
    RunStarted,
    SbeObserved,
    iter_trace_events,
)
from repro.serve.registry import ModelRegistry, ModelVersion, load_model, save_model
from repro.serve.replay import ReplayReport, serve_replay
from repro.serve.resilience import (
    ChaosInjector,
    ChaosPlan,
    CircuitBreaker,
    DeadLetter,
    DeadLetterQueue,
    ResilienceConfig,
    ResilienceCounters,
    SupervisedScorer,
)
from repro.serve.scorer import Alert, MicroBatchScorer, ScorerConfig, ServeCounters

__all__ = [
    "ChaosPlan",
    "ChaosInjector",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "ResilienceConfig",
    "ResilienceCounters",
    "SupervisedScorer",
    "CheckpointManager",
    "DriftConfig",
    "DriftMonitor",
    "HoldoutReport",
    "RetrainGovernor",
    "RollingF1Monitor",
    "WindowedPSI",
    "fit_validated_candidate",
    "StreamedRow",
    "StreamingFeatureEngine",
    "rows_to_matrix",
    "RunStarted",
    "RunCompleted",
    "SbeObserved",
    "JobResolved",
    "iter_trace_events",
    "ModelRegistry",
    "ModelVersion",
    "save_model",
    "load_model",
    "ReplayReport",
    "serve_replay",
    "Alert",
    "MicroBatchScorer",
    "ScorerConfig",
    "ServeCounters",
]
