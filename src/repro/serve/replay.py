"""Replay a recorded trace through the full online serving path.

:func:`serve_replay` is the subsystem's integration harness and the
CLI's ``serve-replay`` subcommand.  It plays one trace twice:

1. **Batch oracle** — the existing offline pipeline: build features,
   take one sliding split, fit a :class:`TwoStagePredictor` on the
   training window, score the test window.
2. **Online path** — persist the fitted predictor through the model
   registry (save → checksum-verified load), then drive the event stream
   through the streaming feature engine and the micro-batch scorer,
   alerting on every test-window sample as its run completes.

Because the engine is bit-identical to the batch builder and the
registry round-trip reproduces the fitted model exactly, the online
alerts must agree with the batch predictions sample-for-sample (the
report tracks the agreement fraction and the F1 delta; the acceptance
bound is |ΔF1| <= 0.01).

An optional periodic-retrain loop refits on the labels resolved so far
and hot-swaps the scorer's model through a new registry version —
after the first swap the online path intentionally diverges from the
frozen batch oracle.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.pipeline import PredictionPipeline
from repro.core.twostage import TwoStagePredictor
from repro.features.builder import build_features, compute_top_apps
from repro.features.splits import DatasetSplit
from repro.ml.metrics import classification_report
from repro.serve.engine import StreamedRow, StreamingFeatureEngine, rows_to_matrix
from repro.serve.events import JobResolved, iter_trace_events
from repro.serve.registry import ModelRegistry
from repro.serve.scorer import Alert, MicroBatchScorer, ScorerConfig, ServeCounters
from repro.telemetry.trace import Trace
from repro.utils.errors import ValidationError

__all__ = ["ReplayReport", "serve_replay"]

MINUTES_PER_DAY = 1440.0


@dataclass
class ReplayReport:
    """Everything one ``serve_replay`` invocation measured."""

    split: str
    model: str
    registry_name: str
    registry_versions: list[int]
    num_events: int
    rows_streamed: int
    rows_test: int
    counters: ServeCounters
    alerts: list[Alert]
    batch_report: dict[str, dict[str, float]]
    online_report: dict[str, dict[str, float]]
    #: Fraction of test samples where online and batch predictions agree.
    agreement: float
    #: max |online score - batch score| over the test window.
    max_abs_score_diff: float
    wall_seconds: float
    retrains: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def batch_f1(self) -> float:
        """SBE-class F1 of the offline oracle."""
        return self.batch_report["sbe"]["f1"]

    @property
    def online_f1(self) -> float:
        """SBE-class F1 of the online path."""
        return self.online_report["sbe"]["f1"]

    @property
    def f1_delta(self) -> float:
        """online F1 - batch F1 (acceptance bound: |delta| <= 0.01)."""
        return self.online_f1 - self.batch_f1

    def digest(self) -> str:
        """Deterministic fingerprint of the replay outcome.

        Covers the event stream size, both metric reports, and every
        alert's identity/score/decision.  Excludes wall-clock timings
        and registry version numbers: those legitimately vary across
        same-seed invocations (machine load; pre-existing versions under
        the registry root).
        """
        h = hashlib.sha256()
        h.update(f"{self.split}|{self.model}|{self.num_events}|".encode())
        h.update(f"{self.rows_streamed}|{self.rows_test}|{self.retrains}|".encode())
        for report in (self.batch_report, self.online_report):
            for cls in sorted(report):
                for metric in sorted(report[cls]):
                    h.update(f"{cls}.{metric}={report[cls][metric]:.12g};".encode())
        h.update(f"agreement={self.agreement:.12g};".encode())
        h.update(f"max_abs_score_diff={self.max_abs_score_diff:.12g};".encode())
        for alert in sorted(
            self.alerts, key=lambda a: (a.run_idx, a.node_id, a.end_minute)
        ):
            h.update(
                f"{alert.run_idx},{alert.node_id},{alert.job_id},{alert.app_id},"
                f"{alert.end_minute:.12g},{alert.scored_minute:.12g},"
                f"{alert.score:.12g},{alert.predicted};".encode()
            )
        return h.hexdigest()

    def __str__(self) -> str:
        c = self.counters
        lines = [
            f"serve-replay [{self.split}] twostage-{self.model}",
            f"  events processed   {self.num_events}",
            f"  rows streamed      {self.rows_streamed}"
            f" (test window: {self.rows_test})",
            f"  batches            {c.batches}"
            f" (size {c.size_flushes} / deadline {c.deadline_flushes}"
            f" / final {c.final_flushes})",
            f"  max queue depth    {c.max_queue_depth}",
            f"  mean queue latency {c.mean_queue_minutes:.2f} min (event time)",
            f"  throughput         {c.rows_per_second:,.0f} rows/s"
            f" (scoring wall-clock)",
            f"  positive alerts    {c.positive_alerts}",
            f"  registry versions  {self.registry_versions}"
            f" (retrains: {self.retrains})",
            f"  batch  P/R/F1      {self.batch_report['sbe']['precision']:.4f}"
            f" / {self.batch_report['sbe']['recall']:.4f}"
            f" / {self.batch_f1:.4f}",
            f"  online P/R/F1      {self.online_report['sbe']['precision']:.4f}"
            f" / {self.online_report['sbe']['recall']:.4f}"
            f" / {self.online_f1:.4f}",
            f"  agreement          {self.agreement:.6f}"
            f"  (max |score diff| {self.max_abs_score_diff:.3g})",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def serve_replay(
    trace: Trace,
    registry_root: str | Path,
    *,
    split: str = "DS1",
    splits: list[DatasetSplit] | None = None,
    model: str = "gbdt",
    batch_size: int = 256,
    flush_deadline_minutes: float = 30.0,
    registry_name: str = "twostage",
    retrain_every_days: float | None = None,
    top_k_apps: int = 16,
    random_state: int | None = 0,
    fast: bool = False,
    sanitize: bool = False,
) -> ReplayReport:
    """Replay ``trace`` through registry + streaming engine + scorer.

    Trains the batch oracle on ``split``'s training window, publishes it
    to the registry under ``registry_root``, reloads it (checksum and
    schema verified), and scores the split's test window online.  With
    ``retrain_every_days`` set, the model is refit on resolved labels at
    that cadence and hot-swapped through new registry versions.
    """
    started = time.perf_counter()
    notes: list[str] = []
    if sanitize:
        from repro.faults import sanitize_trace

        trace, sanitize_report = sanitize_trace(trace)
        notes.append(f"sanitized input trace: {sanitize_report.summary()}")

    # ------------------------------------------------------------- batch
    features = build_features(trace, top_k_apps=top_k_apps)
    pipeline = PredictionPipeline(features, splits)
    split_obj = pipeline.split(split)
    train, test = pipeline.train_test(split)
    predictor = TwoStagePredictor(model, random_state=random_state, fast=fast)
    predictor.fit(train)
    batch_scores = predictor.decision_scores(test)
    batch_pred = (batch_scores >= predictor.model.threshold).astype(int)
    batch_report = classification_report(test.y, batch_pred)

    # ---------------------------------------------------------- registry
    registry = ModelRegistry(registry_root)
    entry = registry.save_model(
        predictor,
        name=registry_name,
        metadata={
            "split": split,
            "model": model,
            "train_start_minute": split_obj.train_start,
            "train_end_minute": split_obj.train_end,
            "random_state": random_state,
            "fast": fast,
            "top_k_apps": top_k_apps,
        },
    )
    serving, entry = registry.load_model(
        registry_name,
        entry.version,
        expect_feature_names=predictor.feature_names,
    )
    versions = [entry.version]

    # ------------------------------------------------------------ stream
    engine = StreamingFeatureEngine(
        trace.machine,
        compute_top_apps(np.asarray(trace.samples["app_id"], dtype=int), top_k_apps),
    )
    scorer = MicroBatchScorer(
        serving,
        engine.schema,
        ScorerConfig(
            max_batch_size=batch_size,
            flush_deadline_minutes=flush_deadline_minutes,
        ),
        model_version=entry.version,
    )
    labels: dict[tuple[int, int], int] = {}
    history_rows: list[StreamedRow] = []
    alerts: list[Alert] = []
    num_events = 0
    retrains = 0
    next_retrain = (
        None
        if retrain_every_days is None
        else split_obj.train_end + retrain_every_days * MINUTES_PER_DAY
    )

    def maybe_retrain(now_minute: float) -> None:
        nonlocal next_retrain, retrains, serving
        while next_retrain is not None and now_minute >= next_retrain:
            at = next_retrain
            next_retrain += retrain_every_days * MINUTES_PER_DAY
            resolved = [
                row
                for row in history_rows
                if row.end_minute <= at and (row.job_id, row.node_id) in labels
            ]
            if not resolved:
                notes.append(f"retrain at minute {at:g} skipped: no resolved rows")
                continue
            counts = np.asarray(
                [labels[(row.job_id, row.node_id)] for row in resolved],
                dtype=np.int64,
            )
            candidate = TwoStagePredictor(
                model, random_state=random_state, fast=fast
            )
            try:
                candidate.fit(rows_to_matrix(resolved, engine.schema, sbe_counts=counts))
            except ValidationError as exc:
                notes.append(f"retrain at minute {at:g} skipped: {exc}")
                continue
            new_entry = registry.save_model(
                candidate,
                name=registry_name,
                metadata={"retrained_at_minute": at, "n_rows": len(resolved)},
            )
            scorer.swap_model(candidate, new_entry.version)
            serving = candidate
            versions.append(new_entry.version)
            retrains += 1

    for event in iter_trace_events(trace):
        num_events += 1
        alerts.extend(scorer.poll(event.minute))
        maybe_retrain(event.minute)
        if isinstance(event, JobResolved):
            for node, count in zip(event.node_ids, event.counts):
                labels[(event.job_id, int(node))] = int(count)
        rows = engine.process(event)
        if rows:
            history_rows.extend(rows)
            in_test = [
                row
                for row in rows
                if split_obj.train_end <= row.start_minute < split_obj.test_end
            ]
            if in_test:
                alerts.extend(scorer.submit(in_test, event.minute))
    alerts.extend(scorer.flush())

    # --------------------------------------------------------- alignment
    # Alert order depends on flush timing, so align to the batch test rows
    # by (run_idx, node_id) — unique per sample by construction.
    by_key = {(a.run_idx, a.node_id): a for a in alerts}
    test_keys = list(
        zip(
            (int(v) for v in test.meta["run_idx"]),
            (int(v) for v in test.meta["node_id"]),
        )
    )
    missing = [key for key in test_keys if key not in by_key]
    if missing:
        raise ValidationError(
            f"online path never scored {len(missing)} of {len(test_keys)} "
            f"batch test samples (first: {missing[0]})"
        )
    online_pred = np.asarray([by_key[key].predicted for key in test_keys], dtype=int)
    online_scores = np.asarray([by_key[key].score for key in test_keys], dtype=float)

    return ReplayReport(
        split=split,
        model=model,
        registry_name=registry_name,
        registry_versions=versions,
        num_events=num_events,
        rows_streamed=engine.rows_emitted,
        rows_test=len(test_keys),
        counters=scorer.counters,
        alerts=alerts,
        batch_report=batch_report,
        online_report=classification_report(test.y, online_pred),
        agreement=float(np.mean(online_pred == batch_pred)),
        max_abs_score_diff=float(np.max(np.abs(online_scores - batch_scores))),
        wall_seconds=time.perf_counter() - started,
        retrains=retrains,
        notes=notes,
    )
