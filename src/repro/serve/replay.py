"""Replay a recorded trace through the full online serving path.

:func:`serve_replay` is the subsystem's integration harness and the
CLI's ``serve-replay`` subcommand.  It plays one trace twice:

1. **Batch oracle** — the existing offline pipeline: build features,
   take one sliding split, fit a :class:`TwoStagePredictor` on the
   training window, score the test window.
2. **Online path** — persist the fitted predictor through the model
   registry (save → checksum-verified load), then drive the event stream
   through the streaming feature engine and the micro-batch scorer,
   alerting on every test-window sample as its run completes.

Because the engine is bit-identical to the batch builder and the
registry round-trip reproduces the fitted model exactly, the online
alerts must agree with the batch predictions sample-for-sample (the
report tracks the agreement fraction and the F1 delta; the acceptance
bound is |ΔF1| <= 0.01).

An optional periodic-retrain loop refits on the labels resolved so far
and hot-swaps the scorer's model through a new registry version —
after the first swap the online path intentionally diverges from the
frozen batch oracle.

Two orthogonal robustness layers sit on top (both exact no-ops when
unused — the no-chaos digest is bit-identical to the undecorated path):

* ``chaos=ChaosPlan(...)`` injects pipeline faults (scorer exceptions
  and outages, stalls, hot-swap corruption, malformed event bursts) and
  the :class:`~repro.serve.resilience.SupervisedScorer` absorbs them
  with retry/backoff, a circuit breaker over Basic-B / all-negative
  fallbacks, and a dead-letter queue — every test row still gets scored
  by *some* path, and the report breaks out which.
* ``checkpoint_dir=...`` commits the full replay state every N events
  through :class:`~repro.serve.checkpoint.CheckpointManager`;
  ``resume=True`` restarts from the newest checkpoint and — because
  every chaos draw is a pure function of the plan seed and restored
  counters — reproduces the uninterrupted run's metrics and digest
  bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.baselines import BasicB
from repro.core.pipeline import PredictionPipeline
from repro.core.twostage import TwoStagePredictor
from repro.features.builder import build_features, compute_top_apps
from repro.features.splits import DatasetSplit
from repro.ml.kernels import set_backend
from repro.ml.metrics import classification_report
from repro.serve.checkpoint import CheckpointManager
from repro.serve.drift import (
    DriftConfig,
    DriftMonitor,
    RetrainGovernor,
    fit_validated_candidate,
    record_drift_metrics,
    record_retrain_outcome,
    record_rollback,
)
from repro.serve.engine import StreamedRow, StreamingFeatureEngine, rows_to_matrix
from repro.serve.events import JobResolved, iter_trace_events
from repro.serve.registry import ModelRegistry
from repro.serve.resilience import (
    AllNegativeFallback,
    ChaosInjector,
    ChaosPlan,
    DeadLetter,
    ResilienceConfig,
    ResilienceCounters,
    SupervisedScorer,
)
from repro.serve.scorer import Alert, ScorerConfig, ServeCounters
from repro.serve.worker import ScorerWorker, scored_alert_digest, update_alert_digest
from repro.telemetry.trace import Trace
from repro.utils.errors import (
    DegradedDataError,
    DegradedDataWarning,
    ModelRegistryError,
    SimulatedCrashError,
    TelemetryFaultError,
    ValidationError,
)

__all__ = ["ReplayReport", "serve_replay"]

MINUTES_PER_DAY = 1440.0


@dataclass
class ReplayReport:
    """Everything one ``serve_replay`` invocation measured."""

    split: str
    model: str
    registry_name: str
    registry_versions: list[int]
    num_events: int
    rows_streamed: int
    rows_test: int
    counters: ServeCounters
    alerts: list[Alert]
    batch_report: dict[str, dict[str, float]]
    online_report: dict[str, dict[str, float]]
    #: Fraction of test samples where online and batch predictions agree.
    agreement: float
    #: max |online score - batch score| over the test window.
    max_abs_score_diff: float
    wall_seconds: float
    retrains: int = 0
    #: Retrains triggered by the drift governor (subset of ``retrains``).
    drift_retrains: int = 0
    #: Retrain candidates rejected by holdout validation.
    retrains_rejected: int = 0
    #: Automatic rollbacks to the last-good registry version.
    rollbacks: int = 0
    #: Drift governor summary (detector state, triggers); ``None`` when
    #: drift detection was off — the digest hashes it only when present,
    #: so drift-off replays keep their pinned digests.
    drift: dict | None = None
    notes: list[str] = field(default_factory=list)
    #: Supervision telemetry (all-zero when the replay ran without chaos).
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    #: Fingerprint of the chaos plan, or ``None`` for a clean replay.
    chaos_digest: str | None = None
    #: Quarantined batches/events (payloads stripped), quarantine order.
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: Event cursor of the checkpoint this run resumed from, if any.
    resumed_from: int | None = None

    @property
    def batch_f1(self) -> float:
        """SBE-class F1 of the offline oracle."""
        return self.batch_report["sbe"]["f1"]

    @property
    def online_f1(self) -> float:
        """SBE-class F1 of the online path."""
        return self.online_report["sbe"]["f1"]

    @property
    def f1_delta(self) -> float:
        """online F1 - batch F1 (acceptance bound: |delta| <= 0.01)."""
        return self.online_f1 - self.batch_f1

    def digest(self) -> str:
        """Deterministic fingerprint of the replay outcome.

        Covers the event stream size, both metric reports, and every
        alert's identity/score/decision.  Excludes wall-clock timings
        and registry version numbers: those legitimately vary across
        same-seed invocations (machine load; pre-existing versions under
        the registry root).  A chaos replay additionally hashes the plan
        fingerprint, the row-disposition breakdown, every dead letter,
        and each alert's scoring path — a clean replay hashes exactly
        what it always did, so resilience wrapping cannot move old
        digests.
        """
        h = hashlib.sha256()
        h.update(f"{self.split}|{self.model}|{self.num_events}|".encode())
        # (The alert section below is the shared scored-alert encoding;
        # see :func:`repro.serve.worker.scored_alert_digest`.)
        h.update(f"{self.rows_streamed}|{self.rows_test}|{self.retrains}|".encode())
        for report in (self.batch_report, self.online_report):
            for cls in sorted(report):
                for metric in sorted(report[cls]):
                    h.update(f"{cls}.{metric}={report[cls][metric]:.12g};".encode())
        h.update(f"agreement={self.agreement:.12g};".encode())
        h.update(f"max_abs_score_diff={self.max_abs_score_diff:.12g};".encode())
        update_alert_digest(h, self.alerts)
        if self.chaos_digest is not None:
            r = self.resilience
            h.update(f"chaos={self.chaos_digest};".encode())
            h.update(
                f"rows={r.primary_rows},{r.fallback_rows},{r.dead_lettered_rows},"
                f"{r.replayed_rows},{r.unresolved_rows};".encode()
            )
            h.update(
                f"events={r.injected_events},{r.dead_letter_events};"
                f"breaker={r.breaker_trips},{r.breaker_probes};"
                f"swaps={r.swap_failures};".encode()
            )
            for letter in self.dead_letters:
                h.update(
                    f"dl:{letter.kind},{letter.reason},{letter.minute:.12g},"
                    f"{letter.rows},{letter.resolution};".encode()
                )
            for alert in sorted(
                self.alerts, key=lambda a: (a.run_idx, a.node_id, a.end_minute)
            ):
                h.update(f"src:{alert.run_idx},{alert.node_id},{alert.source};".encode())
        if self.drift is not None:
            h.update(
                f"drift={self.drift_retrains},{self.retrains_rejected},"
                f"{self.rollbacks};".encode()
            )
            for minute, reason in self.drift.get("triggers", []):
                h.update(f"trig:{minute:.12g},{reason};".encode())
        return h.hexdigest()

    def scored_alert_digest(self) -> str:
        """Digest of the scored alerts alone (the gateway parity gate).

        A single-shard, single-client gateway run over the same trace,
        split, and seed must reproduce this value bit for bit.
        """
        return scored_alert_digest(self.alerts)

    def __str__(self) -> str:
        c = self.counters
        lines = [
            f"serve-replay [{self.split}] twostage-{self.model}",
            f"  events processed   {self.num_events}",
            f"  rows streamed      {self.rows_streamed}"
            f" (test window: {self.rows_test})",
            f"  batches            {c.batches}"
            f" (size {c.size_flushes} / deadline {c.deadline_flushes}"
            f" / final {c.final_flushes})",
            f"  max queue depth    {c.max_queue_depth}",
            f"  mean queue latency {c.mean_queue_minutes:.2f} min (event time)",
            f"  throughput         {c.rows_per_second:,.0f} rows/s"
            f" (scoring wall-clock)",
            f"  positive alerts    {c.positive_alerts}",
            f"  registry versions  {self.registry_versions}"
            f" (retrains: {self.retrains})",
            f"  batch  P/R/F1      {self.batch_report['sbe']['precision']:.4f}"
            f" / {self.batch_report['sbe']['recall']:.4f}"
            f" / {self.batch_f1:.4f}",
            f"  online P/R/F1      {self.online_report['sbe']['precision']:.4f}"
            f" / {self.online_report['sbe']['recall']:.4f}"
            f" / {self.online_f1:.4f}",
            f"  agreement          {self.agreement:.6f}"
            f"  (max |score diff| {self.max_abs_score_diff:.3g})",
        ]
        if self.chaos_digest is not None:
            r = self.resilience
            lines.extend(
                [
                    f"  chaos plan         {self.chaos_digest[:16]}...",
                    f"  availability       {r.availability:.6f}"
                    f"  (primary {r.primary_rows} / fallback {r.fallback_rows}"
                    f" / unresolved {r.unresolved_rows} rows)",
                    f"  fallback share     {r.fallback_share:.4f}"
                    f"  (breaker trips {r.breaker_trips},"
                    f" probes {r.breaker_probes})",
                    f"  dead letters       {len(self.dead_letters)}"
                    f" ({r.dead_lettered_rows} rows quarantined,"
                    f" {r.replayed_rows} replayed,"
                    f" {r.dead_letter_events} bad events)",
                    f"  faults absorbed    transient {r.transient_faults}"
                    f" / outage {r.outage_faults} / timeout {r.timeouts}"
                    f" / swap {r.swap_failures}"
                    f" (retries {r.retries})",
                ]
            )
        if self.drift is not None:
            state = self.drift.get("state", {})
            lines.extend(
                [
                    f"  drift detectors    feature PSI {state.get('feature_psi', 0.0):.4f}"
                    f" / score PSI {state.get('score_psi', 0.0):.4f}"
                    f" / F1 decay {state.get('f1_decay', 0.0):.4f}",
                    f"  drift governor     triggers {len(self.drift.get('triggers', []))}"
                    f" / retrains {self.drift_retrains}"
                    f" / rejected {self.retrains_rejected}"
                    f" / rollbacks {self.rollbacks}",
                ]
            )
        if self.resumed_from is not None:
            lines.append(f"  resumed from       event {self.resumed_from}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _zero_class_report() -> dict[str, dict[str, float]]:
    """A well-formed all-zero classification report (no samples)."""
    return {
        "sbe": {"precision": 0.0, "recall": 0.0, "f1": 0.0},
        "non_sbe": {"precision": 0.0, "recall": 0.0, "f1": 0.0},
        "overall": {"accuracy": 0.0},
    }


def _trace_fingerprint(trace: Trace) -> str:
    """Content hash binding a checkpoint to the exact trace it came from."""
    h = hashlib.sha256()
    h.update(f"{trace.num_samples}|".encode())
    for name in sorted(trace.samples):
        h.update(name.encode())
        h.update(np.ascontiguousarray(trace.samples[name]).tobytes())
    for name in sorted(trace.runs):
        h.update(name.encode())
        h.update(np.ascontiguousarray(trace.runs[name]).tobytes())
    return h.hexdigest()


def serve_replay(
    trace: Trace,
    registry_root: str | Path,
    *,
    split: str = "DS1",
    splits: list[DatasetSplit] | None = None,
    model: str = "gbdt",
    batch_size: int = 256,
    flush_deadline_minutes: float = 30.0,
    registry_name: str = "twostage",
    retrain_every_days: float | None = None,
    retrain_window_days: float | None = None,
    drift: DriftConfig | None = None,
    poison_retrains: tuple[int, ...] = (),
    top_k_apps: int = 16,
    random_state: int | None = 0,
    fast: bool = False,
    sanitize: bool = False,
    chaos: ChaosPlan | None = None,
    resilience: ResilienceConfig | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every_events: int = 2000,
    resume: bool = False,
    crash_after_events: int | None = None,
    strict: bool = False,
    backend: str | None = None,
) -> ReplayReport:
    """Replay ``trace`` through registry + streaming engine + scorer.

    Trains the batch oracle on ``split``'s training window, publishes it
    to the registry under ``registry_root``, reloads it (checksum and
    schema verified), and scores the split's test window online.  With
    ``retrain_every_days`` set, the model is refit on resolved labels at
    that cadence and hot-swapped through new registry versions;
    ``retrain_window_days`` restricts every refit to a sliding window of
    the most recently resolved rows (default: all rows since start).

    ``drift=DriftConfig(...)`` arms the drift-resilience layer: the
    streaming detectors of :mod:`repro.serve.drift` watch the scoring
    path, the :class:`~repro.serve.drift.RetrainGovernor` triggers
    guarded retrains on drift (holdout-validated before publishing),
    and a freshly swapped model whose post-swap rolling F1 collapses is
    rolled back to the last-good registry version automatically.  With
    ``drift=None`` the replay is bit-identical to the undecorated path.
    ``poison_retrains`` is a test hook: the listed retrain-attempt
    indices train on inverted labels — a consistently poisoned refit
    validates cleanly against its own (equally poisoned) holdout, so it
    exercises the post-swap-rollback path end to end.

    ``chaos`` injects pipeline faults; ``resilience`` tunes the
    supervision absorbing them.  ``checkpoint_dir`` commits resumable
    state every ``checkpoint_every_events`` events; ``resume=True``
    restarts from the newest compatible checkpoint.
    ``crash_after_events`` raises
    :class:`~repro.utils.errors.SimulatedCrashError` after that many
    events — the test hook for the kill-and-resume path.

    ``backend`` selects the process-wide scoring kernel
    (:func:`repro.ml.kernels.set_backend`) for this and subsequent
    scoring; ``None`` leaves the current selection alone.  Backends are
    bit-identical, so the replay digest is the same either way — the
    choice is recorded in the (undigested) notes.  It is deliberately
    excluded from the checkpoint compatibility key: a run checkpointed
    under one backend may resume under the other without changing its
    digest.

    ``strict=True`` escalates every degraded-data self-heal into a
    typed :class:`~repro.utils.errors.DegradedDataError`: a sanitizer
    repair (which normally proceeds under a
    :class:`~repro.utils.errors.DegradedDataWarning`) and a
    whole-trace quarantine (which normally returns a well-formed empty
    report) both become hard errors, matching the store subcommands'
    ``--strict`` contract.
    """
    started = time.perf_counter()
    notes: list[str] = []
    if backend is not None:
        effective = set_backend(backend)
        notes.append(f"scoring backend: {effective}")
    if sanitize:
        from repro.faults import sanitize_trace

        try:
            if strict:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", DegradedDataWarning)
                    try:
                        trace, sanitize_report = sanitize_trace(trace)
                    except DegradedDataWarning as exc:
                        raise DegradedDataError(str(exc)) from exc
            else:
                trace, sanitize_report = sanitize_trace(trace)
        except TelemetryFaultError as exc:
            if strict:
                raise DegradedDataError(
                    f"sanitizer quarantined the whole trace: {exc}"
                ) from exc
            # Everything was quarantined.  An empty stream is an answer
            # (nothing scorable), not a crash.
            return _empty_report(
                split=split,
                model=model,
                registry_name=registry_name,
                chaos=chaos,
                wall_seconds=time.perf_counter() - started,
                notes=notes + [f"sanitizer quarantined the whole trace: {exc}"],
            )
        notes.append(f"sanitized input trace: {sanitize_report.summary()}")
    if trace.num_samples == 0:
        return _empty_report(
            split=split,
            model=model,
            registry_name=registry_name,
            chaos=chaos,
            wall_seconds=time.perf_counter() - started,
            notes=notes + ["input trace is empty; nothing to replay"],
        )

    injector = (
        None
        if chaos is None
        else ChaosInjector(
            chaos, span=(0.0, trace.config.duration_days * MINUTES_PER_DAY)
        )
    )

    # ------------------------------------------------------------- batch
    features = build_features(trace, top_k_apps=top_k_apps)
    pipeline = PredictionPipeline(features, splits)
    split_obj = pipeline.split(split)
    train, test = pipeline.train_test(split)
    predictor = TwoStagePredictor(model, random_state=random_state, fast=fast)
    predictor.fit(train)
    batch_scores = predictor.decision_scores(test)
    batch_pred = (batch_scores >= predictor.model.threshold).astype(int)
    batch_report = classification_report(test.y, batch_pred)

    # -------------------------------------------------------- checkpoint
    checkpoints = (
        None if checkpoint_dir is None else CheckpointManager(checkpoint_dir)
    )
    config_key = hashlib.sha256(
        json.dumps(
            {
                "split": split,
                "model": model,
                "batch_size": batch_size,
                "flush_deadline_minutes": flush_deadline_minutes,
                "registry_name": registry_name,
                "retrain_every_days": retrain_every_days,
                "retrain_window_days": retrain_window_days,
                "drift": None if drift is None else repr(drift),
                "poison_retrains": sorted(int(i) for i in poison_retrains),
                "top_k_apps": top_k_apps,
                "random_state": random_state,
                "fast": fast,
                "sanitize": sanitize,
                "chaos": None if chaos is None else chaos.digest(),
                "resilience": repr(resilience or ResilienceConfig()),
                "trace": _trace_fingerprint(trace),
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()

    registry = ModelRegistry(registry_root)
    resumed_from: int | None = None

    if resume:
        if checkpoints is None:
            raise ValidationError("--resume requires a checkpoint directory")
        resumed_from, state = checkpoints.load_latest(expected_key=config_key)
        worker: ScorerWorker = state["worker"]
        alerts = state["alerts"]
        retrains = state["retrains"]
        retrain_attempts = state["retrain_attempts"]
        next_retrain = state["next_retrain"]
        versions = state["versions"]
        notes = state["notes"] + notes
        monitor: DriftMonitor | None = state["monitor"]
        governor: RetrainGovernor | None = state["governor"]
        rows_fed = state["rows_fed"]
        alerts_fed = state["alerts_fed"]
        serving = worker.scorer.predictor
        notes.append(f"resumed from checkpoint at event {resumed_from}")
    else:
        # -------------------------------------------------------- registry
        entry = registry.save_model(
            predictor,
            name=registry_name,
            metadata={
                "split": split,
                "model": model,
                "train_start_minute": split_obj.train_start,
                "train_end_minute": split_obj.train_end,
                "random_state": random_state,
                "fast": fast,
                "top_k_apps": top_k_apps,
            },
        )
        serving, entry = registry.load_model(
            registry_name,
            entry.version,
            expect_feature_names=predictor.feature_names,
        )
        versions = [entry.version]

        # ---------------------------------------------------------- stream
        engine = StreamingFeatureEngine(
            trace.machine,
            compute_top_apps(
                np.asarray(trace.samples["app_id"], dtype=int), top_k_apps
            ),
        )
        scorer = SupervisedScorer(
            serving,
            engine.schema,
            ScorerConfig(
                max_batch_size=batch_size,
                flush_deadline_minutes=flush_deadline_minutes,
            ),
            model_version=entry.version,
            resilience=resilience,
            chaos=injector,
            fallbacks=[
                ("basic_b", BasicB().fit(train)),
                ("all_negative", AllNegativeFallback()),
            ],
        )
        worker = ScorerWorker(
            engine,
            scorer,
            window=(split_obj.train_end, split_obj.test_end),
            injector=injector,
        )
        alerts: list[Alert] = []
        retrains = 0
        retrain_attempts = 0
        next_retrain = (
            None
            if retrain_every_days is None
            else split_obj.train_end + retrain_every_days * MINUTES_PER_DAY
        )
        monitor = None if drift is None else DriftMonitor(drift)
        governor = None if drift is None else RetrainGovernor(drift)
        rows_fed = 0
        alerts_fed = 0

    window_minutes = (
        None if retrain_window_days is None else retrain_window_days * MINUTES_PER_DAY
    )
    poison_set = frozenset(int(i) for i in poison_retrains)

    def run_retrain(at: float, trigger: str) -> None:
        """One refit attempt at event-time ``at`` (periodic or drift)."""
        nonlocal retrains, retrain_attempts, serving
        resolved = [
            row
            for row in worker.history_rows
            if row.end_minute <= at
            and (row.job_id, row.node_id) in worker.labels
        ]
        if window_minutes is not None:
            cutoff = at - window_minutes
            resolved = [row for row in resolved if row.end_minute > cutoff]
        if not resolved:
            notes.append(f"retrain at minute {at:g} skipped: no resolved rows")
            record_retrain_outcome("skipped", trigger=trigger)
            return
        counts = np.asarray(
            [worker.labels[(row.job_id, row.node_id)] for row in resolved],
            dtype=np.int64,
        )
        if retrain_attempts in poison_set:
            # Test hook: a uniformly inverted label set poisons the train
            # split and its own holdout alike, so the candidate validates
            # cleanly — only post-swap monitoring can catch it.
            counts = np.where(counts > 0, 0, 1).astype(np.int64)
            notes.append(
                f"retrain attempt {retrain_attempts} at minute {at:g} "
                "poisoned (labels inverted)"
            )
        holdout = None
        if governor is not None:
            candidate, holdout = fit_validated_candidate(
                model=model,
                rows=resolved,
                counts=counts,
                schema=worker.engine.schema,
                serving=serving,
                config=drift,
                random_state=random_state,
                fast=fast,
            )
            if candidate is None:
                governor.retrains_rejected += 1
                record_retrain_outcome("rejected", trigger=trigger)
                notes.append(f"retrain at minute {at:g} rejected: {holdout.reason}")
                return
        else:
            candidate = TwoStagePredictor(
                model, random_state=random_state, fast=fast
            )
            try:
                candidate.fit(
                    rows_to_matrix(resolved, worker.engine.schema, sbe_counts=counts)
                )
            except ValidationError as exc:
                notes.append(f"retrain at minute {at:g} skipped: {exc}")
                record_retrain_outcome("failed", trigger=trigger)
                return
        attempt = retrain_attempts
        retrain_attempts += 1
        new_entry = registry.save_model(
            candidate,
            name=registry_name,
            metadata={
                "retrained_at_minute": at,
                "n_rows": len(resolved),
                "trigger": trigger,
            },
        )
        if injector is not None and injector.swap_corrupts(attempt):
            # Chaos: flip one payload byte after commit, before the
            # pre-swap verification load — a torn/bit-rotted artifact.
            payload_path = new_entry.path / new_entry.manifest["payload"]
            blob = bytearray(payload_path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            payload_path.write_bytes(bytes(blob))
        try:
            stall = (
                0.0
                if injector is None
                else injector.registry_load_stall_seconds(attempt)
            )
            worker.scorer.resilience.registry_load_stall_seconds += stall
            registry.load_model(
                registry_name,
                new_entry.version,
                expect_feature_names=serving.feature_names,
            )
        except ModelRegistryError as exc:
            # The previous model stays active; a bad artifact must
            # never take the serving path down mid-replay.
            worker.scorer.resilience.swap_failures += 1
            notes.append(
                f"hot swap to v{new_entry.version:04d} failed "
                f"(previous model kept): {exc}"
            )
            record_retrain_outcome("failed", trigger=trigger)
            return
        # Swap in the in-memory candidate (the load above is
        # verification only): bit-identical to the pre-supervision
        # behavior, which never round-tripped the swap through disk.
        previous_serving = serving
        previous_version = versions[-1]
        worker.scorer.swap_model(candidate, new_entry.version)
        serving = candidate
        versions.append(new_entry.version)
        retrains += 1
        record_retrain_outcome("published", trigger=trigger)
        if governor is not None:
            if trigger != "periodic":
                governor.retrains_drift += 1
            governor.record_swap(
                version=new_entry.version,
                previous_version=previous_version,
                previous_predictor=previous_serving,
                holdout_f1=holdout.candidate_f1,
                previous_holdout_f1=governor.serving_holdout_f1,
                pre_swap_rolling_f1=(
                    monitor.f1.f1() if monitor.f1.ready else None
                ),
                at_minute=at,
            )
            monitor.reset_after_swap()
            record_drift_metrics(monitor, active_version=new_entry.version)

    def roll_back(now_minute: float) -> None:
        """Swap the last-good model back in and re-point the registry."""
        nonlocal serving
        target_version, target_predictor = governor.record_rollback(now_minute)
        try:
            registry.rollback(registry_name, target_version)
        except ModelRegistryError as exc:
            # The in-memory swap below still restores serving quality;
            # only the on-disk head pointer could not be re-pointed.
            notes.append(
                f"registry rollback to v{target_version:04d} refused: {exc}"
            )
        worker.scorer.swap_model(target_predictor, target_version)
        serving = target_predictor
        versions.append(target_version)
        notes.append(
            f"post-swap F1 collapse at minute {now_minute:g}: rolled back "
            f"to v{target_version:04d}"
        )
        monitor.reset_after_swap()
        record_rollback()
        record_drift_metrics(monitor, active_version=target_version)

    def maybe_retrain(now_minute: float) -> None:
        nonlocal next_retrain
        while next_retrain is not None and now_minute >= next_retrain:
            at = next_retrain
            next_retrain += retrain_every_days * MINUTES_PER_DAY
            run_retrain(at, "periodic")

    serve_start = split_obj.train_end

    def between_events(now_minute: float) -> None:
        nonlocal rows_fed, alerts_fed
        if monitor is not None:
            # The PSI reference must capture the distribution the model
            # serves *at serving start*, not the trace's cold-start
            # transient — rows before the test window only feed retrain
            # history, never the detectors; the governor likewise stays
            # inert until the model is actually serving.
            history = worker.history_rows
            while rows_fed < len(history):
                row = history[rows_fed]
                if row.end_minute >= serve_start:
                    monitor.observe_row(row)
                rows_fed += 1
            while alerts_fed < len(alerts):
                monitor.observe_alert(alerts[alerts_fed])
                alerts_fed += 1
            monitor.match_labels(worker.labels)
            if now_minute >= serve_start:
                if governor.should_rollback(monitor):
                    roll_back(now_minute)
                if governor.should_check(now_minute):
                    record_drift_metrics(
                        monitor, active_version=versions[-1] if versions else None
                    )
                    reason = governor.drift_trigger(now_minute, monitor)
                    if reason is not None:
                        notes.append(
                            f"drift detected at minute {now_minute:g} ({reason}); "
                            "triggering guarded retrain"
                        )
                        run_retrain(now_minute, "drift")
        maybe_retrain(now_minute)

    for index, event in enumerate(iter_trace_events(trace)):
        if resumed_from is not None and index < resumed_from:
            continue
        alerts.extend(worker.handle_event(event, between=between_events))
        if (
            checkpoints is not None
            and worker.num_events % int(checkpoint_every_events) == 0
        ):
            checkpoints.save(
                worker.num_events,
                {
                    "worker": worker,
                    "alerts": alerts,
                    "retrains": retrains,
                    "retrain_attempts": retrain_attempts,
                    "next_retrain": next_retrain,
                    "versions": versions,
                    "notes": list(notes),
                    "monitor": monitor,
                    "governor": governor,
                    "rows_fed": rows_fed,
                    "alerts_fed": alerts_fed,
                },
                key=config_key,
            )
        if crash_after_events is not None and worker.num_events >= crash_after_events:
            raise SimulatedCrashError(worker.num_events)
    alerts.extend(worker.finish())

    # --------------------------------------------------------- alignment
    # Alert order depends on flush timing, so align to the batch test rows
    # by (run_idx, node_id) — unique per sample by construction.
    by_key = {(a.run_idx, a.node_id): a for a in alerts}
    test_keys = list(
        zip(
            (int(v) for v in test.meta["run_idx"]),
            (int(v) for v in test.meta["node_id"]),
        )
    )
    missing = [key for key in test_keys if key not in by_key]
    if missing:
        raise ValidationError(
            f"online path never scored {len(missing)} of {len(test_keys)} "
            f"batch test samples (first: {missing[0]})"
        )
    online_pred = np.asarray([by_key[key].predicted for key in test_keys], dtype=int)
    online_scores = np.asarray([by_key[key].score for key in test_keys], dtype=float)

    drift_summary = None
    if monitor is not None:
        drift_summary = {
            "state": monitor.state(),
            "triggers": [(float(m), r) for m, r in governor.triggers],
            "swaps": [(float(m), int(v)) for m, v in governor.swaps],
            "rollbacks": [(float(m), int(v)) for m, v in governor.rollback_events],
        }
        record_drift_metrics(
            monitor, active_version=versions[-1] if versions else None
        )

    return ReplayReport(
        split=split,
        model=model,
        registry_name=registry_name,
        registry_versions=versions,
        num_events=worker.num_events,
        rows_streamed=worker.engine.rows_emitted,
        rows_test=len(test_keys),
        counters=worker.scorer.counters,
        alerts=alerts,
        batch_report=batch_report,
        online_report=classification_report(test.y, online_pred),
        agreement=float(np.mean(online_pred == batch_pred)),
        max_abs_score_diff=float(np.max(np.abs(online_scores - batch_scores))),
        wall_seconds=time.perf_counter() - started,
        retrains=retrains,
        drift_retrains=0 if governor is None else governor.retrains_drift,
        retrains_rejected=0 if governor is None else governor.retrains_rejected,
        rollbacks=0 if governor is None else governor.rollbacks,
        drift=drift_summary,
        notes=notes,
        resilience=worker.scorer.resilience,
        chaos_digest=None if chaos is None else chaos.digest(),
        dead_letters=[letter.stripped() for letter in worker.scorer.dlq.letters],
        resumed_from=resumed_from,
    )


def _empty_report(
    *,
    split: str,
    model: str,
    registry_name: str,
    chaos: ChaosPlan | None,
    wall_seconds: float,
    notes: list[str],
) -> ReplayReport:
    """A well-formed report for a replay with nothing to score."""
    return ReplayReport(
        split=split,
        model=model,
        registry_name=registry_name,
        registry_versions=[],
        num_events=0,
        rows_streamed=0,
        rows_test=0,
        counters=ServeCounters(),
        alerts=[],
        batch_report=_zero_class_report(),
        online_report=_zero_class_report(),
        agreement=1.0,
        max_abs_score_diff=0.0,
        wall_seconds=wall_seconds,
        retrains=0,
        notes=notes,
        resilience=ResilienceCounters(),
        chaos_digest=None if chaos is None else chaos.digest(),
        dead_letters=[],
        resumed_from=None,
    )
