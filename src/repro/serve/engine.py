"""Stateful streaming feature engine.

Consumes the telemetry event stream (:mod:`repro.serve.events`) in
delivery order and emits one model-ready feature row per (run, node)
sample at run completion.  The contract — enforced by the parity tests —
is that the emitted rows are **bit-identical** to the batch
:func:`~repro.features.builder.build_features` output on the same trace:

* telemetry and application columns are carried by the completion event
  (the out-of-band sampler computed them online, exactly as in batch);
* history features are evaluated at run *start* against an
  :class:`~repro.features.history.IncrementalHistoryIndex` fed only the
  SBE events observed so far, which matches the batch index's causal
  window queries because both count events with ``start <= t < end``;
* the app indicator vocabulary (``app_is_topNN``) is supplied by the
  caller — frozen at training time in production, or computed with
  :func:`~repro.features.builder.compute_top_apps` for replay parity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.builder import FeatureMatrix
from repro.obs import get_registry
from repro.features.history import IncrementalHistoryIndex
from repro.features.schema import (
    FeatureSchema,
    GROUP_APP,
    GROUP_HIST,
    GROUP_LOCATION,
    GROUP_TP,
)
from repro.serve.events import (
    JobResolved,
    RunCompleted,
    RunStarted,
    SbeObserved,
)
from repro.telemetry.trace import PRE_WINDOWS_MINUTES
from repro.topology.machine import Machine
from repro.utils.errors import ValidationError

__all__ = [
    "StreamedRow",
    "StreamingFeatureEngine",
    "build_stream_schema",
    "rows_to_matrix",
]

MINUTES_PER_DAY = 1440.0
_STAT_SUFFIXES = ("mean", "std", "dmean", "dstd")


@dataclass(frozen=True)
class StreamedRow:
    """One (run, node) feature row emitted at run completion."""

    run_idx: int
    job_id: int
    node_id: int
    app_id: int
    start_minute: float
    end_minute: float
    duration_minutes: float
    n_nodes: int
    gpu_core_hours: float
    #: Feature vector in the engine's schema order.
    features: np.ndarray


def build_stream_schema(num_top_apps: int) -> FeatureSchema:
    """The engine's feature schema; must mirror the batch builder exactly."""
    schema = FeatureSchema()
    schema.add("app_code", GROUP_APP)
    for rank in range(num_top_apps):
        schema.add(f"app_is_top{rank:02d}", GROUP_APP)
    schema.add("prev_app_code", GROUP_APP)
    schema.add("prev_app_same", GROUP_APP)
    for name in (
        "duration_minutes",
        "n_nodes",
        "gpu_core_hours",
        "gpu_util",
        "max_mem_gb",
        "agg_mem_gb",
    ):
        schema.add(name, GROUP_APP)
    for quantity in ("gpu_temp", "gpu_power"):
        for suffix in _STAT_SUFFIXES:
            schema.add(f"{quantity}_{suffix}", GROUP_TP, "tp_cur")
    for window in PRE_WINDOWS_MINUTES:
        for quantity in ("temp", "power"):
            for suffix in _STAT_SUFFIXES:
                schema.add(f"pre{window}_{quantity}_{suffix}", GROUP_TP, "tp_prev")
    for quantity in ("cpu_temp", "nei_temp", "nei_power"):
        for suffix in _STAT_SUFFIXES:
            schema.add(f"{quantity}_{suffix}", GROUP_TP, "tp_nei")
    for name in (
        "loc_cabinet_x",
        "loc_cabinet_y",
        "loc_cage",
        "loc_slot",
        "loc_node_in_slot",
        "loc_node_code",
    ):
        schema.add(name, GROUP_LOCATION)
    for length in ("today", "yesterday", "before"):
        schema.add(f"hist_node_{length}", GROUP_HIST, "hist_local", f"hist_{length}")
        schema.add(f"hist_app_{length}", GROUP_HIST, "hist_app", f"hist_{length}")
        schema.add(
            f"hist_machine_{length}", GROUP_HIST, "hist_global", f"hist_{length}"
        )
    schema.add("hist_alloc_today", GROUP_HIST, "hist_local", "hist_today")
    return schema


class StreamingFeatureEngine:
    """Turns the event stream into feature rows, one run at a time."""

    def __init__(self, machine: Machine, top_apps: np.ndarray) -> None:
        self._machine = machine
        self._top_apps = np.asarray(top_apps, dtype=int)
        self.schema = build_stream_schema(self._top_apps.size)
        self._node_index = IncrementalHistoryIndex()
        self._app_index = IncrementalHistoryIndex()
        #: run_idx -> history feature arrays computed at the run's start.
        self._pending: dict[int, dict[str, np.ndarray]] = {}
        self.rows_emitted = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def node_index(self) -> IncrementalHistoryIndex:
        """Node-keyed SBE history (the online stage-1 substrate)."""
        return self._node_index

    @property
    def app_index(self) -> IncrementalHistoryIndex:
        """Application-keyed SBE history."""
        return self._app_index

    @property
    def pending_runs(self) -> int:
        """Runs started but not yet completed."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def process(self, event) -> list[StreamedRow]:
        """Apply one event; returns emitted rows (non-empty on completion)."""
        self.events_processed += 1
        if isinstance(event, RunStarted):
            self._on_start(event)
            return []
        if isinstance(event, RunCompleted):
            return self._on_complete(event)
        if isinstance(event, SbeObserved):
            self._node_index.add(event.node_id, event.minute, event.count)
            self._app_index.add(event.app_id, event.minute, event.count)
            return []
        if isinstance(event, JobResolved):
            return []  # label bookkeeping is the serving layer's job
        raise ValidationError(f"unknown telemetry event type: {type(event).__name__}")

    def stream(self, events):
        """Process an iterable of events, yielding rows as they emit."""
        for event in events:
            yield from self.process(event)

    # ------------------------------------------------------------------
    def _on_start(self, event: RunStarted) -> None:
        if event.run_idx in self._pending:
            raise ValidationError(f"run {event.run_idx} started twice")
        nodes = np.asarray(event.node_ids, dtype=int)
        apps = np.asarray(event.app_ids, dtype=int)
        starts = np.asarray(event.start_minutes, dtype=float)
        day = MINUTES_PER_DAY
        windows = (
            ("today", -day, 0.0),
            ("yesterday", -2.0 * day, -day),
            ("before", -np.inf, -2.0 * day),
        )
        hist: dict[str, np.ndarray] = {}
        for length, lo, hi in windows:
            node_counts = np.asarray(
                [
                    self._node_index.count_between(nd, st + lo, st + hi)
                    for nd, st in zip(nodes, starts)
                ],
                dtype=np.int64,
            )
            app_counts = np.asarray(
                [
                    self._app_index.count_between(ap, st + lo, st + hi)
                    for ap, st in zip(apps, starts)
                ],
                dtype=np.int64,
            )
            machine_counts = np.asarray(
                [
                    self._node_index.global_between(st + lo, st + hi)
                    for st in starts
                ],
                dtype=np.int64,
            )
            hist[f"node_{length}"] = node_counts
            hist[f"app_{length}"] = app_counts
            hist[f"machine_{length}"] = machine_counts
        # Allocation-level history: mean node "today" count over the run's
        # rows (float sum of integer-valued terms, exact — matches the
        # batch builder's bincount accumulation).
        today = hist["node_today"].astype(float)
        hist["alloc_today"] = np.full(nodes.size, today.sum() / float(nodes.size))
        self._pending[event.run_idx] = hist

    def _on_complete(self, event: RunCompleted) -> list[StreamedRow]:
        hist = self._pending.pop(event.run_idx, None)
        if hist is None:
            raise ValidationError(
                f"run {event.run_idx} completed but was never started"
            )
        r = event.rows
        app_id = np.asarray(r["app_id"], dtype=int)
        prev_app = np.asarray(r["prev_app_id"], dtype=int)
        node_id = np.asarray(r["node_id"], dtype=int)
        machine = self._machine
        cfg = machine.config

        columns: list[np.ndarray] = [np.asarray(app_id, dtype=float)]
        for app in self._top_apps:
            columns.append((app_id == app).astype(float))
        columns.append(np.asarray(prev_app, dtype=float))
        columns.append((prev_app == app_id).astype(float))
        for name in (
            "duration_minutes",
            "n_nodes",
            "gpu_core_hours",
            "gpu_util",
            "max_mem_gb",
            "agg_mem_gb",
        ):
            columns.append(np.asarray(r[name], dtype=float))
        for quantity in ("gpu_temp", "gpu_power"):
            for suffix in _STAT_SUFFIXES:
                columns.append(np.asarray(r[f"{quantity}_{suffix}"], dtype=float))
        for window in PRE_WINDOWS_MINUTES:
            for quantity in ("temp", "power"):
                for suffix in _STAT_SUFFIXES:
                    columns.append(
                        np.asarray(r[f"pre{window}_{quantity}_{suffix}"], dtype=float)
                    )
        for quantity in ("cpu_temp", "nei_temp", "nei_power"):
            for suffix in _STAT_SUFFIXES:
                columns.append(np.asarray(r[f"{quantity}_{suffix}"], dtype=float))

        columns.append(np.asarray(machine.cabinet_x[node_id], dtype=float))
        columns.append(np.asarray(machine.cabinet_y[node_id], dtype=float))
        per_cab = cfg.nodes_per_cabinet
        within = node_id % per_cab
        per_cage = cfg.slots_per_cage * cfg.nodes_per_slot
        columns.append(np.asarray(within // per_cage, dtype=float))
        columns.append(
            np.asarray((within % per_cage) // cfg.nodes_per_slot, dtype=float)
        )
        columns.append(np.asarray(within % cfg.nodes_per_slot, dtype=float))
        columns.append(np.asarray(node_id, dtype=float))

        for length in ("today", "yesterday", "before"):
            columns.append(np.log1p(hist[f"node_{length}"]))
            columns.append(np.log1p(hist[f"app_{length}"]))
            columns.append(np.log1p(hist[f"machine_{length}"]))
        columns.append(np.log1p(hist["alloc_today"]))

        X = np.column_stack(columns)
        if X.shape[1] != len(self.schema):  # pragma: no cover - invariant
            raise ValidationError(
                f"engine produced {X.shape[1]} columns, schema has "
                f"{len(self.schema)}"
            )
        rows = [
            StreamedRow(
                run_idx=int(r["run_idx"][i]),
                job_id=int(r["job_id"][i]),
                node_id=int(node_id[i]),
                app_id=int(app_id[i]),
                start_minute=float(r["start_minute"][i]),
                end_minute=float(r["end_minute"][i]),
                duration_minutes=float(r["duration_minutes"][i]),
                n_nodes=int(r["n_nodes"][i]),
                gpu_core_hours=float(r["gpu_core_hours"][i]),
                features=X[i],
            )
            for i in range(node_id.size)
        ]
        self.rows_emitted += len(rows)
        # Looked up lazily: the engine is pickled into replay checkpoints
        # and must not hold a registry (and its lock) in its state.
        get_registry().counter(
            "repro_features_rows_total", "Feature rows built, per builder kind."
        ).inc(len(rows), builder="streaming")
        return rows


def rows_to_matrix(
    rows: list[StreamedRow],
    schema: FeatureSchema,
    *,
    sbe_counts: np.ndarray | None = None,
) -> FeatureMatrix:
    """Assemble streamed rows into a batch-compatible feature matrix.

    ``sbe_counts`` supplies the resolved per-row labels (defaults to all
    zeros for not-yet-resolved rows); the result then feeds the same
    :class:`~repro.core.twostage.TwoStagePredictor` fit/predict API as
    the batch path.
    """
    n = len(rows)
    if n == 0:
        raise ValidationError("cannot build a feature matrix from zero rows")
    if sbe_counts is None:
        sbe_counts = np.zeros(n, dtype=np.int64)
    sbe_counts = np.asarray(sbe_counts, dtype=np.int64)
    if sbe_counts.shape[0] != n:
        raise ValidationError("sbe_counts and rows disagree on sample count")
    # Fused single-pass fill: preallocate the matrix and every meta array
    # once and populate them in one walk over the rows (the micro-batch
    # hot path used to make ~10 separate list-comprehension passes plus a
    # vstack here).  Values and dtypes are unchanged, so this is
    # bit-identical to the old assembly.
    X = np.empty((n, len(schema)), dtype=float)
    run_idx = np.empty(n, dtype=int)
    job_id = np.empty(n, dtype=int)
    node_id = np.empty(n, dtype=int)
    app_id = np.empty(n, dtype=int)
    start_minute = np.empty(n, dtype=float)
    end_minute = np.empty(n, dtype=float)
    duration_minutes = np.empty(n, dtype=float)
    n_nodes = np.empty(n, dtype=int)
    gpu_core_hours = np.empty(n, dtype=float)
    for i, row in enumerate(rows):
        X[i] = row.features
        run_idx[i] = row.run_idx
        job_id[i] = row.job_id
        node_id[i] = row.node_id
        app_id[i] = row.app_id
        start_minute[i] = row.start_minute
        end_minute[i] = row.end_minute
        duration_minutes[i] = row.duration_minutes
        n_nodes[i] = row.n_nodes
        gpu_core_hours[i] = row.gpu_core_hours
    meta = {
        "run_idx": run_idx,
        "job_id": job_id,
        "node_id": node_id,
        "app_id": app_id,
        "start_minute": start_minute,
        "end_minute": end_minute,
        "duration_minutes": duration_minutes,
        "n_nodes": n_nodes,
        "gpu_core_hours": gpu_core_hours,
        "sbe_count": sbe_counts,
    }
    return FeatureMatrix(
        X=X,
        y=(sbe_counts > 0).astype(int),
        schema=schema,
        meta=meta,
    )
