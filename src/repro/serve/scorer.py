"""Micro-batching scorer: drains feature rows, emits ranked alerts.

Scoring row-by-row would pay the full Python/numpy dispatch cost per
sample; scoring only at the end would not be *online*.  The scorer takes
the standard middle road: rows queue as the engine emits them and the
queue drains as one vectorized TwoStage prediction when either

* the queue reaches ``max_batch_size`` rows (size flush), or
* the oldest queued row has waited ``flush_deadline_minutes`` of event
  time (deadline flush) — a bound on alert latency, checked against the
  stream clock the caller passes in.

Every flush produces one :class:`Alert` per scored row (the positive
ones are the operator-facing alerts, ranked by decision score) and
updates the latency / throughput / queue-depth counters.  The model can
be hot-swapped between batches (:meth:`MicroBatchScorer.swap_model`),
which is how the periodic-retrain loop publishes new registry versions
without dropping rows.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.twostage import TwoStagePredictor
from repro.features.schema import FeatureSchema
from repro.ml.kernels import get_backend
from repro.obs import DEFAULT_MINUTE_BUCKETS, DEFAULT_SIZE_BUCKETS, get_registry
from repro.serve.engine import StreamedRow, rows_to_matrix
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = ["ScorerConfig", "Alert", "ServeCounters", "MicroBatchScorer"]


def _flush_counter():
    """The shared flush counter (looked up lazily; scorers pickle)."""
    return get_registry().counter(
        "repro_serve_flushes_total", "Micro-batch flushes, by trigger kind."
    )


@dataclass(frozen=True)
class ScorerConfig:
    """Micro-batching knobs."""

    #: Flush as soon as this many rows are queued.
    max_batch_size: int = 256
    #: Flush when the oldest queued row has waited this long (event time).
    flush_deadline_minutes: float = 30.0

    def __post_init__(self) -> None:
        check_positive(self.max_batch_size, "max_batch_size")
        check_positive(self.flush_deadline_minutes, "flush_deadline_minutes")


@dataclass(frozen=True)
class Alert:
    """One scored (run, node) sample."""

    run_idx: int
    job_id: int
    node_id: int
    app_id: int
    end_minute: float
    #: Event-time minute at which the row was scored.
    scored_minute: float
    #: Ranking score from :meth:`TwoStagePredictor.decision_scores`.
    score: float
    #: Thresholded SBE prediction (1 = alert the operator).
    predicted: int
    #: Registry version of the model that scored the row.
    model_version: int
    #: Which path scored the row: ``"primary"`` or ``"fallback:<name>"``
    #: (the latter only from the supervised scorer under degradation).
    source: str = "primary"


@dataclass
class ServeCounters:
    """Scoring-service telemetry."""

    rows_in: int = 0
    rows_scored: int = 0
    batches: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    final_flushes: int = 0
    positive_alerts: int = 0
    max_queue_depth: int = 0
    #: Sum over scored rows of (scored_minute - enqueue_minute).
    total_queue_minutes: float = 0.0
    #: Wall-clock seconds spent inside model prediction.
    scoring_seconds: float = 0.0
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def mean_queue_minutes(self) -> float:
        """Mean event-time latency from emission to scoring."""
        if self.rows_scored == 0:
            return 0.0
        return self.total_queue_minutes / self.rows_scored

    @property
    def rows_per_second(self) -> float:
        """Scoring throughput over wall-clock prediction time."""
        if self.scoring_seconds <= 0.0:
            return 0.0
        return self.rows_scored / self.scoring_seconds


class MicroBatchScorer:
    """Queues streamed rows and scores them in vectorized micro-batches."""

    def __init__(
        self,
        predictor: TwoStagePredictor,
        schema: FeatureSchema,
        config: ScorerConfig | None = None,
        *,
        model_version: int = 1,
    ) -> None:
        self._predictor = predictor
        self._schema = schema
        self.config = config or ScorerConfig()
        self.model_version = int(model_version)
        self.counters = ServeCounters()
        self._queue: deque[tuple[float, StreamedRow]] = deque()

    # ------------------------------------------------------------------
    @property
    def predictor(self) -> TwoStagePredictor:
        """The currently-serving model."""
        return self._predictor

    @property
    def queue_depth(self) -> int:
        """Rows waiting for the next flush."""
        return len(self._queue)

    def swap_model(self, predictor: TwoStagePredictor, model_version: int) -> None:
        """Hot-swap the serving model (takes effect from the next batch)."""
        if list(predictor.feature_names) != list(self._predictor.feature_names):
            raise ValidationError(
                "cannot swap in a model with a different feature schema"
            )
        self._predictor = predictor
        self.model_version = int(model_version)

    # ------------------------------------------------------------------
    def submit(self, rows, now_minute: float | None = None) -> list[Alert]:
        """Enqueue rows; returns alerts from any size-triggered flushes."""
        alerts: list[Alert] = []
        for row in rows:
            enqueue_minute = row.end_minute if now_minute is None else now_minute
            self._queue.append((float(enqueue_minute), row))
            self.counters.rows_in += 1
            self.counters.max_queue_depth = max(
                self.counters.max_queue_depth, len(self._queue)
            )
            if len(self._queue) >= self.config.max_batch_size:
                self.counters.size_flushes += 1
                _flush_counter().inc(kind="size")
                alerts.extend(self._flush_batch(float(enqueue_minute)))
        return alerts

    def poll(self, now_minute: float) -> list[Alert]:
        """Deadline check against the stream clock; flush overdue rows."""
        alerts: list[Alert] = []
        deadline = self.config.flush_deadline_minutes
        while self._queue and self._queue[0][0] + deadline <= now_minute:
            self.counters.deadline_flushes += 1
            _flush_counter().inc(kind="deadline")
            alerts.extend(self._flush_batch(now_minute))
        return alerts

    def flush(self, now_minute: float | None = None) -> list[Alert]:
        """Drain everything still queued (end of stream)."""
        alerts: list[Alert] = []
        while self._queue:
            final_minute = (
                now_minute if now_minute is not None else self._queue[-1][0]
            )
            self.counters.final_flushes += 1
            _flush_counter().inc(kind="final")
            alerts.extend(self._flush_batch(float(final_minute)))
        return alerts

    # ------------------------------------------------------------------
    def _flush_batch(self, scored_minute: float) -> list[Alert]:
        take = min(len(self._queue), self.config.max_batch_size)
        if take == 0:
            return []
        entries = [self._queue.popleft() for _ in range(take)]
        outcome = self._score_entries(entries, scored_minute)
        if outcome is None:
            # The supervising subclass quarantined the batch; the rows are
            # in its dead-letter queue and will be replayed on recovery.
            return []
        scores, predicted, model_version, source = outcome
        return self._emit(
            entries, scores, predicted, scored_minute, model_version, source
        )

    def _score_entries(self, entries, scored_minute: float):
        """Score one drained batch; the supervision hook.

        Returns ``(scores, predicted, model_version, source)``, or ``None``
        when the batch could not be scored and was quarantined (only the
        supervised subclass does that — this base implementation scores
        with the primary model, unconditionally).
        """
        rows = [row for _, row in entries]
        matrix = rows_to_matrix(rows, self._schema)
        started = time.perf_counter()
        scores = self._predictor.decision_scores(matrix)
        elapsed = time.perf_counter() - started
        self.counters.scoring_seconds += elapsed
        registry = get_registry()
        registry.counter(
            "repro_serve_scoring_seconds_total",
            "Wall time spent inside model prediction.",
            wall=True,
        ).inc(elapsed)
        registry.counter(
            "repro_serve_kernel_batches_total",
            "Micro-batches scored, by scoring-kernel backend.",
        ).inc(backend=get_backend())
        threshold = self._predictor.model.threshold
        predicted = (scores >= threshold).astype(int)
        return scores, predicted, self.model_version, "primary"

    def _emit(
        self,
        entries,
        scores,
        predicted,
        scored_minute: float,
        model_version: int,
        source: str,
    ) -> list[Alert]:
        """Turn one scored batch into alerts and update the counters."""
        # Registry handles are looked up per batch, not stored: scorers
        # are pickled into replay checkpoints.
        registry = get_registry()
        queue_minutes = registry.histogram(
            "repro_serve_queue_minutes",
            "Event-time latency from row emission to scoring (minutes).",
            buckets=DEFAULT_MINUTE_BUCKETS,
        )
        alerts = []
        for (enqueue_minute, row), score, label in zip(entries, scores, predicted):
            self.counters.total_queue_minutes += scored_minute - enqueue_minute
            queue_minutes.observe(scored_minute - enqueue_minute)
            alerts.append(
                Alert(
                    run_idx=row.run_idx,
                    job_id=row.job_id,
                    node_id=row.node_id,
                    app_id=row.app_id,
                    end_minute=row.end_minute,
                    scored_minute=scored_minute,
                    score=float(score),
                    predicted=int(label),
                    model_version=model_version,
                    source=source,
                )
            )
        self.counters.rows_scored += len(entries)
        self.counters.batches += 1
        self.counters.batch_sizes.append(len(entries))
        self.counters.positive_alerts += int(predicted.sum())
        registry.counter(
            "repro_serve_rows_scored_total", "Rows scored, by model source."
        ).inc(len(entries), source=source)
        registry.counter(
            "repro_serve_alerts_total", "Positive alerts emitted."
        ).inc(int(predicted.sum()))
        registry.histogram(
            "repro_serve_batch_rows",
            "Rows per scored micro-batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        ).observe(len(entries))
        return alerts
