"""Periodic checkpointing for :func:`repro.serve.replay.serve_replay`.

A replay killed mid-stream (node reboot, preemption, the driver's own
``--crash-after`` test hook) must be resumable without changing the
answer: the resumed run has to produce *bit-identical* final metrics and
digest to an uninterrupted run.  The store here gives that a commit
protocol built on :mod:`repro.utils.io`:

* the state bundle is pickled to ``ckpt-<events:08d>.pkl`` via an atomic
  temp-then-rename write, then
* a sibling ``ckpt-<events:08d>.json`` manifest (format version, event
  cursor, payload checksum, and a *compatibility key* hashing every
  replay parameter plus the trace fingerprint and chaos plan) is written
  last — the manifest is the commit point, mirroring the model
  registry's payload-then-manifest ordering.

:meth:`CheckpointManager.latest` therefore never observes a
half-written checkpoint: versions without a manifest, with a corrupt
manifest, or whose payload fails its checksum are skipped with a
:class:`DegradedDataWarning` and the newest *valid* checkpoint wins.
A compatibility-key mismatch on resume (different split, model, chaos
plan, or trace) is a hard :class:`ValidationError` — resuming somebody
else's checkpoint would silently corrupt the metrics.
"""

from __future__ import annotations

import json
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.utils.errors import DegradedDataWarning, ValidationError
from repro.utils.io import (
    atomic_write_json,
    atomic_write_pickle,
    read_pickle_checked,
)

__all__ = ["CheckpointManager", "CheckpointInfo", "CHECKPOINT_FORMAT"]

#: Bump when the pickled state bundle's layout changes incompatibly.
CHECKPOINT_FORMAT = 2

_CKPT_RE = re.compile(r"^ckpt-(\d{8})\.json$")


@dataclass(frozen=True)
class CheckpointInfo:
    """One committed checkpoint: manifest fields plus its payload path."""

    events_done: int
    key: str
    checksum: str
    payload: Path

    def load(self):
        """Unpickle the state bundle, verifying the payload checksum."""
        return read_pickle_checked(self.payload, checksum=self.checksum)


class CheckpointManager:
    """Atomic, checksummed checkpoint store under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _payload_path(self, events_done: int) -> Path:
        return self.root / f"ckpt-{events_done:08d}.pkl"

    def _manifest_path(self, events_done: int) -> Path:
        return self.root / f"ckpt-{events_done:08d}.json"

    # ------------------------------------------------------------------
    def save(self, events_done: int, state, *, key: str) -> CheckpointInfo:
        """Commit one checkpoint at event cursor ``events_done``.

        ``key`` is the replay's compatibility key; :meth:`load_latest`
        refuses checkpoints whose key differs from the resuming run's.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = self._payload_path(events_done)
        checksum = atomic_write_pickle(payload, state)
        atomic_write_json(
            self._manifest_path(events_done),
            {
                "format": CHECKPOINT_FORMAT,
                "events_done": int(events_done),
                "key": key,
                "checksum": checksum,
            },
        )
        return CheckpointInfo(
            events_done=int(events_done), key=key, checksum=checksum, payload=payload
        )

    # ------------------------------------------------------------------
    def list_checkpoints(self) -> list[CheckpointInfo]:
        """All committed, intact checkpoints, oldest first.

        Manifests that are unreadable, structurally wrong, or from a
        different format version — and manifests whose payload file is
        missing — are skipped with a :class:`DegradedDataWarning`, not
        raised: a crash between payload and manifest writes must not
        wedge every later resume.
        """
        if not self.root.is_dir():
            return []
        infos: list[CheckpointInfo] = []
        for child in sorted(self.root.iterdir()):
            match = _CKPT_RE.match(child.name)
            if match is None:
                continue
            try:
                manifest = json.loads(child.read_text())
                events_done = int(manifest["events_done"])
                key = str(manifest["key"])
                checksum = str(manifest["checksum"])
                fmt = int(manifest["format"])
            except (OSError, ValueError, KeyError, TypeError):
                warnings.warn(
                    f"skipping corrupt checkpoint manifest {child.name}",
                    DegradedDataWarning,
                    stacklevel=2,
                )
                continue
            if fmt != CHECKPOINT_FORMAT or events_done != int(match.group(1)):
                warnings.warn(
                    f"skipping incompatible checkpoint {child.name} "
                    f"(format {fmt})",
                    DegradedDataWarning,
                    stacklevel=2,
                )
                continue
            payload = self._payload_path(events_done)
            if not payload.is_file():
                warnings.warn(
                    f"skipping checkpoint {child.name}: payload missing",
                    DegradedDataWarning,
                    stacklevel=2,
                )
                continue
            infos.append(
                CheckpointInfo(
                    events_done=events_done,
                    key=key,
                    checksum=checksum,
                    payload=payload,
                )
            )
        return infos

    def latest(self) -> CheckpointInfo | None:
        """The newest intact checkpoint, or ``None``."""
        infos = self.list_checkpoints()
        return infos[-1] if infos else None

    def load_latest(self, *, expected_key: str):
        """Load the newest checkpoint's state bundle for a resume.

        Returns ``(events_done, state)``.  Raises
        :class:`ValidationError` when no checkpoint exists or the
        newest one was written by an incompatible replay configuration.
        """
        info = self.latest()
        if info is None:
            raise ValidationError(
                f"no checkpoint found under {self.root}; nothing to resume"
            )
        if info.key != expected_key:
            raise ValidationError(
                "checkpoint was written by an incompatible replay "
                "(different split/model/chaos plan/trace); refusing to resume"
            )
        return info.events_done, info.load()

    # ------------------------------------------------------------------
    def prune(self, *, keep_last: int = 3) -> int:
        """Delete all but the newest ``keep_last`` checkpoints."""
        infos = self.list_checkpoints()
        removed = 0
        for info in infos[: max(len(infos) - keep_last, 0)]:
            self._manifest_path(info.events_done).unlink(missing_ok=True)
            info.payload.unlink(missing_ok=True)
            removed += 1
        return removed
