"""Fault-tolerant serving: chaos injection, supervision, dead letters.

:mod:`repro.faults` degrades the *data*; this module degrades the
*pipeline*.  The paper's predictor is only operationally useful if it
keeps emitting predictions while the infrastructure around it misbehaves
(Netti et al. make the same point for online fault classifiers: the
monitor must survive the faults it monitors).  Four cooperating pieces:

* :class:`ChaosPlan` / :class:`ChaosInjector` — a seeded, composable
  injector that perturbs the serving pipeline itself: transient and
  persistent (outage-window) scorer exceptions, simulated wall-clock
  stalls, hot-swap corruption of freshly published registry versions,
  and malformed / oversized event bursts in the telemetry stream.  Every
  decision is a pure function of ``(seed, counter)`` via SHA-256, so a
  replay resumed from a checkpoint re-derives exactly the faults an
  uninterrupted run would have seen.
* :class:`CircuitBreaker` — trips open after K consecutive failed
  batches, fast-fails to the fallback chain while open, and re-probes
  the primary model with half-open trial batches after a cooldown.
* :class:`DeadLetterQueue` — quarantines unscorable batches and
  malformed events with typed reasons; quarantined batches are replayed
  through the primary model when the breaker closes again, and drained
  through the fallback chain at end of stream, so no event is ever
  silently dropped.
* :class:`SupervisedScorer` — a :class:`~repro.serve.scorer.MicroBatchScorer`
  whose scoring hook adds bounded retry with exponential backoff and
  jitter, per-batch deadline timeouts, the circuit breaker, and the
  registered fallback predictors (Basic-B first, all-negative as last
  resort).  With no chaos and a healthy model every added mechanism is
  dormant and the scorer is bit-identical to the unsupervised one.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import FeatureMatrix
from repro.obs import get_registry
from repro.features.schema import FeatureSchema
from repro.serve.scorer import Alert, MicroBatchScorer, ScorerConfig
from repro.serve.engine import rows_to_matrix
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "ChaosPlan",
    "ChaosInjector",
    "MalformedEvent",
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "ResilienceConfig",
    "ResilienceCounters",
    "AllNegativeFallback",
    "SupervisedScorer",
    "FALLBACK_MODEL_VERSION",
    "LAST_RESORT_MODEL_VERSION",
]

#: ``Alert.model_version`` sentinel for rows scored by the registered
#: fallback predictor (Basic-B), and by the all-negative last resort.
FALLBACK_MODEL_VERSION = 0
LAST_RESORT_MODEL_VERSION = -1


def _unit(seed: int, label: str, *indices: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by name + counters.

    Stateless by construction: the chaos a resumed replay sees depends
    only on the plan seed and the same counters an uninterrupted run
    would have reached, never on how many draws happened before.
    """
    h = hashlib.sha256()
    h.update(f"{seed}|{label}|{'|'.join(str(i) for i in indices)}".encode())
    return int.from_bytes(h.digest()[:8], "little") / 2.0**64


# ----------------------------------------------------------------------
# Chaos plan + injector
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosPlan:
    """Intensity knobs for serve-layer chaos (mirrors ``FaultSpec``).

    ``intensity`` is the master dial in ``[0, 1]``; every per-fault rate
    is multiplied by it, so ``intensity=0`` is exactly a no-op.
    """

    intensity: float = 0.25
    seed: int = 0
    #: Probability a primary scoring *attempt* raises a transient fault.
    scorer_fault_rate: float = 0.15
    #: Expected persistent scorer-outage windows over the replay.
    outage_windows: float = 4.0
    #: Mean outage length as a fraction of the stream's time span.
    outage_span: float = 0.04
    #: Probability a scoring attempt stalls (simulated wall-clock).
    stall_rate: float = 0.10
    #: Mean simulated stall length in seconds.
    stall_mean_seconds: float = 45.0
    #: Probability a freshly published registry version is corrupted on
    #: disk before the pre-swap verification load.
    swap_failure_rate: float = 0.75
    #: Simulated extra seconds per registry model load.
    registry_load_stall_seconds: float = 5.0
    #: Per-event probability of a malformed-event burst in the stream.
    burst_rate: float = 0.01
    #: Maximum burst length; bursts longer than half this are recorded
    #: as ``oversized_burst`` rather than ``malformed_event``.
    burst_max_events: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValidationError(
                f"chaos intensity must be in [0, 1], got {self.intensity}"
            )

    @classmethod
    def preset(cls, name: str, *, seed: int = 0) -> "ChaosPlan":
        """Named presets: ``clean``, ``mild``, ``moderate``, ``severe``."""
        levels = {"clean": 0.0, "mild": 0.1, "moderate": 0.25, "severe": 0.5}
        try:
            return cls(intensity=levels[name], seed=seed)
        except KeyError:
            raise ValidationError(
                f"unknown chaos preset {name!r}; options: {sorted(levels)}"
            ) from None

    def scaled(self, rate: float) -> float:
        """A per-fault rate after applying the master intensity."""
        return float(rate) * float(self.intensity)

    def digest(self) -> str:
        """Stable fingerprint of the plan (checkpoint compatibility key)."""
        h = hashlib.sha256()
        for name in sorted(self.__dataclass_fields__):
            h.update(f"{name}={getattr(self, name)!r};".encode())
        return h.hexdigest()


@dataclass(frozen=True)
class MalformedEvent:
    """A garbage telemetry event injected into the stream by chaos.

    The feature engine does not recognize the type and raises; the
    serving loop quarantines it in the dead-letter queue with the typed
    ``reason`` carried here.
    """

    minute: float
    reason: str
    detail: str = ""


class ChaosInjector:
    """Runtime face of a :class:`ChaosPlan` over one event stream.

    Persistent-outage windows are drawn once from the plan seed and the
    stream's time span; everything else is a pure hash of the plan seed
    and a monotone counter supplied by the caller, so the injector
    carries no mutable state and pickles trivially inside a checkpoint.
    """

    def __init__(self, plan: ChaosPlan, *, span: tuple[float, float] = (0.0, 0.0)):
        self.plan = plan
        self.span = (float(span[0]), float(span[1]))
        self.outages = self._draw_outages()

    def _draw_outages(self) -> list[tuple[float, float]]:
        plan = self.plan
        count = int(round(plan.scaled(plan.outage_windows)))
        t_lo, t_hi = self.span
        horizon = max(t_hi - t_lo, 1.0)
        windows = []
        for i in range(count):
            start = t_lo + _unit(plan.seed, "outage-start", i) * horizon
            length = -plan.outage_span * horizon * math.log(
                1.0 - _unit(plan.seed, "outage-len", i)
            )
            windows.append((start, min(start + length, t_hi)))
        return sorted(windows)

    @property
    def enabled(self) -> bool:
        """Whether the plan injects anything at all."""
        return self.plan.intensity > 0.0

    def digest(self) -> str:
        """The plan's fingerprint (see :meth:`ChaosPlan.digest`)."""
        return self.plan.digest()

    # ---------------------------------------------------------- scoring
    def attempt_fault(
        self, minute: float, attempt_seq: int
    ) -> tuple[str, str] | None:
        """Fault verdict for one scoring attempt: ``(kind, detail)``/None.

        Outage windows fail *every* attempt inside them (persistent —
        what trips the breaker); transient faults are independent
        per-attempt draws (what retry + backoff absorbs).
        """
        if not self.enabled:
            return None
        for start, end in self.outages:
            if start <= minute <= end:
                return ("outage", f"scorer outage window [{start:.0f}, {end:.0f}]")
        plan = self.plan
        if _unit(plan.seed, "transient", attempt_seq) < plan.scaled(
            plan.scorer_fault_rate
        ):
            return ("transient", f"injected transient fault (attempt {attempt_seq})")
        return None

    def attempt_stall_seconds(self, attempt_seq: int) -> float:
        """Simulated wall-clock stall for one scoring attempt (0 = none)."""
        if not self.enabled:
            return 0.0
        plan = self.plan
        if _unit(plan.seed, "stall", attempt_seq) >= plan.scaled(plan.stall_rate):
            return 0.0
        return -plan.stall_mean_seconds * math.log(
            1.0 - _unit(plan.seed, "stall-len", attempt_seq)
        )

    def backoff_jitter(self, attempt_seq: int) -> float:
        """Deterministic jitter factor in ``[0, 1)`` for one backoff."""
        return _unit(self.plan.seed, "jitter", attempt_seq)

    # --------------------------------------------------------- registry
    def swap_corrupts(self, retrain_index: int) -> bool:
        """Whether the ``retrain_index``-th published version is corrupted."""
        return self.enabled and _unit(
            self.plan.seed, "swap", retrain_index
        ) < self.plan.scaled(self.plan.swap_failure_rate)

    def registry_load_stall_seconds(self, load_index: int) -> float:
        """Simulated slow-load seconds for one registry model load."""
        if not self.enabled:
            return 0.0
        return -self.plan.scaled(self.plan.registry_load_stall_seconds) * math.log(
            1.0 - _unit(self.plan.seed, "registry-load", load_index)
        )

    # ----------------------------------------------------------- stream
    def burst(self, event_index: int, minute: float) -> list[MalformedEvent]:
        """Malformed events to inject before stream event ``event_index``."""
        if not self.enabled:
            return []
        plan = self.plan
        if _unit(plan.seed, "burst", event_index) >= plan.scaled(plan.burst_rate):
            return []
        size = 1 + int(
            _unit(plan.seed, "burst-size", event_index) * plan.burst_max_events
        )
        reason = (
            "oversized_burst" if size > plan.burst_max_events // 2
            else "malformed_event"
        )
        return [
            MalformedEvent(
                minute=minute,
                reason=reason,
                detail=f"chaos burst of {size} at event {event_index}",
            )
            for _ in range(size)
        ]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def _record_breaker_transition(old: str, new: str) -> None:
    """Publish one breaker state change (counter + structured event).

    Module-level on purpose: breakers are dataclasses that pickle into
    replay checkpoints, so they must not hold registry references.
    """
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_serve_breaker_transitions_total",
        "Circuit-breaker state transitions.",
    ).inc(1.0, **{"from": old, "to": new})
    registry.event("breaker_transition", **{"from": old, "to": new})



@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    ``closed`` → normal operation; ``threshold`` consecutive failed
    batches trip it ``open``.  While open, batches fast-fail to the
    fallback chain; after ``cooldown_batches`` of them the breaker goes
    ``half_open`` and the next batch is a trial run against the primary
    model — success closes the breaker (and triggers dead-letter
    replay), failure re-opens it for another cooldown.
    """

    threshold: int = 3
    cooldown_batches: int = 8
    state: str = "closed"
    consecutive_failures: int = 0
    cooldown_left: int = 0
    trips: int = 0
    probes: int = 0

    def record_success(self) -> None:
        """A primary batch scored cleanly while closed."""
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        """A primary batch exhausted its retries while closed."""
        self.consecutive_failures += 1
        if self.state == "closed" and self.consecutive_failures >= self.threshold:
            self.trip()

    def trip(self) -> None:
        """Open the breaker and start the cooldown."""
        _record_breaker_transition(self.state, "open")
        self.state = "open"
        self.cooldown_left = self.cooldown_batches
        self.trips += 1

    def tick(self) -> None:
        """Count one fast-failed batch against the cooldown."""
        if self.state == "open":
            self.cooldown_left -= 1
            if self.cooldown_left <= 0:
                _record_breaker_transition("open", "half_open")
                self.state = "half_open"

    def close(self) -> None:
        """A half-open probe succeeded; resume normal operation."""
        _record_breaker_transition(self.state, "closed")
        self.state = "closed"
        self.consecutive_failures = 0

    def reopen(self) -> None:
        """A half-open probe failed; back to open for another cooldown."""
        _record_breaker_transition(self.state, "open")
        self.state = "open"
        self.cooldown_left = self.cooldown_batches


# ----------------------------------------------------------------------
# Dead-letter queue
# ----------------------------------------------------------------------
@dataclass
class DeadLetter:
    """One quarantined batch or event."""

    #: ``"batch"`` (replayable: carries its queue entries) or ``"event"``.
    kind: str
    #: Typed quarantine reason: ``transient``, ``outage``, ``timeout``,
    #: ``exception``, ``malformed_event``, ``oversized_burst``.
    reason: str
    minute: float
    rows: int
    detail: str = ""
    #: Queue entries ``(enqueue_minute, StreamedRow)`` for batch replays.
    entries: list | None = None
    #: Set when the letter was replayed: which path finally scored it.
    resolution: str = ""

    @property
    def resolved(self) -> bool:
        """Whether the letter has been replayed (events never are)."""
        return bool(self.resolution)

    def stripped(self) -> "DeadLetter":
        """A copy without the row payload, suitable for reports."""
        return replace(self, entries=None)


@dataclass
class DeadLetterQueue:
    """Ordered quarantine of unscorable batches and malformed events."""

    letters: list[DeadLetter] = field(default_factory=list)

    def quarantine_batch(
        self, entries: list, *, reason: str, minute: float, detail: str = ""
    ) -> DeadLetter:
        """Quarantine one drained-but-unscorable batch for later replay."""
        letter = DeadLetter(
            kind="batch",
            reason=reason,
            minute=float(minute),
            rows=len(entries),
            detail=detail,
            entries=list(entries),
        )
        self.letters.append(letter)
        self._record(letter)
        return letter

    def quarantine_event(
        self, *, reason: str, minute: float, detail: str = ""
    ) -> DeadLetter:
        """Quarantine one malformed stream event (not replayable)."""
        letter = DeadLetter(
            kind="event", reason=reason, minute=float(minute), rows=0, detail=detail
        )
        self.letters.append(letter)
        self._record(letter)
        return letter

    def _record(self, letter: DeadLetter) -> None:
        registry = get_registry()
        registry.counter(
            "repro_serve_dead_letters_total",
            "Quarantined batches/events, by kind and reason.",
        ).inc(kind=letter.kind, reason=letter.reason)
        registry.gauge(
            "repro_serve_dlq_depth", "Unreplayed batches in the dead-letter queue."
        ).set(len(self.pending_batches()))

    def pending_batches(self) -> list[DeadLetter]:
        """Quarantined batches not yet replayed, oldest first."""
        return [
            letter
            for letter in self.letters
            if letter.kind == "batch" and not letter.resolved
        ]

    def reasons(self) -> dict[str, int]:
        """Letter count per quarantine reason."""
        summary: dict[str, int] = {}
        for letter in self.letters:
            summary[letter.reason] = summary.get(letter.reason, 0) + 1
        return summary

    def __len__(self) -> int:
        return len(self.letters)


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceConfig:
    """Supervision knobs for the :class:`SupervisedScorer`."""

    #: Total primary attempts per batch (1 = no retry).
    max_attempts: int = 3
    #: First retry waits this long (simulated seconds), doubling after.
    backoff_base_seconds: float = 0.5
    #: Backoff multiplier spread: wait *= 1 + jitter * U[0, 1).
    backoff_jitter: float = 0.5
    #: A scoring attempt stalling past this is a deadline timeout.
    batch_timeout_seconds: float = 30.0
    #: Consecutive failed batches that trip the circuit breaker.
    breaker_threshold: int = 3
    #: Fast-failed batches before the breaker half-opens for a probe.
    breaker_cooldown_batches: int = 8

    def __post_init__(self) -> None:
        check_positive(self.max_attempts, "max_attempts")
        check_positive(self.batch_timeout_seconds, "batch_timeout_seconds")
        check_positive(self.breaker_threshold, "breaker_threshold")
        check_positive(self.breaker_cooldown_batches, "breaker_cooldown_batches")


@dataclass
class ResilienceCounters:
    """Supervision telemetry: where every row ended up, and why."""

    primary_batches: int = 0
    fallback_batches: int = 0
    primary_rows: int = 0
    fallback_rows: int = 0
    #: Rows that passed through the dead-letter queue at some point.
    dead_lettered_batches: int = 0
    dead_lettered_rows: int = 0
    #: Dead-lettered batches/rows later replayed to a scoring path.
    replayed_batches: int = 0
    replayed_rows: int = 0
    #: Malformed/oversized stream events quarantined (never scorable).
    dead_letter_events: int = 0
    injected_events: int = 0
    #: Attempt-level accounting.
    attempts: int = 0
    retries: int = 0
    transient_faults: int = 0
    outage_faults: int = 0
    timeouts: int = 0
    scorer_exceptions: int = 0
    #: Breaker / swap accounting.
    breaker_trips: int = 0
    breaker_probes: int = 0
    swap_failures: int = 0
    #: Simulated wall-clock bookkeeping (chaos stalls and backoff waits).
    simulated_stall_seconds: float = 0.0
    simulated_backoff_seconds: float = 0.0
    registry_load_stall_seconds: float = 0.0
    #: Rows still quarantined when the replay finished (should be 0).
    unresolved_rows: int = 0

    @property
    def rows_scored(self) -> int:
        """Rows that received an alert through any path."""
        return self.primary_rows + self.fallback_rows

    @property
    def availability(self) -> float:
        """Fraction of rows eventually scored (primary or fallback)."""
        denominator = self.rows_scored + self.unresolved_rows
        if denominator == 0:
            return 1.0
        return self.rows_scored / denominator

    @property
    def fallback_share(self) -> float:
        """Fraction of scored rows handled by a fallback predictor."""
        if self.rows_scored == 0:
            return 0.0
        return self.fallback_rows / self.rows_scored

    @property
    def first_pass_fraction(self) -> float:
        """Fraction of scored rows that never touched the DLQ."""
        if self.rows_scored == 0:
            return 1.0
        return (self.rows_scored - self.replayed_rows) / self.rows_scored


class AllNegativeFallback:
    """Last-resort predictor: never alerts, never fails."""

    name = "all_negative"

    def decision_scores(self, features: FeatureMatrix) -> np.ndarray:
        """Zero ranking score for every sample."""
        return np.zeros(features.num_samples, dtype=float)


class _InjectedFault(RuntimeError):
    """Internal carrier for a chaos-injected scoring failure."""


class SupervisedScorer(MicroBatchScorer):
    """A micro-batch scorer wrapped in retry / breaker / DLQ supervision.

    ``fallbacks`` is an ordered chain of ``(name, predictor)`` pairs
    tried when the primary model is unavailable; each predictor needs
    only a ``decision_scores(FeatureMatrix)`` method (hard 0/1 scores
    are thresholded at 0.5).  The chain should end with a predictor
    that cannot fail (:class:`AllNegativeFallback`).
    """

    def __init__(
        self,
        predictor: TwoStagePredictor,
        schema: FeatureSchema,
        config: ScorerConfig | None = None,
        *,
        model_version: int = 1,
        resilience: ResilienceConfig | None = None,
        chaos: ChaosInjector | None = None,
        fallbacks: list[tuple[str, object]] | None = None,
    ) -> None:
        super().__init__(predictor, schema, config, model_version=model_version)
        self.rconfig = resilience or ResilienceConfig()
        self.chaos = chaos
        self.fallbacks = (
            list(fallbacks)
            if fallbacks is not None
            else [("all_negative", AllNegativeFallback())]
        )
        self.resilience = ResilienceCounters()
        self.breaker = CircuitBreaker(
            threshold=self.rconfig.breaker_threshold,
            cooldown_batches=self.rconfig.breaker_cooldown_batches,
        )
        self.dlq = DeadLetterQueue()
        #: Monotone scoring-attempt counter; keys every chaos draw.
        self.attempt_seq = 0
        self._recovered_alerts: list[Alert] = []
        self._last_failure: tuple[str, str] = ("exception", "")

    # ------------------------------------------------------------------
    def _flush_batch(self, scored_minute: float) -> list[Alert]:
        alerts = super()._flush_batch(scored_minute)
        if self._recovered_alerts:
            alerts.extend(self._recovered_alerts)
            self._recovered_alerts = []
        return alerts

    def _score_entries(self, entries, scored_minute: float):
        res = self.resilience
        breaker = self.breaker
        if breaker.state == "open":
            breaker.tick()
            if breaker.state == "open":
                return self._fallback(entries)
        if breaker.state == "half_open":
            res.breaker_probes += 1
            breaker.probes += 1
            outcome = self._attempt_primary(entries, scored_minute, max_attempts=1)
            if outcome is None:
                breaker.reopen()
                return self._fallback(entries)
            breaker.close()
            self._recovered_alerts.extend(self._replay_dead_letters(scored_minute))
            return outcome
        outcome = self._attempt_primary(
            entries, scored_minute, max_attempts=self.rconfig.max_attempts
        )
        if outcome is not None:
            breaker.record_success()
            return outcome
        breaker.record_failure()
        if breaker.state == "open" and breaker.trips > res.breaker_trips:
            res.breaker_trips = breaker.trips
        kind, detail = self._last_failure
        self.dlq.quarantine_batch(
            entries, reason=kind, minute=scored_minute, detail=detail
        )
        res.dead_lettered_batches += 1
        res.dead_lettered_rows += len(entries)
        return None

    # ------------------------------------------------------------------
    def _attempt_primary(self, entries, scored_minute: float, *, max_attempts: int):
        """Try the primary model with bounded retry + backoff + timeout."""
        res = self.resilience
        rows = [row for _, row in entries]
        matrix = rows_to_matrix(rows, self._schema)
        for attempt in range(max_attempts):
            seq = self.attempt_seq
            self.attempt_seq += 1
            res.attempts += 1
            try:
                stall = (
                    self.chaos.attempt_stall_seconds(seq)
                    if self.chaos is not None
                    else 0.0
                )
                if stall > 0.0:
                    res.simulated_stall_seconds += stall
                if stall > self.rconfig.batch_timeout_seconds:
                    res.timeouts += 1
                    raise _InjectedFault(
                        "timeout",
                        f"batch deadline exceeded ({stall:.1f}s simulated "
                        f"> {self.rconfig.batch_timeout_seconds:.1f}s)",
                    )
                fault = (
                    self.chaos.attempt_fault(scored_minute, seq)
                    if self.chaos is not None
                    else None
                )
                if fault is not None:
                    kind, detail = fault
                    if kind == "outage":
                        res.outage_faults += 1
                    else:
                        res.transient_faults += 1
                    raise _InjectedFault(kind, detail)
                started = time.perf_counter()
                scores = self._predictor.decision_scores(matrix)
                self.counters.scoring_seconds += time.perf_counter() - started
                predicted = (scores >= self._predictor.model.threshold).astype(int)
            except _InjectedFault as exc:
                self._last_failure = (exc.args[0], exc.args[1])
            except Exception as exc:  # genuine scorer bug / bad model
                res.scorer_exceptions += 1
                self._last_failure = ("exception", f"{type(exc).__name__}: {exc}")
            else:
                res.primary_batches += 1
                res.primary_rows += len(entries)
                return scores, predicted, self.model_version, "primary"
            if attempt + 1 < max_attempts:
                res.retries += 1
                get_registry().counter(
                    "repro_serve_retries_total", "Primary scoring retries."
                ).inc()
                jitter = (
                    self.chaos.backoff_jitter(seq) if self.chaos is not None else 0.0
                )
                res.simulated_backoff_seconds += (
                    self.rconfig.backoff_base_seconds
                    * 2.0**attempt
                    * (1.0 + self.rconfig.backoff_jitter * jitter)
                )
        return None

    def _fallback(self, entries):
        """Score with the fallback chain; the last link cannot fail."""
        res = self.resilience
        rows = [row for _, row in entries]
        matrix = rows_to_matrix(rows, self._schema)
        for name, predictor in self.fallbacks:
            try:
                scores = np.asarray(predictor.decision_scores(matrix), dtype=float)
                predicted = (scores >= 0.5).astype(int)
            except Exception:
                continue
            res.fallback_batches += 1
            res.fallback_rows += len(entries)
            version = (
                LAST_RESORT_MODEL_VERSION
                if isinstance(predictor, AllNegativeFallback)
                else FALLBACK_MODEL_VERSION
            )
            return scores, predicted, version, f"fallback:{name}"
        raise ValidationError(
            "fallback chain exhausted; register AllNegativeFallback last"
        )

    # ------------------------------------------------------------------
    def _replay_dead_letters(self, scored_minute: float) -> list[Alert]:
        """Re-score quarantined batches (one primary try, then fallback)."""
        alerts: list[Alert] = []
        res = self.resilience
        for letter in self.dlq.pending_batches():
            entries = letter.entries
            outcome = self._attempt_primary(entries, scored_minute, max_attempts=1)
            if outcome is None:
                outcome = self._fallback(entries)
            scores, predicted, version, source = outcome
            letter.resolution = source
            res.replayed_batches += 1
            res.replayed_rows += len(entries)
            registry = get_registry()
            registry.counter(
                "repro_serve_replayed_rows_total",
                "Rows re-scored from the dead-letter queue, by resolution.",
            ).inc(len(entries), resolution=source)
            registry.event(
                "dead_letter_replayed",
                minute=scored_minute,
                rows=len(entries),
                resolution=source,
            )
            alerts.extend(
                self._emit(entries, scores, predicted, scored_minute, version, source)
            )
        if res.replayed_batches:
            get_registry().gauge(
                "repro_serve_dlq_depth",
                "Unreplayed batches in the dead-letter queue.",
            ).set(len(self.dlq.pending_batches()))
        return alerts

    def finalize(self, now_minute: float) -> list[Alert]:
        """End of stream: drain the DLQ so no row is left unscored."""
        alerts = self._replay_dead_letters(now_minute)
        if self._recovered_alerts:
            alerts.extend(self._recovered_alerts)
            self._recovered_alerts = []
        self.resilience.unresolved_rows = sum(
            letter.rows for letter in self.dlq.pending_batches()
        )
        return alerts
