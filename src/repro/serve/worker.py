"""The reusable per-event scorer loop shared by replay and the gateway.

:func:`repro.serve.replay.serve_replay` and the fleet gateway
(:mod:`repro.gateway`) drive exactly the same core: a
:class:`~repro.serve.engine.StreamingFeatureEngine` feeding a
:class:`~repro.serve.resilience.SupervisedScorer`, with chaos bursts
injected ahead of real events, deadline polling against the stream
clock, label bookkeeping from :class:`~repro.serve.events.JobResolved`,
and malformed-event quarantine into the dead-letter queue.

:class:`ScorerWorker` is that loop body, extracted verbatim from
``replay.py`` so both callers stay bit-identical: one worker drives one
scorer over one ordered event stream (the whole trace for replay; one
consistent-hash shard's slice for the gateway).  The worker pickles
cleanly — it *is* the per-stream state a replay checkpoint commits.

The exact per-event operation order is part of the digest contract:

1. chaos bursts for this event index (malformed events -> engine ->
   dead-letter queue);
2. event counters advance;
3. deadline poll against the event's minute;
4. the caller's ``between`` hook (replay: periodic retrain; gateway:
   rolling hot-swap) — after the poll, before the event applies;
5. label bookkeeping for :class:`JobResolved`;
6. the event itself through the engine (quarantined when malformed);
7. emitted rows inside the scoring window submit to the scorer.
"""

from __future__ import annotations

import hashlib

from repro.serve.engine import StreamedRow, StreamingFeatureEngine
from repro.serve.events import JobResolved
from repro.serve.resilience import ChaosInjector, SupervisedScorer
from repro.serve.scorer import Alert
from repro.utils.errors import ValidationError

__all__ = ["ScorerWorker", "update_alert_digest", "scored_alert_digest"]


def update_alert_digest(hasher, alerts: list[Alert]) -> None:
    """Feed the canonical scored-alert encoding into ``hasher``.

    This is the byte encoding :meth:`ReplayReport.digest` has always
    used for its alert section; the gateway parity gate hashes exactly
    the same bytes, so the two digests are comparable bit for bit.
    Alerts sort by (run, node, end minute) — unique per sample — so the
    encoding is independent of flush timing and shard interleaving.
    """
    for alert in sorted(alerts, key=lambda a: (a.run_idx, a.node_id, a.end_minute)):
        hasher.update(
            f"{alert.run_idx},{alert.node_id},{alert.job_id},{alert.app_id},"
            f"{alert.end_minute:.12g},{alert.scored_minute:.12g},"
            f"{alert.score:.12g},{alert.predicted};".encode()
        )


def scored_alert_digest(alerts: list[Alert]) -> str:
    """SHA-256 over the canonical scored-alert encoding alone."""
    hasher = hashlib.sha256()
    update_alert_digest(hasher, alerts)
    return hasher.hexdigest()


class ScorerWorker:
    """Drives one supervised scorer over one ordered event stream.

    Parameters
    ----------
    engine:
        The streaming feature engine (owns the history state).
    scorer:
        The supervised micro-batch scorer (owns retry/breaker/DLQ).
    window:
        ``(lo, hi)``: only rows with ``lo <= start_minute < hi`` are
        submitted for scoring (the replay's test window).  ``None``
        scores every emitted row.
    injector:
        Optional chaos injector; its malformed-event bursts are keyed by
        this worker's local event counter.
    """

    def __init__(
        self,
        engine: StreamingFeatureEngine,
        scorer: SupervisedScorer,
        *,
        window: tuple[float, float] | None = None,
        injector: ChaosInjector | None = None,
    ) -> None:
        self.engine = engine
        self.scorer = scorer
        self.window = None if window is None else (float(window[0]), float(window[1]))
        self.injector = injector
        #: Resolved ground-truth labels keyed by (job_id, node_id).
        self.labels: dict[tuple[int, int], int] = {}
        #: Every row the engine emitted, in emission order (retrain food).
        self.history_rows: list[StreamedRow] = []
        #: Ordered events this worker has processed (and the burst key).
        self.num_events = 0
        #: Real events the engine refused (quarantined to the DLQ).
        self.events_quarantined = 0
        self.last_minute = 0.0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Rows waiting in the scorer's micro-batch queue."""
        return self.scorer.queue_depth

    def kernel_stats(self) -> dict:
        """Scoring-kernel summary of the currently-serving model."""
        return self.scorer.predictor.kernel_stats()

    def handle_event(self, event, *, between=None) -> list[Alert]:
        """Apply one stream event; returns any alerts it flushed.

        ``between`` is called with the event's minute after the deadline
        poll and before the event applies — the slot where replay runs
        its periodic retrain and the gateway applies rolling hot-swaps,
        so a model change can never split a single event's rows.
        """
        alerts: list[Alert] = []
        if self.injector is not None:
            for bad in self.injector.burst(self.num_events, event.minute):
                self.scorer.resilience.injected_events += 1
                try:
                    self.engine.process(bad)
                except ValidationError as exc:
                    self.scorer.dlq.quarantine_event(
                        reason=bad.reason, minute=bad.minute, detail=str(exc)
                    )
                    self.scorer.resilience.dead_letter_events += 1
        self.num_events += 1
        self.last_minute = event.minute
        alerts.extend(self.scorer.poll(event.minute))
        if between is not None:
            between(event.minute)
        if isinstance(event, JobResolved):
            for node, count in zip(event.node_ids, event.counts):
                self.labels[(event.job_id, int(node))] = int(count)
        try:
            rows = self.engine.process(event)
        except ValidationError as exc:
            self.scorer.dlq.quarantine_event(
                reason="malformed_event", minute=event.minute, detail=str(exc)
            )
            self.scorer.resilience.dead_letter_events += 1
            self.events_quarantined += 1
            rows = []
        if rows:
            self.history_rows.extend(rows)
            if self.window is None:
                scorable = rows
            else:
                lo, hi = self.window
                scorable = [row for row in rows if lo <= row.start_minute < hi]
            if scorable:
                alerts.extend(self.scorer.submit(scorable, event.minute))
        return alerts

    def finish(self) -> list[Alert]:
        """End of stream: flush the queue and drain the dead letters."""
        alerts = list(self.scorer.flush())
        alerts.extend(self.scorer.finalize(self.last_minute))
        return alerts
