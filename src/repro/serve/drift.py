"""Streaming drift detection and the guarded-retrain governor.

Three detectors watch the online scoring path, all windowed and all
cheap enough to sit in the event loop:

* **Feature-distribution PSI** — per-feature Population Stability Index
  between a frozen reference window (the first ``reference_rows`` rows
  the stream emits) and a rolling current window, over
  quantile-derived histogram bins.  The statistic is the mean of the
  top-``psi_top_k`` per-feature PSI values, which keeps a genuine
  multi-feature shift visible without letting one noisy column alarm
  the fleet.
* **Score-calibration shift** — the same PSI machinery applied to the
  1-D distribution of decision scores: a model whose score histogram
  walks away from its reference is mis-calibrated even if accuracy has
  not (yet) moved.
* **Rolling-F1 decay** — precision/recall/F1 over a deque of the last
  ``f1_window`` resolved (prediction, label) pairs, compared against
  the best rolling F1 seen since the last model swap.  This is the
  ground-truth detector; it lags by label-resolution latency but never
  false-alarms on benign covariate shift.

:class:`RetrainGovernor` turns detector state into *guarded* lifecycle
actions: drift-triggered retrains (with cooldown), holdout validation
before a candidate is published (time-ordered tail holdout, so the
candidate is judged on the newest regime), and post-swap monitoring
that rolls back to the last-good registry version when the freshly
swapped model's rolling F1 collapses (the poisoned/degenerate-refit
case that holdout validation alone cannot catch: a consistently
poisoned training set validates cleanly against its own holdout).

The governor holds no registry and no metrics-registry reference — it
pickles into replay checkpoints — and every observability emission goes
through :func:`record_drift_metrics` / :func:`record_retrain_outcome`,
which look the obs registry up lazily per call (digest-neutral by the
``repro.obs`` contract).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.twostage import TwoStagePredictor
from repro.features.builder import FeatureMatrix
from repro.obs import get_registry
from repro.utils.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "DriftConfig",
    "WindowedPSI",
    "RollingF1Monitor",
    "DriftMonitor",
    "HoldoutReport",
    "RetrainGovernor",
    "fit_validated_candidate",
    "positive_f1",
    "record_drift_metrics",
    "record_retrain_outcome",
]

_EPS = 1e-4


@dataclass(frozen=True)
class DriftConfig:
    """Detector thresholds and governor policy knobs."""

    #: Rows frozen as the feature/score reference distribution.
    reference_rows: int = 512
    #: Rolling current-window size (rows) for the PSI detectors.
    window_rows: int = 512
    #: Histogram bins per feature (quantile edges from the reference).
    bins: int = 10
    #: Mean of the top-k per-feature PSI values forms the statistic.
    psi_top_k: int = 5
    #: Feature-distribution PSI trigger threshold.
    psi_threshold: float = 0.25
    #: Score-calibration PSI trigger threshold.
    calibration_threshold: float = 0.25
    #: Resolved (prediction, label) pairs in the rolling-F1 window.
    f1_window: int = 200
    #: Rolling-F1 decay (best-since-swap minus current) trigger threshold.
    f1_drop: float = 0.15
    #: Minimum resolved labels before the F1 detector may fire.
    min_labels: int = 60
    #: Governor polling cadence (event-time minutes between checks).
    check_every_minutes: float = 360.0
    #: Minimum event-time minutes between drift-triggered retrains.
    cooldown_minutes: float = 2880.0
    #: Fraction of resolved rows held out (time-ordered tail) to
    #: validate a retrain candidate before it is published.
    holdout_fraction: float = 0.25
    #: Floor on both the holdout size and the remaining training size.
    min_holdout: int = 40
    #: A candidate is published iff its holdout F1 is at least
    #: ``serving holdout F1 - validation_margin``.
    validation_margin: float = 0.05
    #: Resolved labels after a swap before rollback may be considered.
    postswap_min_labels: int = 80
    #: Roll back when post-swap rolling F1 falls this far below the
    #: candidate's validated holdout F1.
    postswap_drop: float = 0.25
    #: ... and at least this far below the rolling F1 the *previous*
    #: model held at swap time (a small holdout is optimistic; a swap
    #: that merely fails to beat an inflated holdout mark is not a
    #: poisoning).
    postswap_margin: float = 0.10

    def __post_init__(self) -> None:
        check_positive(self.reference_rows, "reference_rows")
        check_positive(self.window_rows, "window_rows")
        check_positive(self.bins, "bins")
        check_positive(self.f1_window, "f1_window")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValidationError("holdout_fraction must be in (0, 1)")


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------
def _psi(reference: np.ndarray, current: np.ndarray) -> float:
    """PSI between two aligned probability vectors (epsilon-smoothed)."""
    p = np.clip(reference, _EPS, None)
    q = np.clip(current, _EPS, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


class WindowedPSI:
    """PSI of a rolling window against a frozen reference distribution.

    Works on vectors (feature rows) and scalars (scores) alike: the
    first ``reference_rows`` observations freeze per-column quantile bin
    edges and the reference histogram; afterwards observations fill a
    rolling window and :meth:`statistic` compares histograms.
    """

    def __init__(self, reference_rows: int, window_rows: int, bins: int, top_k: int) -> None:
        self._reference_rows = int(reference_rows)
        self._bins = int(bins)
        self._top_k = max(1, int(top_k))
        self._pending: list[np.ndarray] = []
        self._edges: np.ndarray | None = None  # (n_cols, bins - 1)
        self._reference: np.ndarray | None = None  # (n_cols, bins) probs
        self._window: deque = deque(maxlen=int(window_rows))
        self._cached: tuple[int, float] | None = None
        self._version = 0

    @property
    def ready(self) -> bool:
        """Reference frozen and the rolling window at least half full."""
        return (
            self._reference is not None
            and len(self._window) * 2 >= self._window.maxlen
        )

    def observe(self, values: np.ndarray | float) -> None:
        """Feed one observation (feature vector or scalar score)."""
        row = np.atleast_1d(np.asarray(values, dtype=float))
        if self._reference is None:
            self._pending.append(row)
            if len(self._pending) >= self._reference_rows:
                self._freeze()
            return
        self._window.append(row)
        self._version += 1

    def _freeze(self) -> None:
        block = np.stack(self._pending)  # (rows, cols)
        self._pending = []
        quantiles = np.linspace(0.0, 1.0, self._bins + 1)[1:-1]
        self._edges = np.quantile(block, quantiles, axis=0).T  # (cols, bins-1)
        self._reference = self._histogram(block)

    def _histogram(self, block: np.ndarray) -> np.ndarray:
        n_cols = block.shape[1]
        hist = np.empty((n_cols, self._bins))
        for col in range(n_cols):
            idx = np.searchsorted(self._edges[col], block[:, col], side="right")
            hist[col] = np.bincount(idx, minlength=self._bins) / block.shape[0]
        return hist

    def statistic(self) -> float:
        """Mean of the top-k per-column PSI values (0.0 until ready)."""
        if not self.ready:
            return 0.0
        if self._cached is not None and self._cached[0] == self._version:
            return self._cached[1]
        current = self._histogram(np.stack(self._window))
        per_col = np.asarray(
            [_psi(self._reference[c], current[c]) for c in range(current.shape[0])]
        )
        top = np.sort(per_col)[::-1][: self._top_k]
        value = float(top.mean())
        self._cached = (self._version, value)
        return value


class RollingF1Monitor:
    """F1 over the last N resolved (prediction, label) pairs."""

    def __init__(self, window: int, min_labels: int) -> None:
        self._pairs: deque = deque(maxlen=int(window))
        self._min_labels = int(min_labels)
        self.best_f1 = 0.0
        self.total_observed = 0
        #: Pairs observed since the last :meth:`reset` (model swap).
        self.since_reset = 0

    def observe(self, predicted: int, actual: int) -> None:
        """Record one resolved label."""
        self._pairs.append((int(bool(predicted)), int(bool(actual))))
        self.total_observed += 1
        self.since_reset += 1
        if self.ready:
            self.best_f1 = max(self.best_f1, self.f1())

    @property
    def ready(self) -> bool:
        """Enough labels for the statistic to mean anything."""
        return len(self._pairs) >= self._min_labels

    def f1(self) -> float:
        """F1 of the positive class over the window."""
        if not self._pairs:
            return 0.0
        tp = sum(1 for p, a in self._pairs if p and a)
        fp = sum(1 for p, a in self._pairs if p and not a)
        fn = sum(1 for p, a in self._pairs if not p and a)
        if 2 * tp + fp + fn == 0:
            return 0.0
        return 2.0 * tp / (2 * tp + fp + fn)

    def decay(self) -> float:
        """Best-since-reset F1 minus current F1 (0.0 until ready)."""
        if not self.ready:
            return 0.0
        return max(0.0, self.best_f1 - self.f1())

    def reset(self) -> None:
        """Forget the window and the best mark (call on model swap)."""
        self._pairs.clear()
        self.best_f1 = 0.0
        self.since_reset = 0


class DriftMonitor:
    """Aggregates the three detectors and the label-matching plumbing.

    The caller feeds emitted rows (:meth:`observe_row`), scored alerts
    (:meth:`observe_alert`), and the growing resolved-label map
    (:meth:`match_labels`); the monitor pairs predictions with their
    ground truth as it arrives.  Pickles into replay checkpoints.
    """

    def __init__(self, config: DriftConfig) -> None:
        self.config = config
        self.features = WindowedPSI(
            config.reference_rows, config.window_rows, config.bins, config.psi_top_k
        )
        self.scores = WindowedPSI(
            config.reference_rows, config.window_rows, config.bins, top_k=1
        )
        self.f1 = RollingF1Monitor(config.f1_window, config.min_labels)
        #: (job_id, node_id) -> predicted, awaiting label resolution.
        self._pending: dict[tuple[int, int], int] = {}
        self._consumed: set[tuple[int, int]] = set()

    def observe_row(self, row) -> None:
        """Feed one emitted feature row into the PSI detector."""
        self.features.observe(row.features)

    def observe_alert(self, alert) -> None:
        """Feed one scored alert (score + pending prediction)."""
        self.scores.observe(alert.score)
        key = (alert.job_id, alert.node_id)
        if key not in self._consumed:
            self._pending[key] = alert.predicted

    def match_labels(self, labels: dict[tuple[int, int], int]) -> None:
        """Resolve pending predictions against the ground-truth map."""
        if not self._pending:
            return
        matched = [key for key in self._pending if key in labels]
        for key in matched:
            self.f1.observe(self._pending.pop(key), labels[key] > 0)
            self._consumed.add(key)

    def state(self) -> dict[str, float]:
        """Current detector statistics (all 0.0 while warming up)."""
        return {
            "feature_psi": self.features.statistic(),
            "score_psi": self.scores.statistic(),
            "rolling_f1": self.f1.f1() if self.f1.ready else 0.0,
            "f1_decay": self.f1.decay(),
            "labels_observed": float(self.f1.total_observed),
        }

    def drift_reason(self) -> str | None:
        """Name of the first detector over threshold, or ``None``."""
        cfg = self.config
        if self.features.statistic() > cfg.psi_threshold:
            return "feature_psi"
        if self.scores.statistic() > cfg.calibration_threshold:
            return "score_psi"
        if self.f1.decay() > cfg.f1_drop:
            return "f1_decay"
        return None

    def reset_after_swap(self) -> None:
        """Re-baseline every detector for the newly swapped model.

        The PSI references re-freeze on the post-swap stream (the
        distribution the new model was trained for — otherwise an
        already-handled shift re-triggers on every cooldown forever),
        and predictions still pending from the *old* model are dropped:
        their labels resolve after the swap and would otherwise charge
        the old model's mistakes to the new one's probation window.
        """
        cfg = self.config
        self.f1.reset()
        self._pending.clear()
        self.features = WindowedPSI(
            cfg.reference_rows, cfg.window_rows, cfg.bins, cfg.psi_top_k
        )
        self.scores = WindowedPSI(
            cfg.reference_rows, cfg.window_rows, cfg.bins, top_k=1
        )


# ----------------------------------------------------------------------
# Guarded retrain
# ----------------------------------------------------------------------
@dataclass
class HoldoutReport:
    """Outcome of one holdout validation."""

    accepted: bool
    reason: str
    candidate_f1: float = 0.0
    serving_f1: float = 0.0
    holdout_rows: int = 0
    train_rows: int = 0


def positive_f1(predictor: TwoStagePredictor, matrix: FeatureMatrix) -> float:
    """F1 of the SBE class for ``predictor`` on ``matrix``."""
    scores = predictor.decision_scores(matrix)
    predicted = scores >= predictor.model.threshold
    actual = matrix.y.astype(bool)
    tp = int(np.sum(predicted & actual))
    fp = int(np.sum(predicted & ~actual))
    fn = int(np.sum(~predicted & actual))
    if 2 * tp + fp + fn == 0:
        return 0.0
    return 2.0 * tp / (2 * tp + fp + fn)


def fit_validated_candidate(
    *,
    model: str,
    rows,
    counts: np.ndarray,
    schema,
    serving: TwoStagePredictor,
    config: DriftConfig,
    random_state: int | None,
    fast: bool,
) -> tuple[TwoStagePredictor | None, HoldoutReport]:
    """Fit a candidate on the head of ``rows`` and judge it on the tail.

    Rows must be in emission (time) order; the holdout is the *newest*
    tail, so the candidate is validated against the regime it will
    actually serve.  Returns ``(candidate, report)`` — candidate is
    ``None`` whenever the report is not accepted.
    """
    from repro.serve.engine import rows_to_matrix

    n = len(rows)
    holdout = max(config.min_holdout, int(round(config.holdout_fraction * n)))
    if n - holdout < config.min_holdout:
        return None, HoldoutReport(
            accepted=False,
            reason=f"too few resolved rows ({n}) for holdout validation",
        )
    train_matrix = rows_to_matrix(
        rows[: n - holdout], schema, sbe_counts=counts[: n - holdout]
    )
    holdout_matrix = rows_to_matrix(
        rows[n - holdout :], schema, sbe_counts=counts[n - holdout :]
    )
    candidate = TwoStagePredictor(model, random_state=random_state, fast=fast)
    try:
        candidate.fit(train_matrix)
    except ValidationError as exc:
        return None, HoldoutReport(
            accepted=False, reason=f"candidate fit failed: {exc}"
        )
    candidate_f1 = positive_f1(candidate, holdout_matrix)
    serving_f1 = positive_f1(serving, holdout_matrix)
    accepted = candidate_f1 >= serving_f1 - config.validation_margin
    reason = (
        "accepted"
        if accepted
        else (
            f"holdout F1 {candidate_f1:.4f} below serving "
            f"{serving_f1:.4f} - margin {config.validation_margin:g}"
        )
    )
    return (candidate if accepted else None), HoldoutReport(
        accepted=accepted,
        reason=reason,
        candidate_f1=candidate_f1,
        serving_f1=serving_f1,
        holdout_rows=holdout,
        train_rows=n - holdout,
    )


@dataclass
class RetrainGovernor:
    """Policy state machine over the drift monitor.

    States: *steady* (watching) → *cooldown* (just retrained) →
    *post-swap watch* (new model under ground-truth probation, rollback
    armed while ``last_good`` is set).  Holds the last-good predictor
    so a rollback needs no registry read; holds **no** registry or
    metrics handles (it pickles into checkpoints).
    """

    config: DriftConfig
    #: Event-time minute of the last governor poll.
    last_check: float | None = None
    #: Event-time minute of the last drift-triggered retrain.
    last_trigger: float | None = None
    #: ``(version, predictor, holdout_f1)`` of the rollback target.
    last_good: tuple | None = None
    #: Validated holdout F1 of the currently serving (swapped) model.
    serving_holdout_f1: float | None = None
    #: Rolling F1 the previous model held at swap time (probation floor).
    pre_swap_rolling_f1: float | None = None
    triggers: list = field(default_factory=list)
    #: ``(minute, version)`` of every published swap under governance.
    swaps: list = field(default_factory=list)
    #: ``(minute, version)`` of every automatic rollback.
    rollback_events: list = field(default_factory=list)
    retrains_drift: int = 0
    retrains_rejected: int = 0
    rollbacks: int = 0

    def should_check(self, now_minute: float) -> bool:
        """Throttle detector polling to ``check_every_minutes``."""
        if self.last_check is None:
            self.last_check = now_minute
            return True
        if now_minute - self.last_check >= self.config.check_every_minutes:
            self.last_check = now_minute
            return True
        return False

    def drift_trigger(self, now_minute: float, monitor: DriftMonitor) -> str | None:
        """A detector over threshold, outside the cooldown window."""
        if (
            self.last_trigger is not None
            and now_minute - self.last_trigger < self.config.cooldown_minutes
        ):
            return None
        reason = monitor.drift_reason()
        if reason is not None:
            self.last_trigger = now_minute
            self.triggers.append((float(now_minute), reason))
        return reason

    def record_swap(
        self,
        *,
        version: int,
        previous_version: int,
        previous_predictor: TwoStagePredictor,
        holdout_f1: float,
        previous_holdout_f1: float | None,
        pre_swap_rolling_f1: float | None = None,
        at_minute: float | None = None,
    ) -> None:
        """A validated candidate went live; arm post-swap probation."""
        self.last_good = (
            int(previous_version),
            previous_predictor,
            previous_holdout_f1,
        )
        self.serving_holdout_f1 = float(holdout_f1)
        self.pre_swap_rolling_f1 = pre_swap_rolling_f1
        if at_minute is not None:
            self.swaps.append((float(at_minute), int(version)))

    def should_rollback(self, monitor: DriftMonitor) -> bool:
        """Post-swap rolling F1 collapsed below the validated mark.

        Two conditions, both required: the new model must fall well
        below its own validated holdout F1, *and* well below the rolling
        F1 the previous model was actually delivering (when known) — a
        30-row holdout is optimistic, and missing an inflated mark alone
        must not un-ship a healthy model.
        """
        if self.last_good is None or self.serving_holdout_f1 is None:
            return False
        if monitor.f1.since_reset < self.config.postswap_min_labels:
            return False
        if not monitor.f1.ready:
            return False
        current = monitor.f1.f1()
        if current >= self.serving_holdout_f1 - self.config.postswap_drop:
            return False
        if self.pre_swap_rolling_f1 is not None:
            return current < self.pre_swap_rolling_f1 - self.config.postswap_margin
        return True

    def record_rollback(
        self, at_minute: float | None = None
    ) -> tuple[int, TwoStagePredictor]:
        """Consume the rollback target (disarms further rollbacks)."""
        version, predictor, previous_f1 = self.last_good
        self.last_good = None
        self.serving_holdout_f1 = previous_f1
        self.pre_swap_rolling_f1 = None
        self.rollbacks += 1
        if at_minute is not None:
            self.rollback_events.append((float(at_minute), int(version)))
        return int(version), predictor


# ----------------------------------------------------------------------
# Observability (lazy registry lookups; nothing here is pickled)
# ----------------------------------------------------------------------
def record_drift_metrics(
    monitor: DriftMonitor, *, active_version: int | None = None, **labels
) -> None:
    """Publish detector gauges (and the active-model-version gauge)."""
    registry = get_registry()
    if not registry.enabled:
        return
    gauge = registry.gauge(
        "repro_serve_drift_statistic",
        "Current drift-detector statistics, by detector.",
    )
    state = monitor.state()
    for detector in ("feature_psi", "score_psi", "f1_decay", "rolling_f1"):
        gauge.set(state[detector], detector=detector, **labels)
    if active_version is not None:
        registry.gauge(
            "repro_serve_active_model_version",
            "Registry version of the model currently serving.",
        ).set(int(active_version), **labels)


def record_retrain_outcome(outcome: str, *, trigger: str = "periodic", **labels) -> None:
    """Count one retrain attempt by outcome and trigger."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_serve_retrain_total",
        "Retrain attempts, by outcome (published/rejected/failed/skipped) "
        "and trigger (periodic/drift).",
    ).inc(outcome=outcome, trigger=trigger, **labels)


def record_rollback(**labels) -> None:
    """Count one automatic registry rollback."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_serve_rollback_total",
        "Automatic rollbacks to the last-good registry version.",
    ).inc(**labels)
