"""Telemetry event model for the online serving path.

An online collector sees the machine as a time-ordered stream: apruns
start, apruns complete (delivering the out-of-band sampler's run
statistics), and batch jobs resolve their nvidia-smi SBE deltas when the
last aprun finishes.  The streaming feature engine consumes exactly this
stream.

:func:`iter_trace_events` reconstructs the stream from a recorded
:class:`~repro.telemetry.trace.Trace` so a saved (or freshly simulated,
or fault-injected-then-sanitized) trace can be replayed through the
online path.  Ordering rules mirror the batch semantics bit-for-bit:

* events are sorted by minute;
* at equal minutes, run *starts* are delivered before completions and
  SBE observations — the batch history windows end-exclusive at the run
  start (``side="left"``), so an SBE stamped at exactly the start minute
  must not be visible to that run;
* remaining ties keep samples-table order (stable sort), which keeps the
  stream deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.trace import SAMPLE_TELEMETRY_COLUMNS, Trace

__all__ = [
    "RunStarted",
    "RunCompleted",
    "SbeObserved",
    "JobResolved",
    "ROW_COLUMNS",
    "iter_trace_events",
]

#: Per-row payload columns carried by :class:`RunCompleted`, in order.
#: Deliberately excludes ``sbe_count``: the label is not observable at
#: run completion; it arrives later via :class:`SbeObserved` /
#: :class:`JobResolved`.
ROW_COLUMNS: tuple[str, ...] = (
    "run_idx",
    "job_id",
    "node_id",
    "app_id",
    "prev_app_id",
    "start_minute",
    "end_minute",
    "duration_minutes",
    "n_nodes",
    "gpu_core_hours",
    "gpu_util",
    "max_mem_gb",
    "agg_mem_gb",
) + SAMPLE_TELEMETRY_COLUMNS


@dataclass(frozen=True)
class RunStarted:
    """An aprun was placed on the machine.

    Carries the per-sample-row node/app/start arrays (one entry per
    surviving samples-table row of the run) because the history features
    are evaluated at start time, row by row.
    """

    minute: float
    run_idx: int
    node_ids: np.ndarray
    app_ids: np.ndarray
    start_minutes: np.ndarray


@dataclass(frozen=True)
class RunCompleted:
    """An aprun finished; the sampler delivered its run statistics.

    ``rows`` maps each :data:`ROW_COLUMNS` name to a per-row array.
    """

    minute: float
    run_idx: int
    rows: dict[str, np.ndarray]


@dataclass(frozen=True)
class SbeObserved:
    """One resolved per-(job, node) SBE event (count > 0).

    Stamped at the last end minute of that (job, node) pair — the moment
    the batch job's nvidia-smi delta is attributed, i.e. the moment the
    count becomes observable.  These are exactly the events the batch
    :func:`~repro.features.history.dedupe_job_events` produces.
    """

    minute: float
    job_id: int
    node_id: int
    app_id: int
    count: int


@dataclass(frozen=True)
class JobResolved:
    """A batch job's SBE deltas are fully resolved (labels available).

    Carries counts for *every* node of the job, zeros included, so the
    serving layer can close out ground-truth labels for evaluation and
    periodic retraining.  The feature engine ignores this event; its
    history state is driven by :class:`SbeObserved` alone.
    """

    minute: float
    job_id: int
    node_ids: np.ndarray
    counts: np.ndarray


# Delivery order at equal minutes (see module docstring).
_PHASE = {RunStarted: 0, RunCompleted: 1, SbeObserved: 2, JobResolved: 3}


def event_phase(event) -> int:
    """Tie-break rank of an event at its minute (starts first)."""
    return _PHASE[type(event)]


def iter_trace_events(trace: Trace):
    """Yield the trace's telemetry events in delivery order.

    The reconstruction matches the batch feature builder's view of the
    same trace: per-run rows keep samples-table order, and SBE events are
    deduped per (job, node) with last-end-minute attribution exactly like
    :func:`~repro.features.history.dedupe_job_events`.
    """
    s = trace.samples
    if trace.num_samples == 0:
        return
    run_idx = np.asarray(s["run_idx"], dtype=int)
    node_id = np.asarray(s["node_id"], dtype=int)
    app_id = np.asarray(s["app_id"], dtype=int)
    job_id = np.asarray(s["job_id"], dtype=int)
    start = np.asarray(s["start_minute"], dtype=float)
    end = np.asarray(s["end_minute"], dtype=float)
    counts = np.asarray(s["sbe_count"], dtype=np.int64)

    events: list[tuple[float, int, int, object]] = []
    seq = 0

    def push(event) -> None:
        nonlocal seq
        events.append((event.minute, event_phase(event), seq, event))
        seq += 1

    # --- runs: one start + one completion per run_idx ------------------
    unique_runs, first_pos = np.unique(run_idx, return_index=True)
    for rid in unique_runs[np.argsort(first_pos, kind="stable")]:
        rows = np.nonzero(run_idx == rid)[0]
        push(
            RunStarted(
                minute=float(start[rows].min()),
                run_idx=int(rid),
                node_ids=node_id[rows],
                app_ids=app_id[rows],
                start_minutes=start[rows],
            )
        )
        push(
            RunCompleted(
                minute=float(end[rows].max()),
                run_idx=int(rid),
                rows={name: np.asarray(s[name])[rows] for name in ROW_COLUMNS},
            )
        )

    # --- per-(job, node) SBE events, deduped like the batch builder ----
    positive = counts > 0
    if positive.any():
        jobs_p = job_id[positive]
        nodes_p = node_id[positive]
        ends_p = end[positive]
        counts_p = counts[positive]
        order = np.lexsort((ends_p, nodes_p, jobs_p))
        job_s, node_s, end_s, cnt_s = (
            jobs_p[order],
            nodes_p[order],
            ends_p[order],
            counts_p[order],
        )
        is_last = np.ones(job_s.size, dtype=bool)
        is_last[:-1] = (job_s[:-1] != job_s[1:]) | (node_s[:-1] != node_s[1:])
        # App attribution matches the batch builder: the last samples-table
        # occurrence of each (job, node) wins.
        app_of: dict[tuple[int, int], int] = {}
        for j, nd, ap in zip(job_id, node_id, app_id):
            app_of[(int(j), int(nd))] = int(ap)
        for j, nd, minute, count in zip(
            job_s[is_last], node_s[is_last], end_s[is_last], cnt_s[is_last]
        ):
            push(
                SbeObserved(
                    minute=float(minute),
                    job_id=int(j),
                    node_id=int(nd),
                    app_id=app_of[(int(j), int(nd))],
                    count=int(count),
                )
            )

    # --- per-job label resolution (zeros included) ---------------------
    for jid in np.unique(job_id):
        rows = np.nonzero(job_id == jid)[0]
        # Keep one count per node: the row with the latest end minute,
        # later table row winning ties — same rule as the SBE events.
        per_node: dict[int, tuple[float, int]] = {}
        for r in rows:
            nd = int(node_id[r])
            best = per_node.get(nd)
            if best is None or end[r] >= best[0]:
                per_node[nd] = (float(end[r]), int(counts[r]))
        nodes_sorted = sorted(per_node)
        push(
            JobResolved(
                minute=float(end[rows].max()),
                job_id=int(jid),
                node_ids=np.asarray(nodes_sorted, dtype=int),
                counts=np.asarray(
                    [per_node[nd][1] for nd in nodes_sorted], dtype=np.int64
                ),
            )
        )

    events.sort(key=lambda item: item[:3])
    for _, _, _, event in events:
        yield event
