"""Versioned on-disk registry for fitted TwoStage predictors.

Artifact layout (one directory per version)::

    <root>/<name>/v0001/predictor.pkl   # pickled fitted predictor
    <root>/<name>/v0001/manifest.json   # commit record, written last

The manifest is the commit point: it carries the SHA-256 checksum of the
payload, the declared feature schema, and caller metadata (training
window, split, seed, ...).  Payload and manifest are both written with
the atomic temp-then-rename helpers from :mod:`repro.utils.io` — the
same hardened-IO discipline as the trace archive — so a crashed writer
can never leave a version that :meth:`ModelRegistry.load_model` would
silently accept: a directory without a valid manifest is simply not a
version.

A per-name ``HEAD.json`` records which committed version is *serving*.
``save_model`` advances it; :meth:`ModelRegistry.rollback` re-points it
at a prior version after a single-version checksum audit (the
``registry rollback`` CLI and the serve-side retrain governor share
this one code path).  ``latest()`` honors a valid head and falls back
to the highest committed version — with a
:class:`~repro.utils.errors.DegradedDataWarning` — when the head is
missing, unreadable, or points at a version that no longer verifies as
committed, so legacy registries without a head keep working unchanged.

Every failure mode (missing version, corrupt payload, unsupported
format, schema mismatch) raises
:class:`~repro.utils.errors.ModelRegistryError`.
"""

from __future__ import annotations

import json
import pickle
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.twostage import TwoStagePredictor
from repro.utils.errors import DegradedDataWarning, ModelRegistryError
from repro.utils.io import atomic_write_bytes, atomic_write_json, sha256_bytes

__all__ = [
    "ARTIFACT_FORMAT",
    "ModelVersion",
    "ModelRegistry",
    "save_model",
    "load_model",
    "list_versions",
]

#: On-disk artifact format; bump when the payload layout changes.
ARTIFACT_FORMAT = 1

_PAYLOAD_FILE = "predictor.pkl"
_MANIFEST_FILE = "manifest.json"
_HEAD_FILE = "HEAD.json"
_VERSION_RE = re.compile(r"^v(\d{4,})$")


@dataclass(frozen=True)
class ModelVersion:
    """One committed registry entry (manifest already parsed)."""

    name: str
    version: int
    path: Path
    manifest: dict

    @property
    def model_name(self) -> str:
        """Stage-2 model name recorded at save time."""
        return self.manifest["model_name"]

    @property
    def feature_names(self) -> list[str]:
        """Stage-2 input column names recorded at save time."""
        return list(self.manifest["feature_names"])

    @property
    def metadata(self) -> dict:
        """Caller-supplied training metadata."""
        return dict(self.manifest.get("metadata", {}))


class ModelRegistry:
    """Save / load / enumerate versioned TwoStage artifacts under a root."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def list_versions(self, name: str = "twostage") -> list[ModelVersion]:
        """Committed versions of ``name``, oldest first.

        Version directories must never be assumed complete: a crashed
        writer leaves a directory without a manifest, a torn copy leaves
        a manifest without its payload.  Both are skipped with a
        :class:`~repro.utils.errors.DegradedDataWarning` (they are
        in-flight writers or crash debris, never load candidates) so the
        caller learns the registry is degraded without the enumeration
        itself failing.
        """
        name_dir = self.root / name
        if not name_dir.is_dir():
            return []
        versions = []
        for child in sorted(name_dir.iterdir()):
            match = _VERSION_RE.match(child.name)
            if not match:
                continue
            manifest = self._read_manifest(child, strict=False)
            if manifest is None:
                warnings.warn(
                    f"skipping uncommitted registry version {name}/{child.name} "
                    f"(missing or unreadable manifest)",
                    DegradedDataWarning,
                    stacklevel=2,
                )
                continue
            payload = child / manifest.get("payload", _PAYLOAD_FILE)
            if not payload.is_file():
                warnings.warn(
                    f"skipping registry version {name}/{child.name} "
                    f"(manifest committed but payload missing)",
                    DegradedDataWarning,
                    stacklevel=2,
                )
                continue
            versions.append(
                ModelVersion(
                    name=name,
                    version=int(match.group(1)),
                    path=child,
                    manifest=manifest,
                )
            )
        versions.sort(key=lambda v: v.version)
        return versions

    def verify(self, name: str = "twostage") -> list[tuple[int, str]]:
        """Checksum-audit every version directory of ``name``.

        Returns ``(version, status)`` pairs, oldest first, where status
        is ``"ok"``, ``"bad-manifest"``, ``"missing-payload"``,
        ``"corrupt-payload"`` (checksum mismatch), or
        ``"bad-format"``.  Unlike :meth:`list_versions` this reads and
        hashes every payload, and reports broken directories instead of
        skipping them — it is the ``registry verify`` CLI audit.
        """
        name_dir = self.root / name
        if not name_dir.is_dir():
            raise ModelRegistryError(
                f"model {name!r} has no registry directory", path=name_dir
            )
        statuses: list[tuple[int, str]] = []
        for child in sorted(name_dir.iterdir()):
            match = _VERSION_RE.match(child.name)
            if not match:
                continue
            version = int(match.group(1))
            manifest = self._read_manifest(child, strict=False)
            if manifest is None:
                statuses.append((version, "bad-manifest"))
                continue
            if manifest.get("format") != ARTIFACT_FORMAT:
                statuses.append((version, "bad-format"))
                continue
            payload = child / manifest.get("payload", _PAYLOAD_FILE)
            try:
                data = payload.read_bytes()
            except OSError:
                statuses.append((version, "missing-payload"))
                continue
            if sha256_bytes(data) != manifest.get("checksum"):
                statuses.append((version, "corrupt-payload"))
                continue
            statuses.append((version, "ok"))
        statuses.sort(key=lambda pair: pair[0])
        return statuses

    def latest(self, name: str = "twostage") -> ModelVersion:
        """The *serving* version of ``name``.

        This is the head-pointer target when ``HEAD.json`` exists and
        points at a committed version (so a rollback sticks), otherwise
        the most recent committed version.  A head that is unreadable or
        dangling is reported with a
        :class:`~repro.utils.errors.DegradedDataWarning` and ignored —
        a stale pointer must degrade, never brick, the registry.
        """
        versions = self.list_versions(name)
        if not versions:
            raise ModelRegistryError(
                f"model {name!r} has no committed versions", path=self.root / name
            )
        head = self.head_version(name)
        if head is not None:
            by_version = {entry.version: entry for entry in versions}
            if head in by_version:
                return by_version[head]
            warnings.warn(
                f"registry head of {name!r} points at uncommitted version "
                f"v{head:04d}; falling back to newest committed version",
                DegradedDataWarning,
                stacklevel=2,
            )
        return versions[-1]

    def head_version(self, name: str = "twostage") -> int | None:
        """The head-pointer target, or ``None`` (absent/unreadable head)."""
        head_path = self.root / name / _HEAD_FILE
        try:
            raw = json.loads(head_path.read_text())
            return int(raw["version"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError, KeyError):
            warnings.warn(
                f"registry head of {name!r} is unreadable; "
                f"falling back to newest committed version",
                DegradedDataWarning,
                stacklevel=2,
            )
            return None

    def verify_version(self, name: str, version: int) -> str:
        """Audit one version directory; same statuses as :meth:`verify`.

        Returns ``"missing"`` when the directory does not exist at all.
        """
        version_dir = self.root / name / f"v{int(version):04d}"
        if not version_dir.is_dir():
            return "missing"
        manifest = self._read_manifest(version_dir, strict=False)
        if manifest is None:
            return "bad-manifest"
        if manifest.get("format") != ARTIFACT_FORMAT:
            return "bad-format"
        payload = version_dir / manifest.get("payload", _PAYLOAD_FILE)
        try:
            data = payload.read_bytes()
        except OSError:
            return "missing-payload"
        if sha256_bytes(data) != manifest.get("checksum"):
            return "corrupt-payload"
        return "ok"

    def rollback(self, name: str, version: int) -> ModelVersion:
        """Atomically re-point the registry head at ``version``.

        The target is checksum-audited first (:meth:`verify_version`);
        a corrupt or missing target raises a one-line
        :class:`~repro.utils.errors.ModelRegistryError` and leaves the
        head untouched.  The serve-side retrain governor and the
        ``registry rollback`` CLI both come through here.
        """
        status = self.verify_version(name, version)
        if status != "ok":
            raise ModelRegistryError(
                f"refusing rollback of {name!r} to v{int(version):04d}: "
                f"target is {status}",
                path=self.root / name / f"v{int(version):04d}",
            )
        self._write_head(name, int(version))
        return self._resolve(name, int(version))

    def _write_head(self, name: str, version: int) -> None:
        atomic_write_json(
            self.root / name / _HEAD_FILE, {"version": int(version)}
        )

    # ------------------------------------------------------------------
    def save_model(
        self,
        predictor: TwoStagePredictor,
        *,
        name: str = "twostage",
        metadata: dict | None = None,
    ) -> ModelVersion:
        """Persist a fitted predictor as the next version of ``name``.

        Raises :class:`~repro.utils.errors.NotFittedError` for an
        unfitted predictor (there is nothing meaningful to serialize).
        """
        feature_names = predictor.feature_names  # raises NotFittedError
        offenders = predictor.offender_nodes
        payload = pickle.dumps(
            {"format": ARTIFACT_FORMAT, "predictor": predictor},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        version = self._next_version(name)
        version_dir = self.root / name / f"v{version:04d}"
        version_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(version_dir / _PAYLOAD_FILE, payload)
        manifest = {
            "format": ARTIFACT_FORMAT,
            "name": name,
            "version": version,
            "model_name": predictor.model_name,
            "n_features": len(feature_names),
            "feature_names": list(feature_names),
            "num_offender_nodes": int(offenders.size),
            "payload": _PAYLOAD_FILE,
            "checksum": sha256_bytes(payload),
            "metadata": metadata or {},
        }
        atomic_write_json(version_dir / _MANIFEST_FILE, manifest)
        # A fresh save is the new serving version: advance the head so a
        # prior rollback does not pin future saves to the old model.
        self._write_head(name, version)
        return ModelVersion(
            name=name, version=version, path=version_dir, manifest=manifest
        )

    def load_model(
        self,
        name: str = "twostage",
        version: int | None = None,
        *,
        expect_feature_names: list[str] | None = None,
    ) -> tuple[TwoStagePredictor, ModelVersion]:
        """Load a committed version (latest when ``version is None``).

        The payload checksum is always verified, the artifact's declared
        schema is cross-checked against the unpickled predictor, and —
        when ``expect_feature_names`` is given — against the feature
        schema the caller is about to serve.  Any mismatch raises
        :class:`~repro.utils.errors.ModelRegistryError`.
        """
        entry = self._resolve(name, version)
        payload_path = entry.path / entry.manifest.get("payload", _PAYLOAD_FILE)
        if entry.manifest.get("format") != ARTIFACT_FORMAT:
            raise ModelRegistryError(
                f"unsupported artifact format {entry.manifest.get('format')!r} "
                f"(this build reads format {ARTIFACT_FORMAT})",
                path=entry.path,
            )
        try:
            payload = payload_path.read_bytes()
        except OSError as exc:
            raise ModelRegistryError(
                f"unreadable artifact payload: {exc}", path=payload_path
            ) from exc
        expected = entry.manifest.get("checksum")
        actual = sha256_bytes(payload)
        if actual != expected:
            raise ModelRegistryError(
                f"artifact payload checksum mismatch (expected "
                f"{str(expected)[:12]}..., got {actual[:12]}...)",
                path=payload_path,
            )
        try:
            obj = pickle.loads(payload)
        except Exception as exc:
            raise ModelRegistryError(
                f"artifact payload does not unpickle: {exc}", path=payload_path
            ) from exc
        predictor = obj.get("predictor") if isinstance(obj, dict) else None
        if not isinstance(predictor, TwoStagePredictor):
            raise ModelRegistryError(
                "artifact payload is not a TwoStagePredictor", path=payload_path
            )
        if list(predictor.feature_names) != entry.feature_names:
            raise ModelRegistryError(
                "artifact is internally inconsistent: manifest and predictor "
                "disagree on the feature schema",
                path=entry.path,
            )
        if expect_feature_names is not None and list(expect_feature_names) != (
            entry.feature_names
        ):
            raise ModelRegistryError(
                f"schema-incompatible artifact: it serves "
                f"{len(entry.feature_names)} features, the caller expects "
                f"{len(list(expect_feature_names))} "
                f"(first difference: {_first_difference(entry.feature_names, list(expect_feature_names))})",
                path=entry.path,
            )
        return predictor, entry

    # ------------------------------------------------------------------
    def _resolve(self, name: str, version: int | None) -> ModelVersion:
        if version is None:
            return self.latest(name)
        version_dir = self.root / name / f"v{int(version):04d}"
        if not version_dir.is_dir():
            raise ModelRegistryError(
                f"model {name!r} has no version {version}", path=version_dir
            )
        manifest = self._read_manifest(version_dir, strict=True)
        return ModelVersion(
            name=name, version=int(version), path=version_dir, manifest=manifest
        )

    def _next_version(self, name: str) -> int:
        name_dir = self.root / name
        if not name_dir.is_dir():
            return 1
        taken = [
            int(match.group(1))
            for child in name_dir.iterdir()
            if (match := _VERSION_RE.match(child.name))
        ]
        return max(taken, default=0) + 1

    @staticmethod
    def _read_manifest(version_dir: Path, *, strict: bool) -> dict | None:
        manifest_path = version_dir / _MANIFEST_FILE
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            if strict:
                raise ModelRegistryError(
                    f"unreadable artifact manifest: {exc}", path=manifest_path
                ) from exc
            return None
        if not isinstance(manifest, dict) or "feature_names" not in manifest:
            if strict:
                raise ModelRegistryError(
                    "artifact manifest lacks a feature schema", path=manifest_path
                )
            return None
        return manifest


def _first_difference(a: list[str], b: list[str]) -> str:
    """Human-readable first point of divergence between two name lists."""
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"column {i}: {x!r} != {y!r}"
    return f"length {len(a)} != {len(b)}"


# ----------------------------------------------------------------------
# Module-level convenience API (the issue's save/load/list surface)
# ----------------------------------------------------------------------
def save_model(
    predictor: TwoStagePredictor,
    root: str | Path,
    *,
    name: str = "twostage",
    metadata: dict | None = None,
) -> ModelVersion:
    """Save ``predictor`` as the next version under ``root``."""
    return ModelRegistry(root).save_model(predictor, name=name, metadata=metadata)


def load_model(
    root: str | Path,
    *,
    name: str = "twostage",
    version: int | None = None,
    expect_feature_names: list[str] | None = None,
) -> TwoStagePredictor:
    """Load a predictor from ``root`` (latest version by default)."""
    predictor, _ = ModelRegistry(root).load_model(
        name, version, expect_feature_names=expect_feature_names
    )
    return predictor


def list_versions(root: str | Path, *, name: str = "twostage") -> list[ModelVersion]:
    """Committed versions of ``name`` under ``root``, oldest first."""
    return ModelRegistry(root).list_versions(name)
