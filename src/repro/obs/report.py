"""Snapshot persistence and the ``obs report`` / ``obs diff`` renderers.

Snapshots are plain JSON (one :meth:`MetricsRegistry.snapshot` dict plus
a stored digest) so they can be archived next to ``BENCH_*.json`` files
and diffed across commits.  The digest covers only the deterministic
subset — see :func:`repro.obs.metrics.digest_view`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, snapshot_digest
from repro.utils.errors import ValidationError

__all__ = [
    "write_snapshot",
    "load_snapshot",
    "render_report",
    "diff_snapshots",
    "render_diff",
]


def write_snapshot(
    path: str | Path,
    registry: MetricsRegistry,
    run: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write ``registry``'s snapshot (with its digest) to ``path``."""
    snapshot = registry.snapshot(run)
    snapshot["digest"] = snapshot_digest(snapshot)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot


def load_snapshot(path: str | Path) -> dict[str, Any]:
    target = Path(path)
    try:
        snapshot = json.loads(target.read_text())
    except FileNotFoundError:
        raise ValidationError(f"no obs snapshot at {target}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"obs snapshot {target} is not JSON: {exc}") from None
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValidationError(f"obs snapshot {target} has no 'metrics' key")
    stored = snapshot.get("digest")
    recomputed = snapshot_digest(snapshot)
    if stored is not None and stored != recomputed:
        raise ValidationError(
            f"obs snapshot {target} digest mismatch: stored {stored[:16]} "
            f"!= recomputed {recomputed[:16]}"
        )
    return snapshot


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _metric_rows(snapshot: dict[str, Any]) -> list[tuple[str, str, str, str]]:
    """(name, kind, labels, value) rows for every series in a snapshot."""
    rows: list[tuple[str, str, str, str]] = []
    for metric in snapshot.get("metrics", []):
        kind = metric["kind"]
        wall_mark = " (wall)" if metric.get("wall") else ""
        if kind == "histogram":
            for series in metric.get("series", []):
                value = (
                    f"count={series['count']} sum={series['sum']:.6g}"
                )
                rows.append(
                    (
                        metric["name"],
                        kind + wall_mark,
                        _label_str(series.get("labels", {})),
                        value,
                    )
                )
        else:
            for sample in metric.get("samples", []):
                rows.append(
                    (
                        metric["name"],
                        kind + wall_mark,
                        _label_str(sample.get("labels", {})),
                        f"{sample['value']:.6g}",
                    )
                )
    return rows


def _format_table(
    headers: tuple[str, ...], rows: list[tuple[str, ...]]
) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return lines


def render_report(
    snapshot: dict[str, Any], *, events_limit: int = 20
) -> str:
    """Human-readable report of one snapshot."""
    lines: list[str] = []
    run = snapshot.get("run", {})
    digest = snapshot.get("digest") or snapshot_digest(snapshot)
    lines.append(f"obs snapshot (format {snapshot.get('format')})")
    lines.append(f"  digest: {digest}")
    lines.append(f"  mode:   {snapshot.get('mode', 'on')}")
    for key, value in sorted(run.items()):
        if key == "wall_fields":
            continue
        lines.append(f"  {key}: {value}")
    rows = _metric_rows(snapshot)
    lines.append("")
    if rows:
        lines.extend(
            _format_table(("metric", "kind", "labels", "value"), rows)
        )
    else:
        lines.append("(no metrics recorded)")
    events = snapshot.get("events", [])
    dropped = snapshot.get("events_dropped", 0)
    lines.append("")
    lines.append(
        f"events: {len(events)} recorded"
        + (f", {dropped} dropped (capacity)" if dropped else "")
    )
    for record in events[:events_limit]:
        minute = record.get("minute")
        when = f"minute {minute:g}" if minute is not None else "-"
        fields = " ".join(
            f"{k}={v}" for k, v in sorted(record.get("fields", {}).items())
        )
        lines.append(f"  [{record['seq']}] {record['name']} ({when}) {fields}".rstrip())
    if len(events) > events_limit:
        lines.append(f"  ... {len(events) - events_limit} more")
    return "\n".join(lines) + "\n"


def diff_snapshots(
    before: dict[str, Any], after: dict[str, Any]
) -> list[dict[str, Any]]:
    """Series-level differences between two snapshots.

    Returns a list of ``{metric, labels, kind, before, after}`` entries
    for every series whose value changed, appeared, or disappeared.
    Histogram series compare on (count, sum).
    """

    def series_map(snapshot):
        out: dict[tuple[str, str], tuple[str, Any]] = {}
        for metric in snapshot.get("metrics", []):
            if metric["kind"] == "histogram":
                for series in metric.get("series", []):
                    key = (metric["name"], _label_str(series.get("labels", {})))
                    out[key] = (
                        metric["kind"],
                        (series["count"], series["sum"]),
                    )
            else:
                for sample in metric.get("samples", []):
                    key = (metric["name"], _label_str(sample.get("labels", {})))
                    out[key] = (metric["kind"], sample["value"])
        return out

    before_map = series_map(before)
    after_map = series_map(after)
    diffs: list[dict[str, Any]] = []
    for key in sorted(set(before_map) | set(after_map)):
        b = before_map.get(key)
        a = after_map.get(key)
        if b == a:
            continue
        diffs.append(
            {
                "metric": key[0],
                "labels": key[1],
                "kind": (a or b)[0],
                "before": b[1] if b else None,
                "after": a[1] if a else None,
            }
        )
    return diffs


def render_diff(before: dict[str, Any], after: dict[str, Any]) -> str:
    """Human-readable diff between two snapshots."""
    digest_before = before.get("digest") or snapshot_digest(before)
    digest_after = after.get("digest") or snapshot_digest(after)
    lines = [
        f"before: {digest_before}",
        f"after:  {digest_after}",
    ]
    diffs = diff_snapshots(before, after)
    if not diffs:
        lines.append("no series-level differences")
        return "\n".join(lines) + "\n"
    rows = []
    for entry in diffs:
        rows.append(
            (
                entry["metric"],
                entry["labels"],
                "absent" if entry["before"] is None else f"{entry['before']}",
                "absent" if entry["after"] is None else f"{entry['after']}",
            )
        )
    lines.append("")
    lines.extend(_format_table(("metric", "labels", "before", "after"), rows))
    lines.append("")
    lines.append(f"{len(diffs)} series differ")
    return "\n".join(lines) + "\n"
