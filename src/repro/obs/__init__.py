"""repro.obs — deterministic observability: metrics, spans, snapshots.

The one-stop measurement substrate for the whole pipeline.  Counters,
gauges, and fixed-bucket histograms live in a process-wide
:class:`MetricsRegistry`; wall-clock readings are tagged ``wall=True``
and excluded from snapshot digests, so same-seed runs produce identical
``snapshot_digest()`` values on any machine.  Instrumentation is
digest-neutral by construction (it never feeds back into pipeline
state) and the CI gate re-checks that claim every run.
"""

from repro.obs.metrics import (
    DEFAULT_MINUTE_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_WALL_BUCKETS,
    Counter,
    EventRecord,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure,
    digest_view,
    get_registry,
    set_registry,
    snapshot_digest,
    use_registry,
)
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.report import (
    diff_snapshots,
    load_snapshot,
    render_diff,
    render_report,
    write_snapshot,
)
from repro.obs.spans import SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "EventRecord",
    "MetricsRegistry",
    "SpanTracer",
    "DEFAULT_WALL_BUCKETS",
    "DEFAULT_MINUTE_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "CONTENT_TYPE",
    "render_prometheus",
    "get_registry",
    "set_registry",
    "use_registry",
    "configure",
    "digest_view",
    "snapshot_digest",
    "write_snapshot",
    "load_snapshot",
    "render_report",
    "render_diff",
    "diff_snapshots",
]
