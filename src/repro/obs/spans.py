"""Span-based tracing over wall or virtual clocks.

A :class:`SpanTracer` accumulates named span durations.  It is
deliberately tiny and self-contained (no registry reference required) so
it can run inside process-pool workers and be merged in the parent —
the pattern the sharded simulator uses to keep ``--jobs N`` snapshots
bit-identical to ``--jobs 1``: wall timings travel back with the shard
result and are recorded (as wall-excluded metrics) only at merge time.

Two clock sources:

* the default monotonic wall clock (``time.perf_counter``) for real
  benchmark timings, always tagged ``wall`` so digests exclude them;
* any object with a ``now`` attribute (e.g. the gateway's counted
  ``VirtualClock``) for deterministic event-time spans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["SpanTracer"]


class SpanTracer:
    """Accumulate per-name span durations and occurrence counts."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        # ``clock`` is any zero-arg callable returning seconds (or virtual
        # minutes); defaults to the monotonic wall clock.
        self._clock = clock if clock is not None else time.perf_counter
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._open: tuple[str, float] | None = None

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        started = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - started)

    # Imperative form for interleaved stages (e.g. a tick loop that
    # alternates simulate/sample work): exactly one span is open at a
    # time; ``switch`` closes the current one and opens the next.
    def start(self, name: str) -> None:
        if self._open is not None:
            raise RuntimeError(
                f"span {self._open[0]!r} is still open; use switch()"
            )
        self._open = (name, self._clock())

    def switch(self, name: str) -> None:
        self.stop()
        self.start(name)

    def stop(self) -> None:
        if self._open is not None:
            name, started = self._open
            self._open = None
            self.add(name, self._clock() - started)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + count

    def merge(self, other: "SpanTracer | dict[str, float]") -> None:
        """Fold another tracer (or a plain name->seconds dict, e.g. one
        that crossed a process boundary) into this one."""
        if isinstance(other, SpanTracer):
            for name, seconds in other._seconds.items():
                self.add(name, seconds, other._counts.get(name, 1))
        else:
            for name, seconds in other.items():
                self.add(name, seconds)

    @property
    def seconds(self) -> dict[str, float]:
        """Accumulated duration per span name (insertion-ordered)."""
        return dict(self._seconds)

    @property
    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def get(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def records(self) -> list[dict[str, Any]]:
        """JSON-able span records, ready for ``Trace.meta`` round-trips."""
        return [
            {
                "name": name,
                "seconds": seconds,
                "count": self._counts.get(name, 1),
            }
            for name, seconds in self._seconds.items()
        ]

    def record_to(
        self,
        registry,
        *,
        component: str,
        wall: bool = True,
        **labels: Any,
    ) -> None:
        """Publish accumulated spans into a registry as
        ``repro_span_seconds_total`` / ``repro_span_count_total``."""
        seconds_counter = registry.counter(
            "repro_span_seconds_total",
            "Total time spent inside named spans.",
            wall=wall,
        )
        count_counter = registry.counter(
            "repro_span_count_total",
            "Number of completed named spans.",
            wall=wall,
        )
        for name, seconds in self._seconds.items():
            seconds_counter.inc(
                seconds, span=name, component=component, **labels
            )
            count_counter.inc(
                self._counts.get(name, 1),
                span=name,
                component=component,
                **labels,
            )
