"""Prometheus text exposition (format 0.0.4) for a MetricsRegistry.

Renders ``# HELP`` / ``# TYPE`` headers, escaped label values, and for
histograms the cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  Output order is deterministic: metrics by name, series by
sorted label set — so two scrapes of identical registries are
byte-identical.
"""

from __future__ import annotations

import math

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str] | tuple, extra: str = "") -> str:
    pairs = dict(labels)
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(pairs.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the registry as Prometheus text."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for series in instrument.series_dicts():
                labels = series["labels"]
                cumulative = 0
                for edge, bucket_count in zip(
                    instrument.buckets, series["bucket_counts"]
                ):
                    cumulative += bucket_count
                    le = 'le="{}"'.format(_format_value(edge))
                    rendered = _format_labels(labels, le)
                    lines.append(f"{name}_bucket{rendered} {cumulative}")
                cumulative += series["bucket_counts"][-1]
                rendered = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{rendered} {cumulative}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)}"
                    f" {_format_value(series['sum'])}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {series['count']}"
                )
        else:
            rendered_any = False
            for key, value in instrument.samples():
                lines.append(
                    f"{name}{_format_labels(key)} {_format_value(value)}"
                )
                rendered_any = True
            if not rendered_any:
                lines.append(f"{name} 0")
    return "\n".join(lines) + "\n"
