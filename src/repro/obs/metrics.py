"""Deterministic process-wide metrics registry.

Three instrument kinds — counters, gauges, and histograms with *fixed*
bucket boundaries — plus a bounded structured event log.  Two invariants
make the registry safe to wire through a digest-gated codebase:

1. **Digest neutrality.**  Instruments only ever *read* values the
   pipeline already computed; nothing in this module feeds back into
   simulation, feature, or scoring state.  The CI gate in ``tools/ci.sh``
   additionally re-derives the golden content digests with obs on, off,
   and sampled and asserts they are bit-identical.

2. **Snapshot determinism.**  Metrics derived from deterministic
   quantities (row counts, event-time latencies on the virtual clock,
   breaker transitions) are recorded with ``wall=False`` and participate
   in :meth:`MetricsRegistry.snapshot_digest`; anything measured off the
   monotonic wall clock is declared ``wall=True`` and is excluded, so the
   same seed yields the same snapshot digest on any machine.

Metric names follow ``repro_<subsystem>_<quantity>[_<unit>][_total]``
(Prometheus conventions); label values are always stringified and label
sets are kept tiny and low-cardinality (shard ids, stage names, outcome
enums).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.utils.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "EventRecord",
    "MetricsRegistry",
    "DEFAULT_WALL_BUCKETS",
    "DEFAULT_MINUTE_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "configure",
]

#: Wall-clock latency buckets in seconds (10 µs .. 10 s, roughly 1-2.5-5).
DEFAULT_WALL_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Event-time latency buckets in virtual minutes (one tick .. a week).
DEFAULT_MINUTE_BUCKETS: tuple[float, ...] = (
    5.0, 10.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0,
    1440.0, 2880.0, 10080.0,
)

#: Power-of-two size buckets (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0,
)

_MODES = ("on", "off", "sample")

#: How many histogram observations the ``sample`` mode skips between
#: recorded ones.  Counters and gauges are always recorded — they are a
#: single dict update — so sampling only thins the per-observation work.
SAMPLE_EVERY = 8

#: Bounded event-log capacity; older events are dropped (and counted).
DEFAULT_EVENT_CAPACITY = 4096


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class EventRecord:
    """One structured log event.

    ``minute`` is virtual/event time when the emitter has one (making the
    event deterministic); ``None`` otherwise.  ``seq`` is the process-wide
    emission index, so event order is part of the snapshot digest.
    """

    seq: int
    name: str
    minute: float | None
    fields: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "name": self.name,
            "minute": self.minute,
            "fields": dict(sorted(self.fields.items())),
        }


class _Instrument:
    """Shared plumbing: name, help text, labelled sample storage."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str, wall: bool
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.wall = wall
        self._samples: dict[tuple[tuple[str, str], ...], float] = {}

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def value(self, **labels: Any) -> float:
        """Current value for one label set (0.0 if never touched)."""
        return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        yield from sorted(self._samples.items())

    def _sample_dicts(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in self.samples()
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "wall": self.wall,
            "samples": self._sample_dicts(),
        }


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Instrument):
    """Last-writer-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


@dataclass
class _HistogramSeries:
    """Per-label-set histogram state."""

    bucket_counts: list[int]
    total: float = 0.0
    count: int = 0
    seen: int = 0  # observations offered, including sampled-away ones


class Histogram(_Instrument):
    """Fixed-bucket histogram.

    Bucket boundaries are upper-inclusive edges (Prometheus ``le``
    semantics) and are fixed at registration time, so two runs that
    observe the same values produce byte-identical snapshots.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        wall: bool,
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, name, help, wall)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValidationError(
                f"histogram {self.name!r} needs strictly increasing buckets"
            )
        self.buckets = tuple(float(edge) for edge in buckets)
        self._series: dict[tuple[tuple[str, str], ...], _HistogramSeries] = {}

    def _get_series(self, key: tuple[tuple[str, str], ...]) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(bucket_counts=[0] * (len(self.buckets) + 1))
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        series = self._get_series(_label_key(labels))
        series.seen += 1
        if self._registry.mode == "sample" and (series.seen - 1) % SAMPLE_EVERY:
            return
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        series.bucket_counts[index] += 1
        series.total += float(value)
        series.count += 1

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Prometheus-style estimate: linear interpolation in the bucket
        holding the q-th observation.  Returns 0.0 for an empty series."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile {q} outside [0, 1]")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        target = q * series.count
        cumulative = 0
        lower = 0.0
        for i, edge in enumerate(self.buckets):
            in_bucket = series.bucket_counts[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                return lower + (edge - lower) * fraction
            cumulative += in_bucket
            lower = edge
        # Overflow bucket: no finite upper edge, report the last edge.
        return self.buckets[-1]

    def samples(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        for key, series in sorted(self._series.items()):
            yield key, float(series.count)

    def series_dicts(self) -> list[dict[str, Any]]:
        out = []
        for key, series in sorted(self._series.items()):
            out.append(
                {
                    "labels": dict(key),
                    "bucket_counts": list(series.bucket_counts),
                    "sum": series.total,
                    "count": series.count,
                }
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "wall": self.wall,
            "buckets": list(self.buckets),
            "series": self.series_dicts(),
        }


class MetricsRegistry:
    """Process-wide home for instruments and structured events.

    ``mode`` is one of ``on`` (record everything), ``off`` (every
    instrument call is a cheap no-op) and ``sample`` (histograms record
    every :data:`SAMPLE_EVERY`-th observation; counters/gauges/events are
    always recorded).  Instrument registration is get-or-create: asking
    for an existing name with a matching kind returns the same object,
    a mismatched kind raises.
    """

    SNAPSHOT_FORMAT = 1

    def __init__(
        self,
        mode: str = "on",
        *,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(
                f"unknown obs mode {mode!r}; pick one of {_MODES}"
            )
        self.mode = mode
        self._instruments: dict[str, _Instrument] = {}
        self._events: deque[EventRecord] = deque(maxlen=event_capacity)
        self._event_seq = 0
        self._events_dropped = 0
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def set_mode(self, mode: str) -> None:
        if mode not in _MODES:
            raise ValidationError(
                f"unknown obs mode {mode!r}; pick one of {_MODES}"
            )
        self.mode = mode

    # -- registration --------------------------------------------------

    def _register(self, cls, name: str, help: str, wall: bool, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if isinstance(existing, Histogram) and "buckets" in kwargs:
                    if existing.buckets != tuple(
                        float(b) for b in kwargs["buckets"]
                    ):
                        raise ValidationError(
                            f"histogram {name!r} re-registered with "
                            "different buckets"
                        )
                return existing
            instrument = cls(self, name, help, wall, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", *, wall: bool = False) -> Counter:
        return self._register(Counter, name, help, wall)

    def gauge(self, name: str, help: str = "", *, wall: bool = False) -> Gauge:
        return self._register(Gauge, name, help, wall)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_WALL_BUCKETS,
        wall: bool = False,
    ) -> Histogram:
        return self._register(Histogram, name, help, wall, buckets=buckets)

    def instruments(self) -> list[_Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # -- events --------------------------------------------------------

    def event(
        self, name: str, *, minute: float | None = None, **fields: Any
    ) -> None:
        """Record one structured event (deterministic if the caller only
        passes deterministic fields; keep wall readings out of these)."""
        if not self.enabled:
            return
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self._events_dropped += 1
            self._events.append(
                EventRecord(self._event_seq, name, minute, fields)
            )
            self._event_seq += 1

    @property
    def events(self) -> list[EventRecord]:
        return list(self._events)

    @property
    def events_dropped(self) -> int:
        return self._events_dropped

    # -- snapshots -----------------------------------------------------

    def snapshot(self, run: dict[str, Any] | None = None) -> dict[str, Any]:
        """JSON-able snapshot of every instrument and event.

        ``run`` carries caller-supplied run identity (command, preset,
        seed ...).  Keys listed in ``run["wall_fields"]`` (plus the
        built-in ``mode``) are excluded from the snapshot digest.
        """
        return {
            "format": self.SNAPSHOT_FORMAT,
            "mode": self.mode,
            "run": dict(run or {}),
            "metrics": [inst.to_dict() for inst in self.instruments()],
            "events": [record.to_dict() for record in self._events],
            "events_dropped": self._events_dropped,
        }

    def snapshot_digest(self, run: dict[str, Any] | None = None) -> str:
        return snapshot_digest(self.snapshot(run))

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._events.clear()
            self._event_seq = 0
            self._events_dropped = 0


def digest_view(snapshot: dict[str, Any]) -> dict[str, Any]:
    """The deterministic subset of a snapshot that the digest covers.

    Drops every ``wall=True`` metric, the recording ``mode`` (sampled
    runs legitimately thin histograms), and any run field named by
    ``run["wall_fields"]``.
    """
    run = dict(snapshot.get("run", {}))
    for field_name in list(run.pop("wall_fields", [])) + ["wall_fields"]:
        run.pop(field_name, None)
    return {
        "format": snapshot.get("format"),
        "run": run,
        "metrics": [
            metric
            for metric in snapshot.get("metrics", [])
            if not metric.get("wall", False)
        ],
        "events": snapshot.get("events", []),
        "events_dropped": snapshot.get("events_dropped", 0),
    }


def snapshot_digest(snapshot: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of the deterministic subset."""
    canonical = json.dumps(
        digest_view(snapshot), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- the process-default registry --------------------------------------

_default_registry: MetricsRegistry | None = None
_registry_lock = threading.Lock()


def _mode_from_env() -> str:
    raw = os.environ.get("REPRO_OBS", "on").strip().lower()
    aliases = {"1": "on", "true": "on", "0": "off", "false": "off", "": "on"}
    mode = aliases.get(raw, raw)
    if mode not in _MODES:
        raise ValidationError(
            f"REPRO_OBS={raw!r} is not one of {_MODES} (or 0/1)"
        )
    return mode


def get_registry() -> MetricsRegistry:
    """The process-default registry (created on first use; mode comes
    from ``REPRO_OBS`` — ``on``/``off``/``sample``, default ``on``)."""
    global _default_registry
    with _registry_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry(mode=_mode_from_env())
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry | None:
    """Swap the process-default registry, returning the previous one."""
    global _default_registry
    with _registry_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


def configure(mode: str) -> MetricsRegistry:
    """Set the recording mode of the process-default registry."""
    registry = get_registry()
    registry.set_mode(mode)
    return registry


class use_registry:
    """Context manager: temporarily install ``registry`` as the default.

    The workhorse of snapshot-determinism tests — each run gets a fresh
    registry so digests never see residue from earlier runs::

        with use_registry(MetricsRegistry()) as reg:
            simulate_trace(config)
            digest = reg.snapshot_digest()
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        global _default_registry
        with _registry_lock:
            _default_registry = self._previous
