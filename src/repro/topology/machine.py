"""Whole-machine topology with vectorized neighbour queries.

The feature extractor asks, for every sample, for "the other GPU nodes in
the same slot" and "the cabinet of this node" — tens of thousands of times.
:class:`Machine` therefore precomputes integer index arrays mapping each
node id to its cabinet/cage/slot groups so those queries are O(1) array
lookups rather than object traversals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.location import NodeLocation
from repro.utils.errors import ConfigurationError
from repro.utils.validation import check_positive

__all__ = ["MachineConfig", "Machine", "TITAN_CONFIG"]


@dataclass(frozen=True)
class MachineConfig:
    """Dimensions of the machine at every level of the hierarchy."""

    grid_x: int = 25
    grid_y: int = 8
    cages_per_cabinet: int = 3
    slots_per_cage: int = 8
    nodes_per_slot: int = 4

    def __post_init__(self) -> None:
        for field in (
            "grid_x",
            "grid_y",
            "cages_per_cabinet",
            "slots_per_cage",
            "nodes_per_slot",
        ):
            value = getattr(self, field)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(f"{field} must be a positive int, got {value!r}")

    @property
    def num_cabinets(self) -> int:
        """Total number of cabinets on the floor grid."""
        return self.grid_x * self.grid_y

    @property
    def nodes_per_cabinet(self) -> int:
        """Nodes contained in one cabinet."""
        return self.cages_per_cabinet * self.slots_per_cage * self.nodes_per_slot

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the machine."""
        return self.num_cabinets * self.nodes_per_cabinet

    def scaled(self, **overrides: int) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        values = {
            "grid_x": self.grid_x,
            "grid_y": self.grid_y,
            "cages_per_cabinet": self.cages_per_cabinet,
            "slots_per_cage": self.slots_per_cage,
            "nodes_per_slot": self.nodes_per_slot,
        }
        values.update(overrides)
        return MachineConfig(**values)


#: The full Titan configuration from the paper: 200 cabinets in a 25 x 8
#: grid, 3 cages x 8 slots x 4 nodes each = 18,688 GPUs... minus service
#: nodes in reality; here exactly 19,200 node positions, of which Titan
#: populated 18,688 with GPUs.  We model all positions as GPU nodes.
TITAN_CONFIG = MachineConfig()


class Machine:
    """Immutable topology with node-id <-> location maps and group indices.

    Node ids are dense integers ``0 .. num_nodes-1`` assigned in
    (cabinet-major, cage, slot, node) order, so all per-node state elsewhere
    in the library can live in flat numpy arrays indexed by node id.
    """

    def __init__(self, config: MachineConfig | None = None) -> None:
        self._config = config or TITAN_CONFIG
        cfg = self._config
        n = cfg.num_nodes
        node_ids = np.arange(n)
        per_cab = cfg.nodes_per_cabinet
        cabinet_linear = node_ids // per_cab
        self._cabinet_x = cabinet_linear % cfg.grid_x
        self._cabinet_y = cabinet_linear // cfg.grid_x
        within = node_ids % per_cab
        per_cage = cfg.slots_per_cage * cfg.nodes_per_slot
        self._cage = within // per_cage
        self._slot = (within % per_cage) // cfg.nodes_per_slot
        self._node_in_slot = within % cfg.nodes_per_slot
        self._cabinet_linear = cabinet_linear
        # Global group ids for slot and cage, used for fast groupby.
        self._slot_group = node_ids // cfg.nodes_per_slot
        self._cage_group = node_ids // per_cage

    @property
    def config(self) -> MachineConfig:
        """The machine dimensions."""
        return self._config

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return self._config.num_nodes

    @property
    def num_cabinets(self) -> int:
        """Total number of cabinets."""
        return self._config.num_cabinets

    # ------------------------------------------------------------------
    # Scalar queries
    # ------------------------------------------------------------------
    def location(self, node_id: int) -> NodeLocation:
        """Return the physical location of ``node_id``."""
        self._check_node(node_id)
        return NodeLocation(
            x=int(self._cabinet_x[node_id]),
            y=int(self._cabinet_y[node_id]),
            cage=int(self._cage[node_id]),
            slot=int(self._slot[node_id]),
            node=int(self._node_in_slot[node_id]),
        )

    def node_id(self, location: NodeLocation) -> int:
        """Return the dense node id of ``location``."""
        cfg = self._config
        if not (0 <= location.x < cfg.grid_x and 0 <= location.y < cfg.grid_y):
            raise ValueError(f"cabinet out of range: {location}")
        if not (
            0 <= location.cage < cfg.cages_per_cabinet
            and 0 <= location.slot < cfg.slots_per_cage
            and 0 <= location.node < cfg.nodes_per_slot
        ):
            raise ValueError(f"position out of range: {location}")
        cabinet_linear = location.y * cfg.grid_x + location.x
        within = (
            location.cage * cfg.slots_per_cage + location.slot
        ) * cfg.nodes_per_slot + location.node
        return cabinet_linear * cfg.nodes_per_cabinet + within

    def slot_peers(self, node_id: int) -> np.ndarray:
        """Node ids sharing ``node_id``'s slot, excluding ``node_id``."""
        self._check_node(node_id)
        base = (node_id // self._config.nodes_per_slot) * self._config.nodes_per_slot
        peers = np.arange(base, base + self._config.nodes_per_slot)
        return peers[peers != node_id]

    def cage_peers(self, node_id: int) -> np.ndarray:
        """Node ids sharing ``node_id``'s cage, excluding ``node_id``."""
        self._check_node(node_id)
        per_cage = self._config.slots_per_cage * self._config.nodes_per_slot
        base = (node_id // per_cage) * per_cage
        peers = np.arange(base, base + per_cage)
        return peers[peers != node_id]

    def cabinet_of(self, node_id: int) -> tuple[int, int]:
        """Cabinet grid coordinates ``(x, y)`` of ``node_id``."""
        self._check_node(node_id)
        return (int(self._cabinet_x[node_id]), int(self._cabinet_y[node_id]))

    # ------------------------------------------------------------------
    # Vectorized views (flat arrays indexed by node id)
    # ------------------------------------------------------------------
    @property
    def cabinet_x(self) -> np.ndarray:
        """Per-node cabinet column (read-only view)."""
        return self._readonly(self._cabinet_x)

    @property
    def cabinet_y(self) -> np.ndarray:
        """Per-node cabinet row (read-only view)."""
        return self._readonly(self._cabinet_y)

    @property
    def cabinet_linear(self) -> np.ndarray:
        """Per-node linear cabinet index ``y * grid_x + x``."""
        return self._readonly(self._cabinet_linear)

    @property
    def slot_group(self) -> np.ndarray:
        """Per-node global slot id (nodes with equal value share a slot)."""
        return self._readonly(self._slot_group)

    @property
    def cage_group(self) -> np.ndarray:
        """Per-node global cage id."""
        return self._readonly(self._cage_group)

    def cabinet_grid(self, per_node_values: np.ndarray, *, reduce: str = "sum") -> np.ndarray:
        """Aggregate a per-node array onto the ``(grid_y, grid_x)`` floor grid.

        ``reduce`` is ``"sum"`` or ``"mean"``.  This is the primitive behind
        every cabinet-level figure in the paper (Figs. 1, 2, 5, 13b).
        """
        values = np.asarray(per_node_values, dtype=float)
        if values.shape != (self.num_nodes,):
            raise ValueError(
                f"expected shape ({self.num_nodes},), got {values.shape}"
            )
        cfg = self._config
        sums = np.bincount(
            self._cabinet_linear, weights=values, minlength=cfg.num_cabinets
        )
        if reduce == "mean":
            sums = sums / cfg.nodes_per_cabinet
        elif reduce != "sum":
            raise ValueError(f"unknown reduce: {reduce!r}")
        return sums.reshape(cfg.grid_y, cfg.grid_x)

    def slot_means(self, per_node_values: np.ndarray) -> np.ndarray:
        """Per-node mean of the value over that node's slot (including self)."""
        values = np.asarray(per_node_values, dtype=float)
        if values.shape != (self.num_nodes,):
            raise ValueError(
                f"expected shape ({self.num_nodes},), got {values.shape}"
            )
        per_slot = values.reshape(-1, self._config.nodes_per_slot)
        return np.repeat(per_slot.mean(axis=1), self._config.nodes_per_slot)

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(
                f"node_id {node_id} out of range [0, {self.num_nodes})"
            )

    @staticmethod
    def _readonly(array: np.ndarray) -> np.ndarray:
        view = array.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self._config
        return (
            f"Machine({cfg.grid_x}x{cfg.grid_y} cabinets, "
            f"{cfg.cages_per_cabinet}c/{cfg.slots_per_cage}s/"
            f"{cfg.nodes_per_slot}n = {cfg.num_nodes} nodes)"
        )
