"""Titan-style machine topology.

Titan's physical hierarchy (paper, Section II): a *node* holds one CPU and
one GPU; four nodes form a *slot*; eight slots form a *cage*; three cages
form a *cabinet*; 200 cabinets are arranged in a 25 x 8 floor grid.

:class:`MachineConfig` makes every level configurable so unit tests can use
toy machines while experiments use a full 25 x 8 grid.
"""

from repro.topology.location import NodeLocation
from repro.topology.machine import Machine, MachineConfig, TITAN_CONFIG

__all__ = ["NodeLocation", "Machine", "MachineConfig", "TITAN_CONFIG"]
