"""Physical node locations in a Cray XK7-style machine."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["NodeLocation"]

_CNAME_RE = re.compile(
    r"^c(?P<x>\d+)-(?P<y>\d+)c(?P<cage>\d+)s(?P<slot>\d+)n(?P<node>\d+)$"
)


@dataclass(frozen=True, order=True)
class NodeLocation:
    """Physical coordinates of one node.

    Attributes mirror Cray cname components: cabinet column ``x``, cabinet
    row ``y``, then cage, slot, and node indices within the cabinet.
    """

    x: int
    y: int
    cage: int
    slot: int
    node: int

    def cname(self) -> str:
        """Cray-style physical id, e.g. ``c12-3c1s5n2``."""
        return f"c{self.x}-{self.y}c{self.cage}s{self.slot}n{self.node}"

    @classmethod
    def from_cname(cls, cname: str) -> "NodeLocation":
        """Parse a Cray-style physical id produced by :meth:`cname`."""
        match = _CNAME_RE.match(cname)
        if match is None:
            raise ValueError(f"not a valid cname: {cname!r}")
        return cls(
            x=int(match["x"]),
            y=int(match["y"]),
            cage=int(match["cage"]),
            slot=int(match["slot"]),
            node=int(match["node"]),
        )

    @property
    def cabinet(self) -> tuple[int, int]:
        """Cabinet grid coordinates ``(x, y)``."""
        return (self.x, self.y)

    def same_slot(self, other: "NodeLocation") -> bool:
        """True when both nodes share a physical slot (compute blade)."""
        return (
            self.cabinet == other.cabinet
            and self.cage == other.cage
            and self.slot == other.slot
        )

    def same_cage(self, other: "NodeLocation") -> bool:
        """True when both nodes share a cage."""
        return self.cabinet == other.cabinet and self.cage == other.cage

    def same_cabinet(self, other: "NodeLocation") -> bool:
        """True when both nodes share a cabinet."""
        return self.cabinet == other.cabinet
