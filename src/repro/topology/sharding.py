"""Row-sharded partitioning of the machine for parallel simulation.

The floor grid assigns node ids cabinet-major, so one cabinet **row**
(all ``grid_x`` cabinets with the same ``y``) is a contiguous node-id
range.  Every coupling in the physics substrate is *slot-local* (the
thermal model exchanges heat only within a slot, and a slot never spans
cabinets), so a partition whose boundaries are slot-aligned decomposes
the simulation exactly: each shard can advance its nodes independently
and the merged result is bit-identical to the serial run.

Row shards are slot-aligned by construction.  The halo machinery below
still computes, for any candidate span, the set of *ghost nodes* a shard
would have to exchange each tick — nodes outside the span that share a
slot (thermal coupling) or a cage (recorded cage-average series) with a
node inside it.  For row-aligned spans both sets are provably empty;
:func:`validate_span` enforces that invariant at plan time so a future
partitioning scheme that does cut a slot fails loudly instead of
silently diverging from the serial simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.machine import MachineConfig
from repro.utils.errors import ValidationError

__all__ = ["ShardSpan", "plan_shards", "halo_node_ids", "validate_span"]


@dataclass(frozen=True)
class ShardSpan:
    """One shard's contiguous slice of the machine.

    ``[lo, hi)`` are global node ids; ``[row_lo, row_hi)`` are the
    cabinet rows they cover.  ``index``/``num_shards`` identify the
    shard inside its plan.
    """

    index: int
    num_shards: int
    lo: int
    hi: int
    row_lo: int
    row_hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi:
            raise ValidationError(f"empty or negative span: [{self.lo}, {self.hi})")
        if not 0 <= self.row_lo < self.row_hi:
            raise ValidationError(
                f"empty or negative row span: [{self.row_lo}, {self.row_hi})"
            )

    @property
    def num_nodes(self) -> int:
        """Nodes owned by this shard."""
        return self.hi - self.lo

    @property
    def is_full(self) -> bool:
        """True when the span starts at node 0 and is the only shard."""
        return self.lo == 0 and self.num_shards == 1

    def owns(self, node_id: int) -> bool:
        """Whether ``node_id`` falls inside this span."""
        return self.lo <= node_id < self.hi

    def local_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Span-local indices of the ``global_ids`` that fall inside it."""
        inside = global_ids[(global_ids >= self.lo) & (global_ids < self.hi)]
        return inside - self.lo

    def to_dict(self) -> dict:
        """JSON-serializable form, for store manifests and journals."""
        return {
            "index": self.index,
            "num_shards": self.num_shards,
            "lo": self.lo,
            "hi": self.hi,
            "row_lo": self.row_lo,
            "row_hi": self.row_hi,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ShardSpan":
        """Rebuild a span from :meth:`to_dict` output (extra keys ignored)."""
        return cls(
            index=int(raw["index"]),
            num_shards=int(raw["num_shards"]),
            lo=int(raw["lo"]),
            hi=int(raw["hi"]),
            row_lo=int(raw["row_lo"]),
            row_hi=int(raw["row_hi"]),
        )


def full_span(config: MachineConfig) -> ShardSpan:
    """The degenerate one-shard plan covering the whole machine."""
    return ShardSpan(
        index=0,
        num_shards=1,
        lo=0,
        hi=config.num_nodes,
        row_lo=0,
        row_hi=config.grid_y,
    )


def plan_shards(config: MachineConfig, num_shards: int) -> list[ShardSpan]:
    """Partition the machine into up to ``num_shards`` row-aligned spans.

    The request is clamped to the number of cabinet rows (the finest
    partition that keeps every span row-aligned); rows are distributed as
    evenly as possible, earlier shards taking the remainder.
    """
    if num_shards < 1:
        raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
    effective = min(int(num_shards), config.grid_y)
    row_nodes = config.grid_x * config.nodes_per_cabinet
    base, extra = divmod(config.grid_y, effective)
    spans: list[ShardSpan] = []
    row = 0
    for index in range(effective):
        rows = base + (1 if index < extra else 0)
        span = ShardSpan(
            index=index,
            num_shards=effective,
            lo=row * row_nodes,
            hi=(row + rows) * row_nodes,
            row_lo=row,
            row_hi=row + rows,
        )
        validate_span(span, config)
        spans.append(span)
        row += rows
    return spans


def halo_node_ids(span: ShardSpan, config: MachineConfig) -> np.ndarray:
    """Ghost nodes ``span`` would need from its neighbours each tick.

    The thermal neighbour coupling averages over slots and the recorded
    cage series average over cages, so the halo is the set of nodes
    outside ``[lo, hi)`` that share a slot *or cage* with a node inside
    it.  Cages contain whole slots, so computing the straddle at cage
    granularity covers both couplings.
    """
    per_cage = config.slots_per_cage * config.nodes_per_slot
    first = (span.lo // per_cage) * per_cage
    last = ((span.hi - 1) // per_cage + 1) * per_cage
    covered = np.arange(first, min(last, config.num_nodes))
    return covered[(covered < span.lo) | (covered >= span.hi)]


def validate_span(span: ShardSpan, config: MachineConfig) -> None:
    """Reject spans whose halo is non-empty or that cut a cabinet row.

    A non-empty halo would require a per-tick ghost exchange between
    worker processes; the row-aligned planner never produces one, and the
    simulator refuses to run a span that would (bit-parity with the
    serial run could not be guaranteed by independent workers).
    """
    row_nodes = config.grid_x * config.nodes_per_cabinet
    if span.lo != span.row_lo * row_nodes or span.hi != span.row_hi * row_nodes:
        raise ValidationError(
            f"span [{span.lo}, {span.hi}) does not match rows "
            f"[{span.row_lo}, {span.row_hi}) of {row_nodes}-node cabinet rows"
        )
    if span.hi > config.num_nodes:
        raise ValidationError(
            f"span [{span.lo}, {span.hi}) exceeds machine size {config.num_nodes}"
        )
    halo = halo_node_ids(span, config)
    if halo.size:
        raise ValidationError(
            f"span [{span.lo}, {span.hi}) cuts a slot/cage; would need a "
            f"{halo.size}-node halo exchange"
        )
