"""Telemetry sanitizer: repair a degraded trace before feature building.

The feature builder (:mod:`repro.features.builder`) assumes exactly one
row per (run, node), time-ordered rows, monotonic SBE counter deltas, and
finite sensor statistics.  Real telemetry breaks every one of those
assumptions; :func:`sanitize_trace` restores them:

1. **validate** -- required columns present, metadata fields finite and
   in-range (rows that fail are quarantined);
2. **reorder** -- stable sort back into time order;
3. **dedupe** -- one row per (run, node), keeping the least-corrupt copy
   when duplicates conflict;
4. **reconcile counters** -- a negative SBE delta means the cumulative
   nvidia-smi counter reset between snapshots; the delta is clamped to
   the only defensible floor (zero) and counted;
5. **impute** -- NaN / out-of-range sensor statistics are forward-filled
   from the node's previous sample, then interpolated from slot
   neighbours, then from the column mean;
6. **quarantine** -- rows whose telemetry is mostly corrupt (no credible
   imputation source) are dropped, not guessed at.

On a clean trace every step is a detected no-op and the *original* trace
object is returned bit-identical — sanitization never perturbs the paper
reproduction.  Any repair emits a :class:`DegradedDataWarning`;
``strict=True`` upgrades detection to :class:`TelemetryFaultError`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.trace import SAMPLE_TELEMETRY_COLUMNS, Trace
from repro.utils.errors import DegradedDataWarning, TelemetryFaultError

__all__ = ["SanitizeReport", "sanitize_trace", "SENSOR_ABS_MAX"]

#: Any sensor statistic with magnitude beyond this is treated as missing
#: (physical GPU temperatures/powers and their deltas live far below it).
SENSOR_ABS_MAX = 1.0e4

#: Rows with more than this fraction of corrupt telemetry are quarantined.
QUARANTINE_BAD_FRACTION = 0.5

#: Metadata columns the feature builder reads; all must be present.
REQUIRED_META_COLUMNS = (
    "run_idx",
    "job_id",
    "app_id",
    "node_id",
    "start_minute",
    "end_minute",
    "duration_minutes",
    "n_nodes",
    "gpu_core_hours",
    "gpu_util",
    "max_mem_gb",
    "agg_mem_gb",
    "prev_app_id",
    "sbe_count",
)


@dataclass
class SanitizeReport:
    """What the sanitizer found and repaired."""

    total_rows: int = 0
    rows_out: int = 0
    clean: bool = True
    duplicates_removed: int = 0
    rows_reordered: int = 0
    counter_resets: int = 0
    values_imputed: int = 0
    rows_quarantined: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def quarantined_fraction(self) -> float:
        """Fraction of input rows dropped as irrecoverable."""
        if self.total_rows == 0:
            return 0.0
        return self.rows_quarantined / self.total_rows

    def summary(self) -> str:
        """One-line human-readable repair summary."""
        if self.clean:
            return f"clean ({self.total_rows} rows)"
        return (
            f"{self.total_rows} rows in, {self.rows_out} out: "
            f"{self.duplicates_removed} duplicates removed, "
            f"{self.rows_reordered} rows reordered, "
            f"{self.counter_resets} counter resets reconciled, "
            f"{self.values_imputed} sensor values imputed, "
            f"{self.rows_quarantined} rows quarantined "
            f"({self.quarantined_fraction:.1%})"
        )


def _dedupe_key(run_idx: np.ndarray, node_id: np.ndarray) -> np.ndarray:
    """Collapse (run, node) into one sortable int64 key per row."""
    return (run_idx.astype(np.int64) << 21) | node_id.astype(np.int64)


def sanitize_trace(
    trace: Trace, *, strict: bool = False
) -> tuple[Trace, SanitizeReport]:
    """Validate and repair ``trace``; return ``(repaired, report)``.

    Clean traces are returned as the original object (bit-identical).
    Raises :class:`TelemetryFaultError` when required columns are absent,
    when nothing survives quarantine, or — under ``strict=True`` — when
    any fault at all is detected.
    """
    report = SanitizeReport(total_rows=trace.num_samples, rows_out=trace.num_samples)
    if trace.num_samples == 0:
        report.notes.append("empty trace")
        return trace, report

    s = trace.samples
    missing = [
        name
        for name in (*REQUIRED_META_COLUMNS, *SAMPLE_TELEMETRY_COLUMNS)
        if name not in s
    ]
    if missing:
        raise TelemetryFaultError(
            f"trace samples table is missing required columns: {missing}"
        )

    n = trace.num_samples
    num_nodes = trace.machine.num_nodes
    tele_cols = list(SAMPLE_TELEMETRY_COLUMNS)
    T = np.column_stack([s[name].astype(float) for name in tele_cols])
    bad = ~np.isfinite(T) | (np.abs(T) > SENSOR_ABS_MAX)

    start = s["start_minute"].astype(float)
    end = s["end_minute"].astype(float)
    node = s["node_id"].astype(np.int64)
    sbe = s["sbe_count"].astype(np.int64)

    meta_invalid = (
        ~np.isfinite(start)
        | ~np.isfinite(end)
        | (end < start)
        | (node < 0)
        | (node >= num_nodes)
        | ~np.isfinite(s["duration_minutes"].astype(float))
        | (s["duration_minutes"].astype(float) < 0)
    )
    key = _dedupe_key(s["run_idx"], np.clip(node, 0, (1 << 21) - 1))
    has_duplicates = np.unique(key).size != n
    # Runs completing within the same simulator tick are appended in
    # arbitrary order, so a clean trace is only tick-monotone; flag
    # disorder only beyond one tick of backwards jitter.
    tolerance = float(trace.config.tick_minutes)
    out_of_order = bool(np.any(np.diff(end) < -tolerance))
    has_resets = bool(np.any(sbe < 0))
    has_bad_sensors = bool(bad.any())
    has_invalid_meta = bool(meta_invalid.any())

    if not (
        has_duplicates
        or out_of_order
        or has_resets
        or has_bad_sensors
        or has_invalid_meta
    ):
        return trace, report  # fast path: clean trace, returned untouched

    report.clean = False
    if strict:
        raise TelemetryFaultError(
            "degraded telemetry rejected (strict mode): "
            f"duplicates={has_duplicates} out_of_order={out_of_order} "
            f"counter_resets={has_resets} bad_sensors={has_bad_sensors} "
            f"invalid_metadata={has_invalid_meta}"
        )

    # -- 1. quarantine structurally invalid rows and mostly-dead telemetry
    row_bad_fraction = bad.mean(axis=1)
    quarantine = meta_invalid | (row_bad_fraction > QUARANTINE_BAD_FRACTION)
    report.rows_quarantined = int(quarantine.sum())
    keep = ~quarantine
    if not keep.any():
        raise TelemetryFaultError(
            f"all {n} samples quarantined; telemetry is irrecoverable"
        )

    kept_idx = np.flatnonzero(keep)
    end_k = end[kept_idx]
    key_k = key[kept_idx]
    bad_k = bad[kept_idx]

    # -- 2. restore time order (stable, so clean spans keep their order)
    time_order = np.argsort(end_k, kind="stable")
    report.rows_reordered = int(np.count_nonzero(time_order != np.arange(end_k.size)))

    # -- 3. dedupe (run, node): keep the least-corrupt, earliest copy
    badness = bad_k.sum(axis=1)
    pos_in_time = np.empty(end_k.size, dtype=np.int64)
    pos_in_time[time_order] = np.arange(end_k.size)
    choice_order = np.lexsort((pos_in_time, badness, key_k))
    _, first_of_group = np.unique(key_k[choice_order], return_index=True)
    chosen = choice_order[first_of_group]
    report.duplicates_removed = int(end_k.size - chosen.size)
    chosen = chosen[np.argsort(pos_in_time[chosen], kind="stable")]
    rows = kept_idx[chosen]

    # -- 4. reconcile SBE counter resets (negative deltas -> floor of 0)
    sbe_out = sbe[rows].copy()
    resets = sbe_out < 0
    report.counter_resets = int(resets.sum())
    sbe_out[resets] = 0

    # -- 5. impute corrupt sensor statistics
    T_out = T[rows].copy()
    bad_out = bad[rows]
    report.values_imputed = int(bad_out.sum())
    if report.values_imputed:
        T_out[bad_out] = np.nan
        _impute(T_out, node[rows], trace)

    # -- assemble the repaired trace
    samples: dict[str, np.ndarray] = {}
    for name, col in s.items():
        samples[name] = col[rows]
    for j, name in enumerate(tele_cols):
        samples[name] = T_out[:, j]
    samples["sbe_count"] = sbe_out
    report.rows_out = int(rows.size)

    repaired = Trace(
        config=trace.config,
        samples=samples,
        runs=trace.runs,
        app_names=trace.app_names,
        node_mean_temp=trace.node_mean_temp,
        node_mean_power=trace.node_mean_power,
        node_susceptibility=trace.node_susceptibility,
        recorded_series=trace.recorded_series,
    )
    warnings.warn(
        f"telemetry repaired: {report.summary()}", DegradedDataWarning, stacklevel=2
    )
    return repaired, report


def _impute(T: np.ndarray, node: np.ndarray, trace: Trace) -> None:
    """Fill NaNs in-place: node forward-fill, slot mean, column mean, 0."""
    n, n_cols = T.shape
    order = np.lexsort((np.arange(n), node))
    T_s = T[order]
    node_s = node[order]

    # Forward-fill within each node's time-ordered samples.
    valid = np.isfinite(T_s)
    if not valid.all():
        idx = np.where(valid, np.arange(n)[:, None], -1)
        np.maximum.accumulate(idx, axis=0)
        src = np.clip(idx, 0, None)
        usable = ~valid & (idx >= 0) & (node_s[src] == node_s[:, None])
        rows_i, cols_i = np.nonzero(usable)
        T_s[rows_i, cols_i] = T_s[idx[rows_i, cols_i], cols_i]

    # Neighbour interpolation: mean over the node's slot.
    still = ~np.isfinite(T_s)
    if still.any():
        per_slot = max(1, trace.machine.config.nodes_per_slot)
        slot = node_s // per_slot
        num_slots = int(slot.max()) + 1
        finite = np.isfinite(T_s)
        sums = np.zeros((num_slots, n_cols))
        counts = np.zeros((num_slots, n_cols))
        np.add.at(sums, slot, np.where(finite, T_s, 0.0))
        np.add.at(counts, slot, finite.astype(float))
        with np.errstate(invalid="ignore", divide="ignore"):
            slot_mean = sums / counts
        fill = slot_mean[slot]
        use = still & np.isfinite(fill)
        T_s[use] = fill[use]

    # Column mean, then zero, as last resorts.
    still = ~np.isfinite(T_s)
    if still.any():
        finite = np.isfinite(T_s)
        with np.errstate(invalid="ignore", divide="ignore"):
            col_mean = np.where(
                finite.any(axis=0), np.nansum(np.where(finite, T_s, 0.0), axis=0)
                / np.maximum(finite.sum(axis=0), 1), 0.0,
            )
        T_s[still] = np.broadcast_to(col_mean, T_s.shape)[still]

    T[order] = T_s
