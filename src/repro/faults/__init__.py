"""Telemetry fault injection and hardened ingestion.

Two halves of one robustness story:

* :mod:`repro.faults.injectors` — seeded, composable injectors that
  degrade a clean simulated :class:`~repro.telemetry.trace.Trace` with
  the pathologies of real HPC telemetry (outages, counter resets,
  duplicates, reordering, sensor corruption), logging every fault;
* :mod:`repro.faults.sanitizer` — the repair pass the feature pipeline
  runs on untrusted telemetry: validate, reorder, dedupe, reconcile
  counters, impute, and quarantine instead of crashing.

The round trip ``sanitize_trace(inject_faults(trace)[0])`` is the basis
of the ``faults`` degradation experiment and the property tests.
"""

from repro.faults.injectors import (
    CounterResetInjector,
    DuplicateInjector,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultSpec,
    NodeOutageInjector,
    OutOfOrderInjector,
    SensorCorruptionInjector,
    default_injectors,
    inject_faults,
)
from repro.faults.sanitizer import SanitizeReport, sanitize_trace

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultLog",
    "FaultInjector",
    "NodeOutageInjector",
    "CounterResetInjector",
    "DuplicateInjector",
    "OutOfOrderInjector",
    "SensorCorruptionInjector",
    "default_injectors",
    "inject_faults",
    "SanitizeReport",
    "sanitize_trace",
]
