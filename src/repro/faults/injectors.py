"""Composable, seeded telemetry fault injectors.

The synthetic substrate emits perfectly clean traces; real Titan telemetry
did not.  Each injector here reproduces one documented pathology of the
paper's data sources, applied *post-simulation* to a :class:`Trace`'s
samples table:

* :class:`NodeOutageInjector` -- out-of-band sampler / node downtime:
  whole (run, node) rows silently missing for a node over a time window;
* :class:`CounterResetInjector` -- nvidia-smi SBE counters reset between
  the pre- and post-job snapshots, making the observed delta negative;
* :class:`DuplicateInjector` -- rows duplicated by at-least-once log
  shipping, optionally with conflicting re-read sensor values;
* :class:`OutOfOrderInjector` -- rows delivered out of time order;
* :class:`SensorCorruptionInjector` -- NaN, stuck, or clipped readings in
  the telemetry statistic columns.

Every injector draws from its own named random stream (via
:class:`~repro.utils.rng.SeedSequenceFactory`), so adding or re-ordering
injectors never perturbs another injector's draws, and records what it
did in a :class:`FaultLog`.  The original trace is never mutated.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.telemetry.trace import SAMPLE_TELEMETRY_COLUMNS, Trace
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultLog",
    "FaultInjector",
    "NodeOutageInjector",
    "CounterResetInjector",
    "DuplicateInjector",
    "OutOfOrderInjector",
    "SensorCorruptionInjector",
    "default_injectors",
    "inject_faults",
]

MINUTES_PER_DAY = 1440.0

#: Sentinel a clipped (railed) sensor reports; far outside physical range.
CLIP_SENTINEL = 1.0e6


# ----------------------------------------------------------------------
# Fault bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence."""

    kind: str
    node_id: int  # -1 when the fault is not tied to one node
    start_minute: float
    end_minute: float
    rows_affected: int
    detail: str = ""


@dataclass
class FaultLog:
    """Ordered record of everything the injectors did to a trace."""

    seed: int
    intensity: float
    events: list[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        """Append one event."""
        self.events.append(event)

    def kinds(self) -> list[str]:
        """Distinct fault kinds present, in first-seen order."""
        seen: list[str] = []
        for event in self.events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def rows_affected(self, kind: str | None = None) -> int:
        """Total rows touched, optionally restricted to one fault kind."""
        return sum(
            e.rows_affected for e in self.events if kind is None or e.kind == kind
        )

    def summary(self) -> dict[str, int]:
        """Rows affected per fault kind."""
        return {kind: self.rows_affected(kind) for kind in self.kinds()}

    def digest(self) -> str:
        """Stable content hash of the log (for determinism checks)."""
        hasher = hashlib.sha256()
        hasher.update(f"{self.seed}:{self.intensity:.9f}".encode())
        for e in self.events:
            hasher.update(
                f"{e.kind}|{e.node_id}|{e.start_minute:.6f}|"
                f"{e.end_minute:.6f}|{e.rows_affected}|{e.detail}".encode()
            )
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.events)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Intensity knobs for the injector stack.

    ``intensity`` is the master dial in ``[0, 1]``; each per-fault rate
    below is multiplied by it, so ``intensity=0`` is exactly a no-op and
    the defaults give a realistic mix at any dial setting.
    """

    intensity: float = 0.25
    #: Expected node-outages per node over the trace.
    outage_rate: float = 0.5
    #: Mean outage length as a fraction of the trace duration.
    outage_span: float = 0.05
    #: Fraction of rows whose SBE counter delta crosses a reset.
    counter_reset_rate: float = 0.15
    #: Fraction of rows duplicated by the collector.
    duplicate_rate: float = 0.10
    #: Fraction of rows delivered out of order.
    shuffle_rate: float = 0.20
    #: Fraction of rows with at least one corrupt sensor statistic.
    sensor_rate: float = 0.20
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValidationError(
                f"fault intensity must be in [0, 1], got {self.intensity}"
            )

    @classmethod
    def preset(cls, name: str, *, seed: int = 0) -> "FaultSpec":
        """Named presets: ``clean``, ``mild``, ``moderate``, ``severe``."""
        levels = {"clean": 0.0, "mild": 0.1, "moderate": 0.25, "severe": 0.5}
        try:
            return cls(intensity=levels[name], seed=seed)
        except KeyError:
            raise ValidationError(
                f"unknown fault preset {name!r}; options: {sorted(levels)}"
            ) from None

    def scaled(self, rate: float) -> float:
        """A per-fault rate after applying the master intensity."""
        return float(rate) * float(self.intensity)


# ----------------------------------------------------------------------
# Injectors
# ----------------------------------------------------------------------
class FaultInjector:
    """Base class: transforms a samples table, recording into a log."""

    #: Fault kind recorded in :class:`FaultEvent`.
    kind = "abstract"

    def apply(
        self,
        samples: dict[str, np.ndarray],
        spec: FaultSpec,
        rng: np.random.Generator,
        log: FaultLog,
    ) -> dict[str, np.ndarray]:
        """Return a (possibly new) samples dict with this fault applied."""
        raise NotImplementedError


class NodeOutageInjector(FaultInjector):
    """Drop all samples of a node inside randomly placed outage windows."""

    kind = "outage"

    def apply(self, samples, spec, rng, log):
        n = samples["node_id"].shape[0]
        if n == 0:
            return samples
        nodes = np.unique(samples["node_id"].astype(int))
        n_outages = int(round(spec.scaled(spec.outage_rate) * nodes.size))
        if n_outages == 0:
            return samples
        t_lo = float(samples["start_minute"].min())
        t_hi = float(samples["end_minute"].max())
        horizon = max(t_hi - t_lo, 1.0)
        keep = np.ones(n, dtype=bool)
        chosen = rng.choice(nodes, size=n_outages, replace=True)
        for node in chosen:
            length = rng.exponential(spec.outage_span * horizon)
            start = t_lo + rng.uniform(0.0, horizon)
            end = min(start + length, t_hi)
            hit = (
                (samples["node_id"] == node)
                & (samples["start_minute"] >= start)
                & (samples["start_minute"] <= end)
            )
            keep &= ~hit
            log.record(
                FaultEvent(
                    kind=self.kind,
                    node_id=int(node),
                    start_minute=float(start),
                    end_minute=float(end),
                    rows_affected=int(hit.sum()),
                )
            )
        if keep.all():
            return samples
        return {name: col[keep] for name, col in samples.items()}


class CounterResetInjector(FaultInjector):
    """Make SBE counter deltas cross a reset, yielding negative values.

    nvidia-smi reports a cumulative counter; when the driver reloads or
    the node reboots between the pre- and post-job snapshots the counter
    restarts from zero and the recorded delta goes negative by (roughly)
    the pre-snapshot counter value.
    """

    kind = "counter_reset"

    def apply(self, samples, spec, rng, log):
        n = samples["sbe_count"].shape[0]
        rate = spec.scaled(spec.counter_reset_rate)
        if n == 0 or rate <= 0.0:
            return samples
        hit = rng.random(n) < rate
        count = int(hit.sum())
        if count == 0:
            return samples
        out = dict(samples)
        sbe = out["sbe_count"].astype(np.int64, copy=True)
        rollback = rng.integers(1, 25, size=count, dtype=np.int64)
        sbe[hit] = sbe[hit] - rollback
        out["sbe_count"] = sbe
        starts = samples["start_minute"][hit]
        ends = samples["end_minute"][hit]
        log.record(
            FaultEvent(
                kind=self.kind,
                node_id=-1,
                start_minute=float(starts.min()),
                end_minute=float(ends.max()),
                rows_affected=count,
                detail=f"rollback_total={int(rollback.sum())}",
            )
        )
        return out


class DuplicateInjector(FaultInjector):
    """Append duplicate rows; half get conflicting re-read sensor values."""

    kind = "duplicate"

    def apply(self, samples, spec, rng, log):
        n = samples["node_id"].shape[0]
        rate = spec.scaled(spec.duplicate_rate)
        count = int(round(rate * n))
        if count == 0:
            return samples
        picks = rng.choice(n, size=count, replace=False)
        out = {}
        for name, col in samples.items():
            out[name] = np.concatenate([col, col[picks]])
        # Conflict on the second half of the duplicates: jitter every
        # telemetry statistic by a few percent, as a re-read would.
        conflict = picks[count // 2 :]
        if conflict.size:
            rows = np.arange(n, n + count)[count // 2 :]
            for name in telemetry_columns_present(out):
                col = out[name].astype(float, copy=True)
                col[rows] *= 1.0 + rng.normal(0.0, 0.03, size=rows.size)
                out[name] = col
        log.record(
            FaultEvent(
                kind=self.kind,
                node_id=-1,
                start_minute=float(samples["start_minute"][picks].min()),
                end_minute=float(samples["end_minute"][picks].max()),
                rows_affected=count,
                detail=f"conflicting={conflict.size}",
            )
        )
        return out


class OutOfOrderInjector(FaultInjector):
    """Permute a fraction of rows so arrival order breaks time order."""

    kind = "out_of_order"

    def apply(self, samples, spec, rng, log):
        n = samples["node_id"].shape[0]
        rate = spec.scaled(spec.shuffle_rate)
        count = int(round(rate * n))
        if count < 2:
            return samples
        picks = rng.choice(n, size=count, replace=False)
        order = np.arange(n)
        order[np.sort(picks)] = picks  # scatter picked rows to sorted slots
        out = {name: col[order] for name, col in samples.items()}
        log.record(
            FaultEvent(
                kind=self.kind,
                node_id=-1,
                start_minute=float(samples["start_minute"].min()),
                end_minute=float(samples["end_minute"].max()),
                rows_affected=count,
            )
        )
        return out


class SensorCorruptionInjector(FaultInjector):
    """NaN / stuck / clipped readings in telemetry statistic columns."""

    kind = "sensor"

    def apply(self, samples, spec, rng, log):
        n = samples["node_id"].shape[0]
        rate = spec.scaled(spec.sensor_rate)
        columns = telemetry_columns_present(samples)
        count = int(round(rate * n))
        if count == 0 or not columns:
            return samples
        rows = rng.choice(n, size=count, replace=False)
        modes = rng.choice(4, size=count, p=(0.45, 0.2, 0.2, 0.15))
        out = dict(samples)
        touched = {"nan": 0, "stuck": 0, "clipped": 0, "dead": 0}
        # Each corrupt row loses a random subset of columns to one mode;
        # a "dead" row (sampler died mid-run) loses every column.
        n_cols = rng.integers(1, max(2, len(columns) // 4), size=count)
        for row, mode, k in zip(rows, modes, n_cols):
            if mode == 3:
                cols = np.arange(len(columns))
            else:
                cols = rng.choice(len(columns), size=int(k), replace=False)
            for c in cols:
                name = columns[c]
                col = out[name]
                if col is samples[name]:
                    col = col.astype(float, copy=True)
                    out[name] = col
                if mode in (0, 3):
                    col[row] = np.nan
                    touched["dead" if mode == 3 else "nan"] += 1
                elif mode == 1:
                    # Stuck at the node's first reading of this quantity.
                    node = samples["node_id"][row]
                    first = np.flatnonzero(samples["node_id"] == node)[0]
                    col[row] = samples[name][first]
                    touched["stuck"] += 1
                else:
                    col[row] = CLIP_SENTINEL
                    touched["clipped"] += 1
        log.record(
            FaultEvent(
                kind=self.kind,
                node_id=-1,
                start_minute=float(samples["start_minute"][rows].min()),
                end_minute=float(samples["end_minute"][rows].max()),
                rows_affected=count,
                detail=f"nan={touched['nan']} stuck={touched['stuck']} "
                f"clipped={touched['clipped']} dead={touched['dead']}",
            )
        )
        return out


def telemetry_columns_present(samples: dict[str, np.ndarray]) -> list[str]:
    """Telemetry statistic columns actually present in a samples table."""
    return [name for name in SAMPLE_TELEMETRY_COLUMNS if name in samples]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def default_injectors() -> list[FaultInjector]:
    """The standard injector stack, in application order."""
    return [
        NodeOutageInjector(),
        CounterResetInjector(),
        SensorCorruptionInjector(),
        DuplicateInjector(),
        OutOfOrderInjector(),
    ]


def inject_faults(
    trace: Trace,
    spec: FaultSpec | None = None,
    *,
    seed: int | None = None,
    injectors: list[FaultInjector] | None = None,
) -> tuple[Trace, FaultLog]:
    """Apply the injector stack to ``trace``; return a faulty copy + log.

    ``seed`` overrides ``spec.seed``.  With ``spec.intensity == 0`` the
    returned trace shares the original's arrays unchanged (exact no-op).
    """
    spec = spec or FaultSpec()
    if seed is not None:
        spec = replace(spec, seed=int(seed))
    log = FaultLog(seed=spec.seed, intensity=spec.intensity)
    if spec.intensity == 0.0 or trace.num_samples == 0:
        return trace, log
    factory = SeedSequenceFactory(spec.seed)
    samples = trace.samples
    for injector in injectors if injectors is not None else default_injectors():
        rng = factory.generator(f"faults/{injector.kind}")
        samples = injector.apply(samples, spec, rng, log)
    faulty = Trace(
        config=trace.config,
        samples=samples,
        runs=trace.runs,
        app_names=trace.app_names,
        node_mean_temp=trace.node_mean_temp,
        node_mean_power=trace.node_mean_power,
        node_susceptibility=trace.node_susceptibility,
        recorded_series=trace.recorded_series,
    )
    return faulty, log
