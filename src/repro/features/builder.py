"""Builds the model-ready feature matrix from a trace.

One output row per (run, node) sample.  Telemetry statistics come straight
from the trace's samples table (the out-of-band sampler computed them
online); history features are computed here, causally, via
:class:`~repro.features.history.HistoryIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import SpanTracer, get_registry
from repro.features.history import HistoryIndex, dedupe_job_events
from repro.features.schema import (
    FeatureSchema,
    GROUP_APP,
    GROUP_HIST,
    GROUP_LOCATION,
    GROUP_TP,
)
from repro.telemetry.trace import PRE_WINDOWS_MINUTES, Trace
from repro.utils.errors import ValidationError

__all__ = [
    "FeatureMatrix",
    "SampleTableBuilder",
    "build_features",
    "build_features_from_store",
    "compute_top_apps",
]

MINUTES_PER_DAY = 1440.0
_STAT_SUFFIXES = ("mean", "std", "dmean", "dstd")


def compute_top_apps(app_ids: np.ndarray, top_k: int) -> np.ndarray:
    """The ``top_k`` most frequent app ids, most frequent first.

    This is the app vocabulary behind the ``app_is_topNN`` indicator
    columns.  The streaming engine (:mod:`repro.serve.engine`) must use
    the *same* ranking as the batch builder for its rows to be
    bit-identical, so both call this helper.
    """
    app_ids = np.asarray(app_ids, dtype=int)
    return np.argsort(np.bincount(app_ids))[::-1][: int(top_k)]


@dataclass
class FeatureMatrix:
    """Feature matrix plus labels, schema, and per-sample metadata."""

    X: np.ndarray
    y: np.ndarray
    schema: FeatureSchema
    #: Per-sample metadata columns (ids, times, raw counts, run shape).
    meta: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValidationError("X and y disagree on sample count")
        if self.X.shape[1] != len(self.schema):
            raise ValidationError(
                f"X has {self.X.shape[1]} columns, schema has {len(self.schema)}"
            )

    @property
    def num_samples(self) -> int:
        """Number of rows."""
        return self.X.shape[0]

    def rows(self, mask: np.ndarray) -> "FeatureMatrix":
        """Row subset sharing the schema."""
        mask = np.asarray(mask)
        return FeatureMatrix(
            X=self.X[mask],
            y=self.y[mask],
            schema=self.schema,
            meta={k: v[mask] for k, v in self.meta.items()},
        )

    def columns(
        self,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
    ) -> tuple[np.ndarray, list[str]]:
        """Column subset by tag selection; returns ``(X_subset, names)``."""
        indices = self.schema.select(include=include, exclude=exclude)
        return self.X[:, indices], self.schema.names_for(indices)


class SampleTableBuilder:
    """Assembles a :class:`FeatureMatrix` from a trace."""

    def __init__(self, trace: Trace, *, top_k_apps: int = 16) -> None:
        if trace.num_samples == 0:
            raise ValidationError("trace has no samples")
        self._trace = trace
        self._top_k_apps = int(top_k_apps)

    def build(self) -> FeatureMatrix:
        """Compute all features for every sample in the trace."""
        trace = self._trace
        s = trace.samples
        top_apps = compute_top_apps(s["app_id"].astype(int), self._top_k_apps)
        node_index, app_index = self._history_indices()
        schema, columns, node_hist_today = _chunk_columns(
            s, trace.machine, top_apps, node_index, app_index
        )
        # Allocation-level history: mean node history over the run's nodes.
        run_idx = s["run_idx"].astype(int)
        schema.add("hist_alloc_today", GROUP_HIST, "hist_local", "hist_today")
        columns.append(
            np.asarray(_alloc_history(run_idx, node_hist_today), dtype=float)
        )

        X = np.column_stack(columns)
        meta = {
            "run_idx": run_idx,
            "job_id": s["job_id"].astype(int),
            "node_id": s["node_id"].astype(int),
            "app_id": s["app_id"].astype(int),
            "start_minute": s["start_minute"].astype(float),
            "end_minute": s["end_minute"].astype(float),
            "duration_minutes": s["duration_minutes"].astype(float),
            "n_nodes": s["n_nodes"].astype(int),
            "gpu_core_hours": s["gpu_core_hours"].astype(float),
            "sbe_count": s["sbe_count"].astype(np.int64),
        }
        return FeatureMatrix(
            X=X,
            y=(s["sbe_count"] > 0).astype(int),
            schema=schema,
            meta=meta,
        )

    def _history_indices(self) -> tuple[HistoryIndex, HistoryIndex]:
        """Node-keyed and app-keyed causal SBE event indices."""
        s = self._trace.samples
        return _history_indices_from_arrays(
            s["job_id"], s["node_id"], s["end_minute"], s["sbe_count"], s["app_id"]
        )


def _chunk_columns(
    s: dict[str, np.ndarray],
    machine,
    top_apps: np.ndarray,
    node_index: HistoryIndex,
    app_index: HistoryIndex,
) -> tuple[FeatureSchema, list[np.ndarray], np.ndarray]:
    """Feature columns for one chunk of sample rows.

    Every feature except ``hist_alloc_today`` is a per-row computation
    once the global inputs (the top-app vocabulary and the two causal
    history indices) are fixed, so this function serves both the batch
    builder (one chunk = the whole table) and the out-of-core builder
    (one chunk = one store segment) with the *same* arithmetic — which
    is what makes their outputs bit-identical.  Returns
    ``(schema, columns, node_hist_today)``; the caller appends the
    allocation-history column, which needs all rows at once.
    """
    n = next(iter(s.values())).shape[0]
    schema = FeatureSchema()
    columns: list[np.ndarray] = []

    def add(name: str, values: np.ndarray, *tags: str) -> None:
        schema.add(name, *tags)
        columns.append(np.asarray(values, dtype=float))

    # ------------------------------------------------------------------
    # Application features (temporal, paper §V-A)
    # ------------------------------------------------------------------
    app_id = s["app_id"].astype(int)
    add("app_code", app_id, GROUP_APP)
    for rank, app in enumerate(top_apps):
        add(f"app_is_top{rank:02d}", (app_id == app).astype(float), GROUP_APP)
    prev_app = s["prev_app_id"].astype(int)
    add("prev_app_code", prev_app, GROUP_APP)
    add("prev_app_same", (prev_app == app_id).astype(float), GROUP_APP)
    add("duration_minutes", s["duration_minutes"], GROUP_APP)
    add("n_nodes", s["n_nodes"], GROUP_APP)
    add("gpu_core_hours", s["gpu_core_hours"], GROUP_APP)
    add("gpu_util", s["gpu_util"], GROUP_APP)
    add("max_mem_gb", s["max_mem_gb"], GROUP_APP)
    add("agg_mem_gb", s["agg_mem_gb"], GROUP_APP)

    # ------------------------------------------------------------------
    # Temperature/power features (current run, pre-windows, neighbours)
    # ------------------------------------------------------------------
    for quantity in ("gpu_temp", "gpu_power"):
        for suffix in _STAT_SUFFIXES:
            name = f"{quantity}_{suffix}"
            add(name, s[name], GROUP_TP, "tp_cur")
    for window in PRE_WINDOWS_MINUTES:
        for quantity in ("temp", "power"):
            for suffix in _STAT_SUFFIXES:
                name = f"pre{window}_{quantity}_{suffix}"
                add(name, s[name], GROUP_TP, "tp_prev")
    for quantity in ("cpu_temp", "nei_temp", "nei_power"):
        for suffix in _STAT_SUFFIXES:
            name = f"{quantity}_{suffix}"
            add(name, s[name], GROUP_TP, "tp_nei")

    # ------------------------------------------------------------------
    # Node location (spatial, paper §V-B)
    # ------------------------------------------------------------------
    node_id = s["node_id"].astype(int)
    add("loc_cabinet_x", machine.cabinet_x[node_id], GROUP_LOCATION)
    add("loc_cabinet_y", machine.cabinet_y[node_id], GROUP_LOCATION)
    cfg = machine.config
    per_cab = cfg.nodes_per_cabinet
    within = node_id % per_cab
    per_cage = cfg.slots_per_cage * cfg.nodes_per_slot
    add("loc_cage", within // per_cage, GROUP_LOCATION)
    add("loc_slot", (within % per_cage) // cfg.nodes_per_slot, GROUP_LOCATION)
    add("loc_node_in_slot", within % cfg.nodes_per_slot, GROUP_LOCATION)
    add("loc_node_code", node_id, GROUP_LOCATION)

    # ------------------------------------------------------------------
    # SBE history (causal; log1p-compressed counts)
    # ------------------------------------------------------------------
    start = s["start_minute"].astype(float)
    day = MINUTES_PER_DAY

    def windows(index: HistoryIndex, keys: np.ndarray) -> dict[str, np.ndarray]:
        return {
            "today": index.batch_between(keys, start - day, start),
            "yesterday": index.batch_between(keys, start - 2 * day, start - day),
            "before": index.batch_between(keys, np.full(n, -np.inf), start - 2 * day),
        }

    node_hist = windows(node_index, node_id)
    app_hist = windows(app_index, app_id)
    machine_hist = {
        "today": node_index.global_batch_between(start - day, start),
        "yesterday": node_index.global_batch_between(start - 2 * day, start - day),
        "before": node_index.global_batch_between(
            np.full(n, -np.inf), start - 2 * day
        ),
    }
    for length in ("today", "yesterday", "before"):
        add(
            f"hist_node_{length}",
            np.log1p(node_hist[length]),
            GROUP_HIST,
            "hist_local",
            f"hist_{length}",
        )
        add(
            f"hist_app_{length}",
            np.log1p(app_hist[length]),
            GROUP_HIST,
            "hist_app",
            f"hist_{length}",
        )
        add(
            f"hist_machine_{length}",
            np.log1p(machine_hist[length]),
            GROUP_HIST,
            "hist_global",
            f"hist_{length}",
        )
    return schema, columns, node_hist["today"]


def _alloc_history(run_idx: np.ndarray, node_hist_today: np.ndarray) -> np.ndarray:
    """Mean node history over each run's nodes (needs *all* rows at once)."""
    run_compact, run_pos = np.unique(run_idx, return_inverse=True)
    sums = np.bincount(run_pos, weights=node_hist_today.astype(float))
    counts = np.bincount(run_pos).astype(float)
    return np.log1p(sums[run_pos] / counts[run_pos])


def _history_indices_from_arrays(
    job_id: np.ndarray,
    node_id: np.ndarray,
    end_minute: np.ndarray,
    sbe_count: np.ndarray,
    app_id: np.ndarray,
) -> tuple[HistoryIndex, HistoryIndex]:
    """Node-keyed and app-keyed causal SBE indices from sample columns.

    Rows with ``sbe_count == 0`` never contribute an event, so callers
    may pass either the full table or just its positive rows (in global
    row order) — the out-of-core builder does the latter, which is what
    keeps its pass over a segmented store memory-bounded.
    """
    nodes, minutes, counts = dedupe_job_events(job_id, node_id, end_minute, sbe_count)
    node_index = HistoryIndex(nodes, minutes, counts)
    # App-keyed events reuse the deduped (job, node) events but need
    # the app of each event; map via (job, node) -> app from samples.
    app_of = {}
    for job, node, app in zip(
        np.asarray(job_id, dtype=int),
        np.asarray(node_id, dtype=int),
        np.asarray(app_id, dtype=int),
    ):
        app_of[(job, node)] = app
    # Rebuild keyed-by-app arrays by re-deriving job ids from samples:
    # dedupe_job_events lost them, so recompute with jobs retained.
    jobs, nodes2, minutes2, counts2 = _dedupe_with_jobs(
        job_id, node_id, end_minute, sbe_count
    )
    apps = np.asarray(
        [app_of[(int(j), int(nd))] for j, nd in zip(jobs, nodes2)], dtype=int
    )
    app_index = HistoryIndex(apps, minutes2, counts2)
    return node_index, app_index


def _dedupe_with_jobs(
    job_id: np.ndarray,
    node_id: np.ndarray,
    end_minute: np.ndarray,
    sbe_count: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`dedupe_job_events` but also returning job ids."""
    job_ids = np.asarray(job_id, dtype=int)
    node_ids = np.asarray(node_id, dtype=int)
    end_minutes = np.asarray(end_minute, dtype=float)
    sbe_counts = np.asarray(sbe_count, dtype=np.int64)
    positive = sbe_counts > 0
    job_ids, node_ids, end_minutes, sbe_counts = (
        job_ids[positive],
        node_ids[positive],
        end_minutes[positive],
        sbe_counts[positive],
    )
    if job_ids.size == 0:
        empty = np.empty(0, dtype=int)
        return empty, empty, np.empty(0), np.empty(0, dtype=np.int64)
    order = np.lexsort((end_minutes, node_ids, job_ids))
    job_s, node_s, end_s, cnt_s = (
        job_ids[order],
        node_ids[order],
        end_minutes[order],
        sbe_counts[order],
    )
    is_last = np.ones(job_s.size, dtype=bool)
    is_last[:-1] = (job_s[:-1] != job_s[1:]) | (node_s[:-1] != node_s[1:])
    return job_s[is_last], node_s[is_last], end_s[is_last], cnt_s[is_last]


def build_features(
    trace: Trace, *, top_k_apps: int = 16, sanitize: bool = False
) -> FeatureMatrix:
    """Convenience wrapper around :class:`SampleTableBuilder`.

    With ``sanitize=True`` the trace first passes through
    :func:`repro.faults.sanitizer.sanitize_trace`, which repairs or
    quarantines degraded telemetry (and is an exact no-op on clean
    traces).  Use it whenever the trace did not come straight from the
    simulator.
    """
    if sanitize:
        from repro.faults.sanitizer import sanitize_trace

        trace, _ = sanitize_trace(trace)
    spans = SpanTracer()
    with spans.span("features_build"):
        matrix = SampleTableBuilder(trace, top_k_apps=top_k_apps).build()
    _record_feature_metrics("batch", matrix, spans)
    return matrix


def _record_feature_metrics(
    builder: str, matrix: FeatureMatrix, spans: SpanTracer
) -> None:
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_features_rows_total", "Feature rows built, per builder kind."
    ).inc(matrix.num_samples, builder=builder)
    registry.counter(
        "repro_features_builds_total", "Feature builds completed."
    ).inc(builder=builder)
    registry.counter(
        "repro_features_seconds_total",
        "Wall time spent building features.",
        wall=True,
    ).inc(spans.get("features_build"), builder=builder)
    seconds = spans.get("features_build")
    if seconds > 0:
        registry.gauge(
            "repro_features_rows_per_sec",
            "Feature rows per wall second (last build).",
            wall=True,
        ).set(matrix.num_samples / seconds, builder=builder)


def build_features_from_store(
    store, *, top_k_apps: int = 16, strict: bool = False
) -> FeatureMatrix:
    """Build the feature matrix from a segmented store, out of core.

    Reads the store (:class:`repro.store.SegmentedTraceStore`) one
    segment at a time — never the whole samples table — in two passes:

    1. accumulate the global app frequency table and collect the (rare)
       positive rows that seed the causal history indices;
    2. compute every per-row feature chunk-by-chunk via the same
       :func:`_chunk_columns` the batch builder uses, scattering rows
       into their global positions, then finish the allocation-history
       column on the full (scalar-per-row) scratch arrays.

    The result is **bit-identical** to
    ``build_features(store.load_trace())`` — the golden feature digests
    do not distinguish the two paths — while peak memory is one segment
    plus the output matrix.  Damaged segments heal first (or raise
    :class:`~repro.utils.errors.SegmentCorruptionError` under
    ``strict``).
    """
    from repro.topology.machine import Machine

    store.recover(strict=strict)
    spans = SpanTracer()
    spans.start("features_build")
    total, dests = store.row_layout()
    if total == 0:
        raise ValidationError("store has no samples")
    machine = Machine(store.config().machine)
    num_segments = store.num_segments

    # Pass 1: global app frequencies + positive rows in global row order.
    app_counts = np.zeros(0, dtype=np.int64)
    positive_parts: list[tuple[np.ndarray, ...]] = []
    for index in range(num_segments):
        s = store.segment_samples(index)
        seg_counts = np.bincount(s["app_id"].astype(int))
        if seg_counts.size > app_counts.size:
            app_counts = np.concatenate(
                [
                    app_counts,
                    np.zeros(seg_counts.size - app_counts.size, dtype=np.int64),
                ]
            )
        app_counts[: seg_counts.size] += seg_counts
        positive = np.asarray(s["sbe_count"], dtype=np.int64) > 0
        positive_parts.append(
            (
                dests[index][positive],
                s["job_id"][positive],
                s["node_id"][positive],
                s["end_minute"][positive],
                s["sbe_count"][positive],
                s["app_id"][positive],
            )
        )
    # Same array np.bincount would produce over the full table, so the
    # (tie-sensitive) argsort ranking matches the batch builder's.
    top_apps = np.argsort(app_counts)[::-1][: int(top_k_apps)]
    dest_p, job_p, node_p, end_p, sbe_p, app_p = (
        np.concatenate([part[i] for part in positive_parts])
        for i in range(6)
    )
    order = np.argsort(dest_p)
    node_index, app_index = _history_indices_from_arrays(
        job_p[order], node_p[order], end_p[order], sbe_p[order], app_p[order]
    )

    # Pass 2: per-row features chunk-by-chunk, scattered to global rows.
    schema: FeatureSchema | None = None
    X: np.ndarray | None = None
    hist_today = None
    y = np.empty(total, dtype=np.int64)
    meta = {
        "run_idx": np.empty(total, dtype=np.int64),
        "job_id": np.empty(total, dtype=np.int64),
        "node_id": np.empty(total, dtype=np.int64),
        "app_id": np.empty(total, dtype=np.int64),
        "start_minute": np.empty(total, dtype=float),
        "end_minute": np.empty(total, dtype=float),
        "duration_minutes": np.empty(total, dtype=float),
        "n_nodes": np.empty(total, dtype=np.int64),
        "gpu_core_hours": np.empty(total, dtype=float),
        "sbe_count": np.empty(total, dtype=np.int64),
    }
    for index in range(num_segments):
        s = store.segment_samples(index)
        seg_schema, columns, seg_hist_today = _chunk_columns(
            s, machine, top_apps, node_index, app_index
        )
        if X is None:
            schema = seg_schema
            schema.add("hist_alloc_today", GROUP_HIST, "hist_local", "hist_today")
            X = np.empty((total, len(schema)), dtype=float)
            hist_today = np.empty(total, dtype=seg_hist_today.dtype)
        d = dests[index]
        for j, column in enumerate(columns):
            X[d, j] = column
        hist_today[d] = seg_hist_today
        y[d] = (s["sbe_count"] > 0).astype(int)
        meta["run_idx"][d] = s["run_idx"].astype(int)
        meta["job_id"][d] = s["job_id"].astype(int)
        meta["node_id"][d] = s["node_id"].astype(int)
        meta["app_id"][d] = s["app_id"].astype(int)
        meta["start_minute"][d] = s["start_minute"].astype(float)
        meta["end_minute"][d] = s["end_minute"].astype(float)
        meta["duration_minutes"][d] = s["duration_minutes"].astype(float)
        meta["n_nodes"][d] = s["n_nodes"].astype(int)
        meta["gpu_core_hours"][d] = s["gpu_core_hours"].astype(float)
        meta["sbe_count"][d] = s["sbe_count"].astype(np.int64)
    X[:, len(schema) - 1] = np.asarray(
        _alloc_history(meta["run_idx"], hist_today), dtype=float
    )
    matrix = FeatureMatrix(X=X, y=y, schema=schema, meta=meta)
    spans.stop()
    _record_feature_metrics("store", matrix, spans)
    return matrix
