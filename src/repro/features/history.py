"""Causal SBE-history indices.

The paper's history features ("total error count over the preceding day at
the node level and for the whole machine", "SBE rate in the past 24 hours
of the given application and the nodes allocated to it") must be computed
*causally*: at a run's start time, only SBEs whose batch job had already
completed — and therefore had its nvidia-smi delta resolved — are
observable.  :class:`HistoryIndex` stores, per key (node id, app id, or
the single global key), the time-sorted cumulative SBE counts of completed
jobs and answers window-count queries with binary search.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["HistoryIndex", "IncrementalHistoryIndex", "dedupe_job_events"]


def dedupe_job_events(
    job_ids: np.ndarray,
    node_ids: np.ndarray,
    end_minutes: np.ndarray,
    sbe_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse per-(run, node) rows into per-(job, node) SBE events.

    A batch job's SBE delta is attributed to *every* aprun of the job (the
    paper's conservative assumption), so summing sample rows would double
    count errors for multi-aprun jobs.  This keeps one event per
    ``(job, node)`` at the job's last aprun end.

    Returns ``(node_ids, event_minutes, counts)`` for rows with counts > 0.
    """
    job_ids = np.asarray(job_ids)
    node_ids = np.asarray(node_ids)
    end_minutes = np.asarray(end_minutes, dtype=float)
    sbe_counts = np.asarray(sbe_counts)
    if not (job_ids.shape == node_ids.shape == end_minutes.shape == sbe_counts.shape):
        raise ValidationError("event arrays must share one shape")
    positive = sbe_counts > 0
    if not positive.any():
        return (np.empty(0, dtype=int), np.empty(0), np.empty(0, dtype=np.int64))
    job_ids = job_ids[positive]
    node_ids = node_ids[positive]
    end_minutes = end_minutes[positive]
    sbe_counts = sbe_counts[positive]
    # For each (job, node), keep the row with the latest end time; counts
    # are identical across a job's apruns by construction.
    order = np.lexsort((end_minutes, node_ids, job_ids))
    job_s, node_s, end_s, cnt_s = (
        job_ids[order],
        node_ids[order],
        end_minutes[order],
        sbe_counts[order],
    )
    is_last = np.ones(job_s.size, dtype=bool)
    is_last[:-1] = (job_s[:-1] != job_s[1:]) | (node_s[:-1] != node_s[1:])
    return (
        node_s[is_last].astype(int),
        end_s[is_last],
        cnt_s[is_last].astype(np.int64),
    )


class HistoryIndex:
    """Per-key cumulative SBE counts over time with window queries."""

    def __init__(self, keys: np.ndarray, minutes: np.ndarray, counts: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=int)
        minutes = np.asarray(minutes, dtype=float)
        counts = np.asarray(counts, dtype=np.int64)
        if not (keys.shape == minutes.shape == counts.shape):
            raise ValidationError("index arrays must share one shape")
        self._series: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        order = np.lexsort((minutes, keys))
        keys, minutes, counts = keys[order], minutes[order], counts[order]
        boundaries = np.nonzero(np.diff(keys))[0] + 1
        for chunk in np.split(np.arange(keys.size), boundaries):
            if chunk.size == 0:
                continue
            key = int(keys[chunk[0]])
            times = minutes[chunk]
            self._series[key] = (times, np.cumsum(counts[chunk]))
        total_order = np.argsort(minutes, kind="mergesort")
        self._global = (minutes[total_order], np.cumsum(counts[total_order]))

    def count_between(self, key: int, start_minute: float, end_minute: float) -> int:
        """SBEs for ``key`` whose event time falls in ``[start, end)``."""
        series = self._series.get(int(key))
        if series is None:
            return 0
        return self._window(series, start_minute, end_minute)

    def count_before(self, key: int, minute: float) -> int:
        """SBEs for ``key`` strictly before ``minute``."""
        return self.count_between(key, -np.inf, minute)

    def global_between(self, start_minute: float, end_minute: float) -> int:
        """Machine-wide SBEs in ``[start, end)``."""
        return self._window(self._global, start_minute, end_minute)

    def global_before(self, minute: float) -> int:
        """Machine-wide SBEs strictly before ``minute``."""
        return self._window(self._global, -np.inf, minute)

    def keys_before(self, minute: float) -> np.ndarray:
        """Keys with at least one SBE strictly before ``minute``.

        This is the paper's stage-1 predicate: "has this node seen an SBE
        before?" evaluated causally at prediction time.
        """
        keys = [
            key
            for key, (times, _) in self._series.items()
            if times[0] < minute
        ]
        return np.asarray(sorted(keys), dtype=int)

    def batch_between(
        self, keys: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`count_between` over parallel arrays.

        Queries are grouped by key so each per-key series is searched with
        one vectorized ``searchsorted`` pair, which is what makes building
        history features for hundreds of thousands of samples cheap.
        """
        keys = np.asarray(keys, dtype=int)
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        if not (keys.shape == starts.shape == ends.shape):
            raise ValidationError("batch query arrays must share one shape")
        out = np.zeros(keys.size, dtype=np.int64)
        order = np.argsort(keys, kind="mergesort")
        sorted_keys = keys[order]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
        for chunk in np.split(order, boundaries):
            if chunk.size == 0:
                continue
            series = self._series.get(int(keys[chunk[0]]))
            if series is None:
                continue
            times, cums = series
            padded = np.concatenate([[0], cums])
            hi = np.searchsorted(times, ends[chunk], side="left")
            lo = np.searchsorted(times, starts[chunk], side="left")
            out[chunk] = padded[hi] - padded[lo]
        return out

    def global_batch_between(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`global_between` over parallel arrays."""
        times, cums = self._global
        padded = np.concatenate([[0], cums])
        hi = np.searchsorted(times, np.asarray(ends, dtype=float), side="left")
        lo = np.searchsorted(times, np.asarray(starts, dtype=float), side="left")
        return padded[hi] - padded[lo]

    @staticmethod
    def _window(
        series: tuple[np.ndarray, np.ndarray], start: float, end: float
    ) -> int:
        times, cums = series
        hi = int(np.searchsorted(times, end, side="left"))
        lo = int(np.searchsorted(times, start, side="left"))
        upper = int(cums[hi - 1]) if hi > 0 else 0
        lower = int(cums[lo - 1]) if lo > 0 else 0
        return upper - lower


class IncrementalHistoryIndex:
    """Event-at-a-time counterpart of :class:`HistoryIndex`.

    The streaming feature engine cannot rebuild a batch index per event,
    so this class accepts one ``(key, minute, count)`` event at a time —
    in non-decreasing minute order, which is how an online collector sees
    them — and answers the same window queries with the same semantics:
    an event counts toward ``[start, end)`` when ``start <= t < end``
    (``searchsorted(..., side="left")`` in the batch index, ``bisect_left``
    here), so a batch index over the first *n* events and an incremental
    index fed those same *n* events agree exactly.
    """

    def __init__(self) -> None:
        self._times: dict[int, list[float]] = {}
        self._cums: dict[int, list[int]] = {}
        self._global_times: list[float] = []
        self._global_cums: list[int] = []
        self._last_minute = -np.inf

    def __len__(self) -> int:
        """Number of events applied so far."""
        return len(self._global_times)

    @property
    def last_minute(self) -> float:
        """Minute of the most recent event (``-inf`` when empty)."""
        return self._last_minute

    def add(self, key: int, minute: float, count: int) -> None:
        """Apply one SBE event; minutes must be non-decreasing."""
        minute = float(minute)
        if minute < self._last_minute:
            raise ValidationError(
                f"events must arrive in time order: {minute} after "
                f"{self._last_minute}"
            )
        self._last_minute = minute
        times = self._times.setdefault(int(key), [])
        cums = self._cums.setdefault(int(key), [])
        times.append(minute)
        cums.append((cums[-1] if cums else 0) + int(count))
        self._global_times.append(minute)
        self._global_cums.append(
            (self._global_cums[-1] if self._global_cums else 0) + int(count)
        )

    def count_between(self, key: int, start_minute: float, end_minute: float) -> int:
        """SBEs for ``key`` whose event time falls in ``[start, end)``."""
        times = self._times.get(int(key))
        if not times:
            return 0
        return self._window(times, self._cums[int(key)], start_minute, end_minute)

    def count_before(self, key: int, minute: float) -> int:
        """SBEs for ``key`` strictly before ``minute``."""
        return self.count_between(key, -np.inf, minute)

    def global_between(self, start_minute: float, end_minute: float) -> int:
        """Machine-wide SBEs in ``[start, end)``."""
        return self._window(
            self._global_times, self._global_cums, start_minute, end_minute
        )

    def global_before(self, minute: float) -> int:
        """Machine-wide SBEs strictly before ``minute``."""
        return self.global_between(-np.inf, minute)

    def keys_before(self, minute: float) -> np.ndarray:
        """Keys with at least one SBE strictly before ``minute``.

        The online form of the stage-1 offender predicate; matches
        :meth:`HistoryIndex.keys_before` on the same event prefix.
        """
        keys = [
            key for key, times in self._times.items() if times and times[0] < minute
        ]
        return np.asarray(sorted(keys), dtype=int)

    @staticmethod
    def _window(
        times: list[float], cums: list[int], start: float, end: float
    ) -> int:
        hi = bisect_left(times, end)
        lo = bisect_left(times, start)
        upper = cums[hi - 1] if hi > 0 else 0
        lower = cums[lo - 1] if lo > 0 else 0
        return upper - lower
