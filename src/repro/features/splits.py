"""The paper's sliding time splits (DS1, DS2, DS3).

Each sub-dataset trains on 3.5 months of samples and tests on the
following two weeks, at three two-week offsets; the test:train size ratio
falls in the 20-25% rule-of-thumb band the paper cites.  The simulated
horizon is shorter than Titan's, so spans are expressed in days and scale
with the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ValidationError

__all__ = ["DatasetSplit", "make_paper_splits"]

MINUTES_PER_DAY = 1440.0


@dataclass(frozen=True)
class DatasetSplit:
    """One train/test pair defined by time windows (in trace minutes)."""

    name: str
    train_start: float
    train_end: float
    test_end: float

    def train_mask(self, start_minutes: np.ndarray) -> np.ndarray:
        """Samples whose run starts inside the training window."""
        start_minutes = np.asarray(start_minutes, dtype=float)
        return (start_minutes >= self.train_start) & (start_minutes < self.train_end)

    def test_mask(self, start_minutes: np.ndarray) -> np.ndarray:
        """Samples whose run starts inside the testing window."""
        start_minutes = np.asarray(start_minutes, dtype=float)
        return (start_minutes >= self.train_end) & (start_minutes < self.test_end)


def make_paper_splits(
    *,
    train_days: float = 84.0,
    test_days: float = 14.0,
    offsets_days: tuple[float, ...] = (0.0, 14.0, 28.0),
    duration_days: float | None = None,
) -> list[DatasetSplit]:
    """Return DS1..DSn sliding splits.

    When ``duration_days`` is given, splits that would extend past the
    trace raise immediately rather than silently producing empty test
    sets.
    """
    if train_days <= 0 or test_days <= 0:
        raise ValidationError("train_days and test_days must be positive")
    splits = []
    for i, offset in enumerate(offsets_days, start=1):
        train_start = offset * MINUTES_PER_DAY
        train_end = (offset + train_days) * MINUTES_PER_DAY
        test_end = (offset + train_days + test_days) * MINUTES_PER_DAY
        if duration_days is not None and test_end > duration_days * MINUTES_PER_DAY:
            raise ValidationError(
                f"split DS{i} needs {offset + train_days + test_days} days "
                f"but the trace has only {duration_days}"
            )
        splits.append(
            DatasetSplit(
                name=f"DS{i}",
                train_start=train_start,
                train_end=train_end,
                test_end=test_end,
            )
        )
    return splits
