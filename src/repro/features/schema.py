"""Feature schema: names, group tags, and selection helpers.

Tags (a feature can carry several):

* ``app`` -- application-related temporal features (paper §V-A);
* ``tp`` -- temperature/power features, refined by ``tp_cur`` (current run
  on the target node), ``tp_prev`` (pre-execution windows), ``tp_nei``
  (CPU on the same node + slot neighbours, the spatial set of §V-B);
* ``hist`` -- SBE-history features, refined by scope ``hist_local`` /
  ``hist_global`` and by length ``hist_today`` / ``hist_yesterday`` /
  ``hist_before``;
* ``location`` -- the node-location features of §V-B.

The paper's ablations map to tag selections: Fig. 11 uses {hist, tp, app},
Table IV uses the ``tp_*`` refinements, Fig. 12 uses the ``hist_*``
refinements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import ValidationError

__all__ = [
    "FeatureSchema",
    "GROUP_APP",
    "GROUP_TP",
    "GROUP_HIST",
    "GROUP_LOCATION",
]

GROUP_APP = "app"
GROUP_TP = "tp"
GROUP_HIST = "hist"
GROUP_LOCATION = "location"


@dataclass
class FeatureSchema:
    """Ordered feature names with their tag sets."""

    names: list[str] = field(default_factory=list)
    tags: dict[str, frozenset[str]] = field(default_factory=dict)

    def add(self, name: str, *tags: str) -> None:
        """Register a feature column with its tags."""
        if name in self.tags:
            raise ValidationError(f"duplicate feature name: {name}")
        self.names.append(name)
        self.tags[name] = frozenset(tags)

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Column index of ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise ValidationError(f"unknown feature: {name}") from None

    def select(
        self,
        include: set[str] | None = None,
        exclude: set[str] | None = None,
    ) -> list[int]:
        """Column indices whose tags intersect ``include`` minus ``exclude``.

        ``include=None`` starts from all columns.  A column is dropped when
        any of its tags is in ``exclude``.
        """
        indices = []
        for i, name in enumerate(self.names):
            tags = self.tags[name]
            if include is not None and not tags & include:
                continue
            if exclude is not None and tags & exclude:
                continue
            indices.append(i)
        if not indices:
            raise ValidationError(
                f"feature selection is empty (include={include}, exclude={exclude})"
            )
        return indices

    def names_for(self, indices: list[int]) -> list[str]:
        """Feature names at the given column indices."""
        return [self.names[i] for i in indices]
