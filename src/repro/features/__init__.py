"""Feature engineering (paper Section V).

Turns a :class:`~repro.telemetry.trace.Trace` into the model-ready sample
table: one row per ``(application, node)`` pair per run, with temporal
features (application identity and utilization, temperature/power
statistics for the current run and the 5/15/30/60-minute pre-execution
windows), spatial features (node location, CPU temperature, slot-neighbour
telemetry), and SBE-history features (node / machine / application /
allocation level, split into today / yesterday / before) — all computed
causally from information available at run start (history) or run end
(telemetry), exactly as the paper describes.

Features carry group tags so the paper's ablation experiments (feature
groups in Fig. 11, temperature/power variants in Table IV, history
variants in Fig. 12) are column selections, not re-implementations.
"""

from repro.features.builder import (
    FeatureMatrix,
    SampleTableBuilder,
    build_features,
    compute_top_apps,
)
from repro.features.history import HistoryIndex, IncrementalHistoryIndex
from repro.features.schema import (
    FeatureSchema,
    GROUP_APP,
    GROUP_HIST,
    GROUP_LOCATION,
    GROUP_TP,
)
from repro.features.splits import DatasetSplit, make_paper_splits

__all__ = [
    "FeatureMatrix",
    "SampleTableBuilder",
    "build_features",
    "compute_top_apps",
    "HistoryIndex",
    "IncrementalHistoryIndex",
    "FeatureSchema",
    "GROUP_APP",
    "GROUP_HIST",
    "GROUP_LOCATION",
    "GROUP_TP",
    "DatasetSplit",
    "make_paper_splits",
]
