"""Shared low-level utilities used across the :mod:`repro` packages.

This package intentionally contains only dependency-free building blocks:

* :mod:`repro.utils.errors` -- the exception hierarchy.
* :mod:`repro.utils.io` -- checksummed, atomic file writes.
* :mod:`repro.utils.rng` -- hierarchical, reproducible random streams.
* :mod:`repro.utils.stats` -- online (Welford) statistics and helpers.
* :mod:`repro.utils.ringbuffer` -- fixed-capacity numeric history buffers.
* :mod:`repro.utils.tables` -- plain-text table/grid rendering.
* :mod:`repro.utils.validation` -- small argument-checking helpers.
"""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    DegradedDataWarning,
    ModelRegistryError,
    NotFittedError,
    SimulationError,
    TelemetryFaultError,
    TraceIOError,
    ValidationError,
)
from repro.utils.io import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)
from repro.utils.ringbuffer import RingBuffer
from repro.utils.rng import SeedSequenceFactory, child_rng
from repro.utils.stats import OnlineStats, diff_stats, empirical_cdf
from repro.utils.tables import format_grid, format_table
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "SimulationError",
    "TelemetryFaultError",
    "TraceIOError",
    "ModelRegistryError",
    "DegradedDataWarning",
    "ValidationError",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "sha256_bytes",
    "sha256_file",
    "RingBuffer",
    "SeedSequenceFactory",
    "child_rng",
    "OnlineStats",
    "diff_stats",
    "empirical_cdf",
    "format_grid",
    "format_table",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
]
