"""Streaming statistics and small distribution helpers.

The out-of-band telemetry sampler must aggregate months of per-minute
samples without storing them, so the accumulators here are all one-pass
(Welford) and mergeable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OnlineStats", "diff_stats", "empirical_cdf", "spearman"]


@dataclass
class OnlineStats:
    """One-pass mean/variance accumulator (Welford's algorithm).

    Supports scalar and vectorized updates as well as merging two
    accumulators (parallel Welford), which the simulator uses to combine
    per-chunk aggregates.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def update(self, value: float) -> None:
        """Fold a single observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update_many(self, values: np.ndarray) -> None:
        """Fold an array of observations into the accumulator."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        other = OnlineStats(
            count=int(values.size),
            mean=float(values.mean()),
            _m2=float(((values - values.mean()) ** 2).sum()),
            min=float(values.min()),
            max=float(values.max()),
        )
        self.merge(other)

    def merge(self, other: "OnlineStats") -> None:
        """Merge another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta**2 * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation of the observations seen so far."""
        return float(np.sqrt(self.variance))

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(mean, std)``; NaNs when empty."""
        if self.count == 0:
            return (float("nan"), float("nan"))
        return (self.mean, self.std)


def diff_stats(series: np.ndarray) -> tuple[float, float]:
    """Mean and std of consecutive differences of ``series``.

    This is the paper's "dynamic behaviour" feature: the mean and standard
    deviation of the difference between two consecutive temperature (or
    power) measurements.  Returns ``(0.0, 0.0)`` for series shorter than 2,
    matching a perfectly flat profile.
    """
    series = np.asarray(series, dtype=float).ravel()
    if series.size < 2:
        return (0.0, 0.0)
    deltas = np.diff(series)
    return (float(deltas.mean()), float(deltas.std()))


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fractions)`` for plotting a CDF."""
    values = np.sort(np.asarray(values, dtype=float).ravel())
    if values.size == 0:
        return values, values
    fractions = np.arange(1, values.size + 1, dtype=float) / values.size
    return values, fractions


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation coefficient of two equal-length arrays.

    Implemented as Pearson correlation of midranks (ties averaged), which
    is the textbook definition and avoids importing scipy into low-level
    modules.  Returns NaN for degenerate inputs (length < 2 or a constant
    array).
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return float("nan")
    rx = _midrank(x)
    ry = _midrank(y)
    sx = rx.std()
    sy = ry.std()
    if sx == 0.0 or sy == 0.0:
        return float("nan")
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def _midrank(values: np.ndarray) -> np.ndarray:
    """Midranks (1-based, ties get the average of their rank span)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average ranks over groups of tied values.
    sorted_vals = values[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks
