"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination was supplied."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or vocabulary)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class SimulationError(ReproError, RuntimeError):
    """The trace simulator reached an inconsistent internal state."""


class TraceIOError(ReproError, RuntimeError):
    """A trace archive on disk is missing, corrupt, or truncated.

    Carries the offending ``path`` so callers (e.g. the experiment
    context's disk cache) can report it and fall back to re-simulation.
    """

    def __init__(self, path, message: str) -> None:
        self.path = path
        super().__init__(f"{message} [{path}]")


class SegmentCorruptionError(TraceIOError):
    """A segmented-store segment is missing, torn, or fails its checksum.

    Raised by :mod:`repro.store` in strict mode instead of quarantining
    and re-simulating the damaged span.  Carries the segment ``index``
    (``None`` when the store manifest itself is damaged) on top of the
    offending path.
    """

    def __init__(self, path, message: str, *, index: int | None = None) -> None:
        self.index = index
        super().__init__(path, message)


class DegradedDataError(ReproError, RuntimeError):
    """Strict-mode escalation of :class:`DegradedDataWarning`.

    Under ``--strict`` every degraded-data condition that would normally
    be repaired or skipped with a warning (corrupt cache entry,
    quarantined segment, skipped registry version, ...) becomes this
    typed error and the CLI exits 1.
    """


class ModelRegistryError(ReproError, RuntimeError):
    """A model-registry artifact is missing, corrupt, or incompatible.

    Raised by :mod:`repro.serve.registry` when an artifact fails its
    checksum, has an unsupported format version, or declares a feature
    schema that does not match what the caller expects.  Carries the
    offending ``path`` when one exists.
    """

    def __init__(self, message: str, *, path=None) -> None:
        self.path = path
        super().__init__(f"{message} [{path}]" if path is not None else message)


class SimulatedCrashError(ReproError, RuntimeError):
    """A deliberately induced crash (``--crash-after``) for resume tests.

    Raised by :func:`repro.serve.replay.serve_replay` when the caller
    asked the replay to die after N events, and by
    :func:`repro.store.pipeline.simulate_trace_to_store` after N segment
    commits; the checkpoint/resume tooling catches it to exercise the
    recovery path.  Carries the amount of work done before the crash and
    the unit it is counted in.
    """

    def __init__(self, events_done: int, unit: str = "events") -> None:
        self.events_done = events_done
        self.unit = unit
        super().__init__(
            f"simulated crash after {events_done} {unit} (resume with --resume)"
        )


class TelemetryFaultError(ReproError, RuntimeError):
    """Telemetry is too corrupt for the sanitizer to recover.

    Raised when a trace fails structural validation (missing columns),
    when strict sanitization is requested on degraded data, or when
    quarantining would discard every sample.
    """


class DegradedDataWarning(UserWarning):
    """Telemetry was repaired or discarded; results may be degraded.

    Emitted (never raised) by the sanitizer when it imputes, dedupes,
    reconciles counters, or quarantines, and by the experiment context
    when a corrupt disk cache forces re-simulation.
    """
