"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination was supplied."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or vocabulary)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class SimulationError(ReproError, RuntimeError):
    """The trace simulator reached an inconsistent internal state."""
