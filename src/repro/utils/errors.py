"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination was supplied."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or vocabulary)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a fitted model was called before ``fit``."""


class SimulationError(ReproError, RuntimeError):
    """The trace simulator reached an inconsistent internal state."""


class TraceIOError(ReproError, RuntimeError):
    """A trace archive on disk is missing, corrupt, or truncated.

    Carries the offending ``path`` so callers (e.g. the experiment
    context's disk cache) can report it and fall back to re-simulation.
    """

    def __init__(self, path, message: str) -> None:
        self.path = path
        super().__init__(f"{message} [{path}]")


class ModelRegistryError(ReproError, RuntimeError):
    """A model-registry artifact is missing, corrupt, or incompatible.

    Raised by :mod:`repro.serve.registry` when an artifact fails its
    checksum, has an unsupported format version, or declares a feature
    schema that does not match what the caller expects.  Carries the
    offending ``path`` when one exists.
    """

    def __init__(self, message: str, *, path=None) -> None:
        self.path = path
        super().__init__(f"{message} [{path}]" if path is not None else message)


class SimulatedCrashError(ReproError, RuntimeError):
    """A deliberately induced crash (``--crash-after``) for resume tests.

    Raised by :func:`repro.serve.replay.serve_replay` when the caller
    asked the replay to die after N events; the checkpoint/resume
    tooling catches it to exercise the recovery path.  Carries the
    number of events processed before the crash.
    """

    def __init__(self, events_done: int) -> None:
        self.events_done = events_done
        super().__init__(
            f"simulated crash after {events_done} events (resume with --resume)"
        )


class TelemetryFaultError(ReproError, RuntimeError):
    """Telemetry is too corrupt for the sanitizer to recover.

    Raised when a trace fails structural validation (missing columns),
    when strict sanitization is requested on degraded data, or when
    quarantining would discard every sample.
    """


class DegradedDataWarning(UserWarning):
    """Telemetry was repaired or discarded; results may be degraded.

    Emitted (never raised) by the sanitizer when it imputes, dedupes,
    reconciles counters, or quarantines, and by the experiment context
    when a corrupt disk cache forces re-simulation.
    """
