"""Fixed-capacity numeric ring buffer.

The out-of-band sampler keeps, per node, only the most recent hour of
telemetry (the longest pre-execution window the feature extractor ever
asks for).  A ring buffer bounds memory regardless of trace length.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["RingBuffer"]


class RingBuffer:
    """A float ring buffer returning its contents in insertion order."""

    def __init__(self, capacity: int) -> None:
        check_positive(capacity, "capacity")
        self._data = np.empty(int(capacity), dtype=float)
        self._capacity = int(capacity)
        self._start = 0
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    def __len__(self) -> int:
        return self._size

    def append(self, value: float) -> None:
        """Append ``value``, evicting the oldest value when full."""
        end = (self._start + self._size) % self._capacity
        self._data[end] = value
        if self._size < self._capacity:
            self._size += 1
        else:
            self._start = (self._start + 1) % self._capacity

    def extend(self, values: np.ndarray) -> None:
        """Append each element of ``values`` in order."""
        for value in np.asarray(values, dtype=float).ravel():
            self.append(float(value))

    def last(self, n: int | None = None) -> np.ndarray:
        """Return the most recent ``n`` values (all when ``n`` is None).

        The result is a fresh array ordered oldest-to-newest.
        """
        if n is None or n > self._size:
            n = self._size
        if n <= 0:
            return np.empty(0, dtype=float)
        end = self._start + self._size
        indices = np.arange(end - n, end) % self._capacity
        return self._data[indices].copy()

    def clear(self) -> None:
        """Drop all contents."""
        self._start = 0
        self._size = 0
