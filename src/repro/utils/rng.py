"""Hierarchical, reproducible random-number streams.

The trace simulator draws randomness for many independent concerns (node
susceptibility, job arrivals, thermal noise, SBE injection...).  Tying them
all to one generator would make every statistic sensitive to the order of
draws; instead each concern gets its own named child stream derived from a
single root seed, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSequenceFactory", "child_rng"]


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceFactory:
    """Derives named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  Two factories built with the same root
        seed produce identical streams for identical names, regardless of
        the order in which streams are requested.
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._root_seed

    def generator(self, name: str, *indices: int) -> np.random.Generator:
        """Return the generator for stream ``name`` (plus integer indices).

        ``indices`` allow per-entity streams, e.g. ``("thermal-noise", 17)``
        for node 17, without string formatting at call sites.
        """
        entropy = [self._root_seed, _name_to_entropy(name), *map(int, indices)]
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Return a sub-factory whose streams are namespaced under ``name``."""
        mixed = (self._root_seed * 0x9E3779B97F4A7C15 + _name_to_entropy(name)) % (
            2**63
        )
        return SeedSequenceFactory(mixed)


def child_rng(
    rng_or_seed: np.random.Generator | int | None,
) -> np.random.Generator:
    """Coerce ``rng_or_seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.  This is the single entry point all public
    ``random_state`` arguments funnel through.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        return rng_or_seed
    return np.random.default_rng(rng_or_seed)
