"""Tiny argument-checking helpers shared across the library.

Each helper raises :class:`repro.utils.errors.ValidationError` with a
message naming the offending parameter, and returns the (possibly coerced)
value so checks can be used inline in assignments.
"""

from __future__ import annotations

from typing import Any, Collection, TypeVar

from repro.utils.errors import ValidationError

__all__ = ["check_positive", "check_nonnegative", "check_fraction", "check_in"]

T = TypeVar("T")


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1)`` when not inclusive)."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_in(value: T, options: Collection[Any], name: str) -> T:
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        raise ValidationError(
            f"{name} must be one of {sorted(map(repr, options))}, got {value!r}"
        )
    return value
