"""Hardened file IO: SHA-256 checksums and atomic temp-then-rename writes.

Shared by the trace archive (:mod:`repro.telemetry.trace`) and the model
registry (:mod:`repro.serve.registry`).  The invariant both rely on: a
reader never observes a half-written file.  Writers stage content in a
sibling temp file (same directory, so the final ``os.replace`` is an
atomic rename on every mainstream filesystem) and the temp file is
removed on any failure.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.utils.errors import TraceIOError

__all__ = [
    "sha256_file",
    "sha256_bytes",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_write_pickle",
    "read_pickle_checked",
]


def sha256_file(path: str | Path) -> str:
    """SHA-256 hex digest of a file, streamed in chunks."""
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def sha256_bytes(data: bytes) -> str:
    """SHA-256 hex digest of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


@contextmanager
def atomic_write(path: str | Path) -> Iterator[Path]:
    """Yield a sibling temp path; publish it to ``path`` on clean exit.

    The caller writes the temp file however it likes (binary stream,
    ``np.savez``, ...).  On normal exit the temp file is renamed over
    ``path``; on exception it is removed and ``path`` is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_write(path) as tmp:
        tmp.write_bytes(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically write ``text`` to ``path``."""
    with atomic_write(path) as tmp:
        tmp.write_text(text)


def atomic_write_json(path: str | Path, obj, *, indent: int = 2) -> None:
    """Atomically serialize ``obj`` as JSON to ``path``."""
    atomic_write_text(path, json.dumps(obj, indent=indent, sort_keys=True))


def atomic_write_pickle(path: str | Path, obj) -> str:
    """Atomically pickle ``obj`` to ``path``; returns the payload checksum.

    The checksum is over the serialized bytes actually written, so a
    manifest recording it can later prove the payload was not truncated
    or tampered with (the registry and checkpoint stores both do this).
    """
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    atomic_write_bytes(path, data)
    return sha256_bytes(data)


def read_pickle_checked(path: str | Path, *, checksum: str | None = None):
    """Unpickle ``path``, optionally verifying a recorded checksum first.

    Raises :class:`TraceIOError` when the file is missing, fails the
    checksum, or does not unpickle — the caller decides whether that is
    fatal or just means "skip this artifact".
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise TraceIOError(path, f"cannot read pickle payload: {exc}") from exc
    if checksum is not None and sha256_bytes(data) != checksum:
        raise TraceIOError(path, "pickle payload failed its checksum")
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise TraceIOError(path, f"cannot unpickle payload: {exc}") from exc
