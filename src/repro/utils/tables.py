"""Plain-text rendering of tables and cabinet grids.

The benchmark harness reproduces the paper's tables and figure *data*; these
helpers print them in an aligned, human-readable form so benchmark output can
be compared to the paper side by side.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_grid"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    rendered_rows = [
        [_render_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    columns = [list(col) for col in zip(*([list(headers)] + rendered_rows))]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_grid(
    grid: np.ndarray,
    *,
    title: str | None = None,
    levels: str = " .:-=+*#%@",
) -> str:
    """Render a 2-D array as an ASCII heat map (min -> max over ``levels``).

    Rows are printed top-to-bottom with the highest row index first so the
    output orientation matches the paper's cabinet-grid figures (y upward).
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    finite = grid[np.isfinite(grid)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo if hi > lo else 1.0
    lines = []
    if title:
        lines.append(f"{title}  (min={lo:.3g}, max={hi:.3g})")
    for y in range(grid.shape[0] - 1, -1, -1):
        cells = []
        for x in range(grid.shape[1]):
            value = grid[y, x]
            if not np.isfinite(value):
                cells.append("?")
                continue
            idx = int((value - lo) / span * (len(levels) - 1))
            cells.append(levels[idx])
        lines.append(f"{y:2d} |" + "".join(cells))
    lines.append("   +" + "-" * grid.shape[1])
    return "\n".join(lines)


def _render_cell(cell: object, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float) or isinstance(cell, np.floating):
        return float_fmt.format(float(cell))
    return str(cell)
