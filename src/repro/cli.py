"""Command-line interface.

Subcommands::

    repro simulate --preset default --out trace        # simulate + save
    repro --jobs 4 simulate --out trace --shards 4     # sharded (bit-identical)
    repro --jobs 4 experiment all                      # parallel fan-out
    repro characterize --preset default                # figs 1-8 stats
    repro evaluate --preset default --split DS1 --model gbdt
    repro experiment fig10 table2 ...                  # named artifacts
    repro experiment all                               # the full sweep
    repro faults --intensities 0,0.1,0.25 --seed 7     # degradation curve
    repro simulate --out t --scenario regime-change    # scripted cluster life
    repro serve-replay --registry runs/registry        # online-path replay
    repro --backend numba serve-replay --registry r    # compiled scoring kernel
    repro serve-replay --registry r --chaos 0.25       # chaos replay
    repro serve-replay --registry r --drift            # drift-guarded retrains
    repro resilience --intensities 0,0.25 --seed 7     # availability curve
    repro registry verify --registry runs/registry     # checksum audit
    repro registry rollback --registry r --to 2        # re-point the head
    repro store simulate --out runs/store --segments 8 # segmented trace
    repro store verify --store runs/store              # checksum audit
    repro store recover --store runs/store             # heal bad segments
    repro store inject --store runs/store --kind torn  # disk-fault drill
    repro store digest --store runs/store              # streamed digest
    repro --segmented experiment all                   # out-of-core sweep
    repro --obs on --obs-snapshot obs.json simulate --out trace
    repro obs report obs.json                          # render a snapshot
    repro obs diff before.json after.json              # compare two

The top-level ``--strict`` flag escalates every degraded-data repair
(corrupt cache entry, quarantined segment, sanitizer fix-up, ...) into a
typed :class:`~repro.utils.errors.DegradedDataError` with exit status 1,
for pipelines that must fail loudly rather than self-heal.

All subcommands share the preset-keyed trace cache (see
``repro.experiments.runner.default_cache_dir``).  Library failures
(:class:`~repro.utils.errors.ReproError`) exit with status 1 and a
one-line message on stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings

from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from repro.experiments.registry import run_experiments
from repro.experiments.faults_experiment import DEFAULT_INTENSITIES, run_faults
from repro.experiments.resilience_experiment import (
    DEFAULT_INTENSITIES as RESILIENCE_INTENSITIES,
    run_resilience,
)
from repro.experiments.presets import PRESETS, preset_config
from repro.ml.kernels import set_backend
from repro.scenarios import scenario_preset, scenario_preset_names
from repro.obs import (
    configure as obs_configure,
    diff_snapshots,
    get_registry,
    load_snapshot,
    render_diff,
    render_report,
    write_snapshot,
)
from repro.telemetry.simulator import simulate_trace
from repro.utils.errors import (
    DegradedDataError,
    DegradedDataWarning,
    ReproError,
    ValidationError,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU SBE prediction reproduction (DSN 2018)",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=sorted(PRESETS),
        help="simulation scale preset",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read/write the on-disk trace cache",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sharded simulation and experiment "
        "fan-out (results are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="escalate every degraded-data repair (corrupt cache entry, "
        "quarantined segment, ...) into a typed error with exit 1 "
        "instead of warning and self-healing",
    )
    parser.add_argument(
        "--segmented",
        action="store_true",
        help="produce/consume the trace through the segmented on-disk "
        "store (out of core; results are bit-identical)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="scoring-kernel backend: 'numpy' (the default) or 'numba' "
        "(bit-identical scores; falls back to numpy with a warning when "
        "numba is not installed)",
    )
    parser.add_argument(
        "--obs",
        default=None,
        choices=["on", "off", "sample"],
        help="observability recording mode for this run (default: the "
        "REPRO_OBS environment variable, then 'on'); instrumentation "
        "is digest-neutral in every mode",
    )
    parser.add_argument(
        "--obs-snapshot",
        default=None,
        metavar="PATH",
        help="after the command finishes, write the obs metrics snapshot "
        "(JSON, with its deterministic digest) to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a trace and save it")
    sim.add_argument("--out", required=True, help="output path (without extension)")
    sim.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="row-shard count for the simulation (default: the --jobs "
        "value; merged output is bit-identical to a serial run)",
    )
    sim.add_argument(
        "--scenario",
        default=None,
        choices=sorted(scenario_preset_names()),
        help="script cluster life over the trace (seasonal drift, "
        "maintenance, SBE storms, ...); omitted = bit-identical to "
        "today's output",
    )

    sub.add_parser("characterize", help="run the characterization experiments")

    ev = sub.add_parser("evaluate", help="train and evaluate one predictor")
    ev.add_argument("--split", default="DS1")
    ev.add_argument(
        "--model",
        default="gbdt",
        choices=["lr", "gbdt", "svm", "nn", "basic_a", "basic_b", "basic_c", "random"],
    )

    ex = sub.add_parser("experiment", help="run named experiments (or 'all')")
    ex.add_argument("ids", nargs="+", help=f"ids from {sorted(EXPERIMENTS)} or 'all'")

    fa = sub.add_parser(
        "faults", help="fault-injection degradation sweep (F1 vs intensity)"
    )
    fa.add_argument(
        "--intensities",
        default=None,
        help="comma-separated fault intensities in [0,1] "
        f"(default: {','.join(str(x) for x in DEFAULT_INTENSITIES)})",
    )
    fa.add_argument(
        "--seed", type=int, default=0, help="fault-injection seed (not the trace seed)"
    )
    fa.add_argument("--split", default="DS1")
    fa.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])

    sv = sub.add_parser(
        "serve-replay",
        help="replay the trace through the online serving path "
        "(registry + streaming features + micro-batch scoring)",
    )
    sv.add_argument(
        "--registry", required=True, help="model registry root directory"
    )
    sv.add_argument("--split", default="DS1")
    sv.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])
    sv.add_argument(
        "--batch-size", type=int, default=256, help="scorer micro-batch size"
    )
    sv.add_argument(
        "--flush-deadline",
        type=float,
        default=30.0,
        help="max event-time minutes a row may wait before scoring",
    )
    sv.add_argument(
        "--retrain-every",
        type=float,
        default=None,
        help="periodic retrain cadence in days (off by default)",
    )
    sv.add_argument(
        "--retrain-window-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="restrict every refit to rows resolved within this sliding "
        "window (default: all rows since start)",
    )
    sv.add_argument(
        "--drift",
        action="store_true",
        help="arm the drift detectors and the guarded-retrain governor "
        "(holdout validation + automatic rollback)",
    )
    sv.add_argument("--seed", type=int, default=0, help="stage-2 model seed")
    sv.add_argument(
        "--fast", action="store_true", help="reduced-capacity stage-2 model"
    )
    sv.add_argument(
        "--sanitize",
        action="store_true",
        help="run the fault sanitizer on the trace before replay",
    )
    sv.add_argument(
        "--chaos",
        type=float,
        default=None,
        metavar="INTENSITY",
        help="serve-layer chaos intensity in [0,1] (off by default)",
    )
    sv.add_argument(
        "--chaos-seed", type=int, default=0, help="chaos-plan seed"
    )
    sv.add_argument(
        "--checkpoint-dir",
        default=None,
        help="commit resumable replay state under this directory",
    )
    sv.add_argument(
        "--checkpoint-every",
        type=int,
        default=2000,
        metavar="EVENTS",
        help="events between checkpoints (with --checkpoint-dir)",
    )
    sv.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest checkpoint under --checkpoint-dir",
    )
    sv.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="EVENTS",
        help="simulate a crash after this many events (resume test hook)",
    )

    gw = sub.add_parser(
        "gateway",
        help="fleet gateway load run (sharded scoring, alarms, zero-drop)",
    )
    gw.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard counts to sweep (default: 1,2,4)",
    )
    gw.add_argument(
        "--clients", type=int, default=3, help="synthetic fleet clients"
    )
    gw.add_argument(
        "--chaos",
        type=float,
        default=0.25,
        metavar="INTENSITY",
        help="chaos intensity for the degraded leg (0 disables it)",
    )
    gw.add_argument("--chaos-seed", type=int, default=7, help="chaos-plan seed")
    gw.add_argument("--split", default="DS1")
    gw.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])
    gw.add_argument(
        "--batch-size", type=int, default=64, help="per-shard micro-batch size"
    )

    rs = sub.add_parser(
        "resilience",
        help="serving availability vs chaos-intensity sweep",
    )
    rs.add_argument(
        "--intensities",
        default=None,
        help="comma-separated chaos intensities in [0,1] "
        f"(default: {','.join(str(x) for x in RESILIENCE_INTENSITIES)})",
    )
    rs.add_argument(
        "--seed", type=int, default=0, help="chaos-plan and model seed"
    )
    rs.add_argument("--split", default="DS1")
    rs.add_argument("--model", default="gbdt", choices=["lr", "gbdt", "svm", "nn"])

    rg = sub.add_parser(
        "registry", help="inspect or repair a model registry"
    )
    rg.add_argument("action", choices=["verify", "rollback"], help="what to do")
    rg.add_argument(
        "--registry", required=True, help="model registry root directory"
    )
    rg.add_argument("--name", default="twostage", help="registered model name")
    rg.add_argument(
        "--to",
        type=int,
        default=None,
        metavar="VERSION",
        help="target version for 'rollback' (checksum-verified before "
        "the head pointer moves)",
    )

    st = sub.add_parser(
        "store", help="segmented trace store (out-of-core, crash-safe)"
    )
    sta = st.add_subparsers(dest="store_command", required=True)
    s_sim = sta.add_parser(
        "simulate", help="simulate the preset's trace into a segmented store"
    )
    s_sim.add_argument("--out", required=True, help="store directory")
    s_sim.add_argument(
        "--segments",
        type=int,
        default=8,
        metavar="N",
        help="segment count (clamped to the machine's cabinet rows)",
    )
    s_sim.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from its journal (bit-identical result)",
    )
    s_sim.add_argument(
        "--crash-after-segments",
        type=int,
        default=None,
        metavar="K",
        help="simulate a crash after K segment commits (resume test hook)",
    )
    for name, help_text in (
        ("verify", "checksum-verify every segment (exit 1 on damage)"),
        ("recover", "re-simulate and rewrite damaged segments in place"),
        ("digest", "print the streamed content digest of the store"),
        ("features", "build the feature matrix out of core from the store"),
    ):
        action = sta.add_parser(name, help=help_text)
        action.add_argument("--store", required=True, help="store directory")
    s_inj = sta.add_parser(
        "inject", help="inject a seeded disk fault into a committed store"
    )
    s_inj.add_argument("--store", required=True, help="store directory")
    s_inj.add_argument(
        "--kind",
        required=True,
        choices=["torn", "bitflip", "missing", "stale_manifest"],
        help="failure mode to inject",
    )
    s_inj.add_argument("--seed", type=int, default=0, help="fault seed")
    s_inj.add_argument(
        "--segment", type=int, default=None, help="victim segment (default: seeded)"
    )
    s_inj.add_argument(
        "--fraction",
        type=float,
        default=None,
        help="truncation fraction for --kind torn (default: seeded)",
    )

    ob = sub.add_parser(
        "obs", help="inspect observability snapshots (--obs-snapshot output)"
    )
    oba = ob.add_subparsers(dest="obs_command", required=True)
    o_rep = oba.add_parser(
        "report", help="render one snapshot as a human-readable table"
    )
    o_rep.add_argument("snapshot", help="snapshot JSON path")
    o_rep.add_argument(
        "--events",
        type=int,
        default=20,
        metavar="N",
        help="max structured events to print (default: 20)",
    )
    o_diff = oba.add_parser(
        "diff",
        help="compare two snapshots series-by-series "
        "(exit 0 if identical, 1 if they differ)",
    )
    o_diff.add_argument("before", help="baseline snapshot JSON path")
    o_diff.add_argument("after", help="comparison snapshot JSON path")
    return parser


def _parse_intensities(
    raw: str | None, default: tuple[float, ...] = DEFAULT_INTENSITIES
) -> tuple[float, ...]:
    """Parse the ``--intensities`` comma list, validating the range."""
    if raw is None:
        return default
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise ValidationError(f"invalid --intensities value: {raw!r}") from None
    if not values or any(not 0.0 <= v <= 1.0 for v in values):
        raise ValidationError(
            f"--intensities must be numbers in [0, 1], got {raw!r}"
        )
    return values


def _dispatch_store(args: argparse.Namespace, jobs: int) -> int:
    """Run one ``repro store`` action; may raise :class:`ReproError`."""
    from repro.features.builder import build_features_from_store
    from repro.store import (
        DiskFaultSpec,
        SegmentedTraceStore,
        inject_disk_fault,
        simulate_trace_to_store,
        store_trace_digest,
    )

    strict = bool(args.strict)
    if args.store_command == "simulate":
        started = time.perf_counter()
        store = simulate_trace_to_store(
            preset_config(args.preset),
            args.out,
            segments=args.segments,
            jobs=jobs,
            resume=args.resume,
            crash_after_segments=args.crash_after_segments,
        )
        print(
            f"simulated {store.num_samples} samples into "
            f"{store.num_segments} segment(s) in "
            f"{time.perf_counter() - started:.0f}s -> {store.root}"
        )
        return 0

    store = SegmentedTraceStore(args.store)
    if args.store_command == "verify":
        statuses = store.verify()
        for status in statuses:
            print(status)
        broken = sum(status.status != "ok" for status in statuses)
        print(f"{len(statuses)} segment(s), {len(statuses) - broken} ok, {broken} broken")
        return 1 if broken else 0
    if args.store_command == "recover":
        for status in store.recover(strict=strict):
            print(status)
        return 0
    if args.store_command == "inject":
        event = inject_disk_fault(
            store,
            DiskFaultSpec(
                args.kind,
                seed=args.seed,
                segment=args.segment,
                fraction=args.fraction,
            ),
        )
        print(event)
        return 0
    if args.store_command == "digest":
        print(store_trace_digest(store, strict=strict))
        return 0
    if args.store_command == "features":
        features = build_features_from_store(store, strict=strict)
        positives = int(features.y.sum())
        print(
            f"{features.num_samples} rows x {features.X.shape[1]} features "
            f"({positives} positive) from {store.num_segments} segment(s)"
        )
        return 0
    return 2  # pragma: no cover - argparse enforces the action set


def _dispatch_obs(args: argparse.Namespace) -> int:
    """Run one ``repro obs`` action; may raise :class:`ReproError`."""
    if args.obs_command == "report":
        snapshot = load_snapshot(args.snapshot)
        print(render_report(snapshot, events_limit=args.events))
        return 0
    if args.obs_command == "diff":
        before = load_snapshot(args.before)
        after = load_snapshot(args.after)
        print(render_diff(before, after))
        return 1 if diff_snapshots(before, after) else 0
    return 2  # pragma: no cover - argparse enforces the action set


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected subcommand; may raise :class:`ReproError`."""
    jobs = max(1, int(getattr(args, "jobs", 1)))
    if args.command == "obs":
        return _dispatch_obs(args)
    if args.command == "store":
        return _dispatch_store(args, jobs)
    context = ExperimentContext(
        args.preset,
        use_disk_cache=not args.no_cache,
        jobs=jobs,
        strict=args.strict,
        segmented=args.segmented,
    )

    if args.command == "simulate":
        import dataclasses

        started = time.perf_counter()
        config = preset_config(args.preset)
        if args.scenario is not None:
            config = dataclasses.replace(
                config, scenario=scenario_preset(args.scenario)
            )
        shards = args.shards if args.shards is not None else jobs
        if shards > 1 or jobs > 1:
            from repro.parallel.simulate import simulate_trace_sharded

            trace = simulate_trace_sharded(config, shards=max(1, shards), jobs=jobs)
        else:
            trace = simulate_trace(config)
        trace.save(args.out)
        stages = trace.meta.get("stage_seconds", {})
        stage_note = ", ".join(
            f"{name} {seconds:.1f}s" for name, seconds in sorted(stages.items())
        )
        print(
            f"simulated {trace.num_samples} samples over "
            f"{trace.config.duration_days:.0f} days in "
            f"{time.perf_counter() - started:.0f}s "
            f"({trace.meta.get('shards', 1)} shard(s); {stage_note}) "
            f"-> {args.out}.npz"
        )
        return 0

    if args.command == "characterize":
        for experiment_id in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            print(run_experiment(experiment_id, context))
            print()
        return 0

    if args.command == "evaluate":
        if args.model in ("basic_a", "basic_b", "basic_c", "random"):
            result = context.basic(args.split, args.model)
        else:
            result = context.twostage(args.split, args.model)
        print(
            f"{result.predictor} on {result.split}: "
            f"F1={result.f1:.3f} precision={result.precision:.3f} "
            f"recall={result.recall:.3f} (trained in {result.train_seconds:.1f}s)"
        )
        return 0

    if args.command == "experiment":
        ids = list(EXPERIMENTS) if args.ids == ["all"] else args.ids
        if jobs > 1 and len(ids) > 1:
            for result in run_experiments(
                ids,
                preset=args.preset,
                jobs=jobs,
                use_disk_cache=not args.no_cache,
            ):
                print(result)
                print()
        else:
            for experiment_id in ids:
                print(run_experiment(experiment_id, context))
                print()
        return 0

    if args.command == "serve-replay":
        from repro.serve import DriftConfig, serve_replay
        from repro.serve.resilience import ChaosPlan

        chaos = (
            None
            if args.chaos is None
            else ChaosPlan(intensity=args.chaos, seed=args.chaos_seed)
        )
        report = serve_replay(
            context.trace,
            args.registry,
            splits=context.preset_splits(),
            split=args.split,
            model=args.model,
            batch_size=args.batch_size,
            flush_deadline_minutes=args.flush_deadline,
            retrain_every_days=args.retrain_every,
            retrain_window_days=args.retrain_window_days,
            drift=DriftConfig() if args.drift else None,
            random_state=args.seed,
            fast=args.fast,
            sanitize=args.sanitize,
            chaos=chaos,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_events=args.checkpoint_every,
            resume=args.resume,
            crash_after_events=args.crash_after,
            strict=args.strict,
        )
        print(report)
        return 0

    if args.command == "gateway":
        from repro.experiments.gateway_experiment import (
            DEFAULT_SHARD_COUNTS,
            run_gateway,
        )

        if args.shards is None:
            shard_counts = DEFAULT_SHARD_COUNTS
        else:
            try:
                shard_counts = tuple(
                    int(part) for part in args.shards.split(",") if part.strip()
                )
            except ValueError:
                raise ValidationError(
                    f"invalid --shards value: {args.shards!r}"
                ) from None
            if not shard_counts or any(n < 1 for n in shard_counts):
                raise ValidationError(
                    f"--shards must be positive integers, got {args.shards!r}"
                )
        result = run_gateway(
            context,
            shard_counts=shard_counts,
            clients=args.clients,
            chaos_intensity=args.chaos,
            seed=args.chaos_seed,
            model=args.model,
            split=args.split,
            batch_size=args.batch_size,
        )
        print(result)
        return 0

    if args.command == "resilience":
        result = run_resilience(
            context,
            intensities=_parse_intensities(
                args.intensities, RESILIENCE_INTENSITIES
            ),
            seed=args.seed,
            model=args.model,
            split=args.split,
        )
        print(result)
        return 0

    if args.command == "registry":
        from repro.serve import ModelRegistry

        if args.action == "rollback":
            if args.to is None:
                raise ValidationError("registry rollback requires --to VERSION")
            entry = ModelRegistry(args.registry).rollback(args.name, args.to)
            print(f"{args.name}: head -> v{entry.version:04d} (verified ok)")
            return 0
        statuses = ModelRegistry(args.registry).verify(args.name)
        if not statuses:
            print(f"{args.name}: no version directories")
            return 0
        broken = 0
        for version, status in statuses:
            print(f"{args.name}/v{version:04d}  {status}")
            broken += status != "ok"
        print(
            f"{len(statuses)} version(s), {len(statuses) - broken} ok, "
            f"{broken} broken"
        )
        return 1 if broken else 0

    if args.command == "faults":
        result = run_faults(
            context,
            intensities=_parse_intensities(args.intensities),
            seed=args.seed,
            model=args.model,
            split=args.split,
            jobs=jobs,
        )
        print(result)
        return 0

    return 2  # pragma: no cover - argparse enforces the command set


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors surface as a single stderr line and exit status 1;
    programming errors still propagate with a traceback.
    """
    args = build_parser().parse_args(argv)
    if args.obs is not None:
        obs_configure(args.obs)
    try:
        if args.backend is not None:
            # Validated here (not by argparse choices) so an unknown
            # backend exits with the standard one-line ReproError path.
            set_backend(args.backend)
        if args.strict:
            # Escalate every degraded-data repair into a typed error:
            # under --strict the pipeline must fail loudly, never heal.
            with warnings.catch_warnings():
                warnings.simplefilter("error", DegradedDataWarning)
                try:
                    code = _dispatch(args)
                except DegradedDataWarning as exc:
                    raise DegradedDataError(str(exc)) from exc
        else:
            code = _dispatch(args)
        if args.obs_snapshot is not None:
            write_snapshot(
                args.obs_snapshot,
                get_registry(),
                run={
                    "command": args.command,
                    "preset": args.preset,
                    "jobs": args.jobs,
                    # Worker count is execution config, not run content:
                    # --jobs 1 and --jobs 2 must produce the same digest.
                    "wall_fields": ["jobs"],
                },
            )
            print(f"obs snapshot -> {args.obs_snapshot}", file=sys.stderr)
        return code
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
